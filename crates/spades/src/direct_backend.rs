//! The pre-SEED SPADES: plain in-memory data structures, no consistency checking, versions as
//! full copies of the whole specification.
//!
//! This backend exists as the comparison baseline for the paper's statement that, on SEED,
//! "SPADES has become considerably slower, but much more flexible".  It is deliberately naive
//! in the ways the original tool was: nothing is checked (a flow to a missing element is
//! silently recorded against nothing, cycles in containment are possible), incompleteness cannot
//! be analysed, and a checkpoint deep-copies everything.

use std::collections::BTreeMap;

use crate::backend::SpecBackend;
use crate::error::{SpadesError, SpadesResult};
use crate::model::{ElementInfo, ElementKind, FlowKind};

#[derive(Debug, Clone)]
struct Element {
    kind: ElementKind,
    description: Option<String>,
    keywords: Vec<String>,
}

#[derive(Debug, Clone, Default)]
struct SpecState {
    elements: BTreeMap<String, Element>,
    /// (data, action) → kind
    flows: BTreeMap<(String, String), FlowKind>,
    /// inner → outer containment
    containment: BTreeMap<String, String>,
}

/// The direct (pre-SEED) backend.
#[derive(Debug, Default)]
pub struct DirectBackend {
    state: SpecState,
    /// Full copies of the state, one per checkpoint — the storage cost SEED's delta versions avoid.
    checkpoints: Vec<(String, SpecState)>,
}

impl DirectBackend {
    /// Creates an empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of elements stored across all full-copy checkpoints (storage-cost metric
    /// used by the version-storage benchmark).
    pub fn checkpointed_element_count(&self) -> usize {
        self.checkpoints.iter().map(|(_, s)| s.elements.len() + s.flows.len()).sum()
    }

    fn element_mut(&mut self, name: &str) -> SpadesResult<&mut Element> {
        self.state.elements.get_mut(name).ok_or_else(|| SpadesError::Unknown(name.to_string()))
    }
}

impl SpecBackend for DirectBackend {
    fn backend_name(&self) -> &'static str {
        "SPADES direct (pre-SEED)"
    }

    fn add_element(&mut self, name: &str, kind: ElementKind) -> SpadesResult<()> {
        if self.state.elements.contains_key(name) {
            return Err(SpadesError::Duplicate(name.to_string()));
        }
        self.state
            .elements
            .insert(name.to_string(), Element { kind, description: None, keywords: Vec::new() });
        Ok(())
    }

    fn refine_element(&mut self, name: &str, kind: ElementKind) -> SpadesResult<()> {
        // No checking at all — the pre-SEED tool happily overwrote the kind.
        self.element_mut(name)?.kind = kind;
        Ok(())
    }

    fn add_flow(&mut self, data: &str, action: &str, kind: FlowKind) -> SpadesResult<()> {
        self.state.flows.insert((data.to_string(), action.to_string()), kind);
        Ok(())
    }

    fn refine_flow(&mut self, data: &str, action: &str, kind: FlowKind) -> SpadesResult<()> {
        match self.state.flows.get_mut(&(data.to_string(), action.to_string())) {
            Some(existing) => {
                *existing = kind;
                Ok(())
            }
            None => Err(SpadesError::Unknown(format!("flow between '{data}' and '{action}'"))),
        }
    }

    fn set_description(&mut self, name: &str, text: &str) -> SpadesResult<()> {
        self.element_mut(name)?.description = Some(text.to_string());
        Ok(())
    }

    fn add_keyword(&mut self, name: &str, keyword: &str) -> SpadesResult<()> {
        self.element_mut(name)?.keywords.push(keyword.to_string());
        Ok(())
    }

    fn contain(&mut self, inner: &str, outer: &str) -> SpadesResult<()> {
        // No acyclicity check — that is exactly the kind of error SEED catches and this tool
        // does not.
        self.state.containment.insert(inner.to_string(), outer.to_string());
        Ok(())
    }

    fn remove_element(&mut self, name: &str) -> SpadesResult<()> {
        if self.state.elements.remove(name).is_none() {
            return Err(SpadesError::Unknown(name.to_string()));
        }
        self.state.flows.retain(|(d, a), _| d != name && a != name);
        self.state.containment.retain(|inner, outer| inner != name && outer != name);
        Ok(())
    }

    fn element(&self, name: &str) -> SpadesResult<ElementInfo> {
        let element =
            self.state.elements.get(name).ok_or_else(|| SpadesError::Unknown(name.to_string()))?;
        let mut keywords = element.keywords.clone();
        keywords.sort();
        let flows: Vec<(String, FlowKind, String)> = self
            .state
            .flows
            .iter()
            .filter(|((d, a), _)| d == name || a == name)
            .map(|((d, a), k)| (d.clone(), *k, a.clone()))
            .collect();
        Ok(ElementInfo {
            name: name.to_string(),
            kind: element.kind,
            description: element.description.clone(),
            keywords,
            flows,
        })
    }

    fn element_names(&self) -> Vec<String> {
        self.state.elements.keys().cloned().collect()
    }

    fn flow_count(&self) -> usize {
        self.state.flows.len()
    }

    fn incompleteness_findings(&self) -> usize {
        // The pre-SEED tool has no notion of completeness information.
        0
    }

    fn checkpoint(&mut self, comment: &str) -> SpadesResult<String> {
        self.checkpoints.push((comment.to_string(), self.state.clone()));
        Ok(format!("copy-{}", self.checkpoints.len()))
    }

    fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_checking_means_silent_inconsistencies() {
        let mut backend = DirectBackend::new();
        backend.add_element("A", ElementKind::Action).unwrap();
        backend.add_element("B", ElementKind::Action).unwrap();
        // Cycle goes unnoticed.
        backend.contain("A", "B").unwrap();
        backend.contain("B", "A").unwrap();
        // Flow against a non-existent element goes unnoticed.
        backend.add_flow("Ghost", "A", FlowKind::Write).unwrap();
        // Nonsensical refinement goes unnoticed.
        backend.refine_element("A", ElementKind::OutputData).unwrap();
        assert_eq!(backend.incompleteness_findings(), 0);
    }

    #[test]
    fn checkpoints_are_full_copies() {
        let mut backend = DirectBackend::new();
        for i in 0..10 {
            backend.add_element(&format!("E{i}"), ElementKind::Data).unwrap();
        }
        backend.checkpoint("c1").unwrap();
        backend.add_element("One more", ElementKind::Data).unwrap();
        backend.checkpoint("c2").unwrap();
        assert_eq!(backend.checkpoint_count(), 2);
        // 10 elements in the first copy + 11 in the second: the cost grows with database size,
        // not with the size of the change — unlike SEED's delta storage.
        assert_eq!(backend.checkpointed_element_count(), 21);
    }

    #[test]
    fn removal_cleans_flows_and_containment() {
        let mut backend = DirectBackend::new();
        backend.add_element("Data1", ElementKind::Data).unwrap();
        backend.add_element("Act1", ElementKind::Action).unwrap();
        backend.add_flow("Data1", "Act1", FlowKind::Read).unwrap();
        backend.contain("Act1", "Act1").unwrap();
        backend.remove_element("Act1").unwrap();
        assert_eq!(backend.flow_count(), 0);
        assert!(backend.element("Act1").is_err());
        assert!(backend.remove_element("Act1").is_err());
        assert!(backend.refine_flow("Data1", "Act1", FlowKind::Write).is_err());
    }
}
