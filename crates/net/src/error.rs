//! Errors of the wire layer.
//!
//! The split that matters operationally is **fatal vs. recoverable**: a fatal error means the
//! byte stream can no longer be trusted (bad magic, an insane length, the socket died) and the
//! connection must close; a recoverable error means one frame was bad but its boundary was
//! still found (checksum mismatch, malformed payload), so the server can answer with a protocol
//! error and keep the connection.

use std::fmt;
use std::io;

use seed_server::ServerError;

/// Result alias for wire operations.
pub type WireResult<T> = Result<T, WireError>;

/// A failure while framing, checking or decoding wire traffic.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes clean EOF, reported as `UnexpectedEof`).
    Io(io::Error),
    /// The stream is desynchronized or the peer spoke a different protocol; the connection
    /// cannot be salvaged.
    Fatal(String),
    /// One frame was rejected (bad checksum, malformed payload), but the frame boundary was
    /// intact — the connection may continue.
    Recoverable(String),
}

impl WireError {
    /// Whether the connection can keep going after this error.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, WireError::Recoverable(_))
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Fatal(msg) => write!(f, "fatal wire error: {msg}"),
            WireError::Recoverable(msg) => write!(f, "bad frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<seed_storage::StorageError> for WireError {
    // Decoder underruns and corrupt tags surface as storage errors; on the wire they mean a
    // malformed (but cleanly delimited) payload.
    fn from(e: seed_storage::StorageError) -> Self {
        WireError::Recoverable(e.to_string())
    }
}

impl From<seed_core::SeedError> for WireError {
    fn from(e: seed_core::SeedError) -> Self {
        WireError::Recoverable(e.to_string())
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ServerError::Transport(io.to_string()),
            WireError::Fatal(msg) | WireError::Recoverable(msg) => ServerError::Protocol(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_conversions() {
        assert!(WireError::Recoverable("x".into()).is_recoverable());
        assert!(!WireError::Fatal("x".into()).is_recoverable());
        let e: WireError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(ServerError::from(e), ServerError::Transport(_)));
        let e: WireError = seed_storage::StorageError::Corrupt("bad".into()).into();
        assert!(e.is_recoverable());
        assert!(matches!(ServerError::from(e), ServerError::Protocol(_)));
        assert!(WireError::Fatal("desync".into()).to_string().contains("desync"));
    }
}
