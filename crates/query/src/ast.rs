//! Abstract syntax of the retrieval language.

/// Comparison operators usable in value selections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Equal,
    /// `!=`
    NotEqual,
    /// `<`
    Less,
    /// `>`
    Greater,
}

/// A selection predicate applied to each candidate object.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// `name = "Alarms"` — exact hierarchical-name match.
    NameEquals(String),
    /// `name prefix "Alarm"` — hierarchical-name prefix match.
    NamePrefix(String),
    /// `value <op> "literal"` — value comparison; undefined values match nothing.
    Value(Comparison, String),
    /// `related <Association>.<role>` — the object participates in at least one visible
    /// relationship of the association (or a specialization) in the given role.
    Related {
        /// Association name.
        association: String,
        /// Role the object must fill.
        role: String,
    },
    /// `incomplete` — the completeness analysis reports at least one finding for the object.
    Incomplete,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `find [exactly] <Class> [where <selection>]* [navigate <Assoc>.<role> from "<name>"]`
    Find {
        /// The class whose extent seeds the result set.
        class: String,
        /// Whether specializations are excluded (`exactly`).
        exact: bool,
        /// Selections applied conjunctively.
        selections: Vec<Selection>,
        /// Optional navigation step executed before the selections.
        navigate: Option<Navigation>,
    },
    /// `count ...` — same shape as `find`, but only the cardinality is returned.
    Count {
        /// The class whose extent seeds the result set.
        class: String,
        /// Whether specializations are excluded.
        exact: bool,
        /// Selections applied conjunctively.
        selections: Vec<Selection>,
        /// Optional navigation step.
        navigate: Option<Navigation>,
    },
    /// `explain find ...` / `explain count ...` — instead of executing, return the physical
    /// plan the planner would run (access path, residual filters, estimates).
    Explain(Box<Query>),
}

/// A navigation step: start from a named object and follow an association role.
#[derive(Debug, Clone, PartialEq)]
pub struct Navigation {
    /// Association to traverse (specializations included).
    pub association: String,
    /// Role of the *target* objects.
    pub to_role: String,
    /// Name of the object to start from.
    pub from_object: String,
}

impl Query {
    /// The class the query ranges over (transparent through `explain`).
    pub fn class(&self) -> &str {
        match self {
            Query::Find { class, .. } | Query::Count { class, .. } => class,
            Query::Explain(inner) => inner.class(),
        }
    }

    /// Whether this is a `count` query (transparent through `explain`).
    pub fn is_count(&self) -> bool {
        match self {
            Query::Count { .. } => true,
            Query::Explain(inner) => inner.is_count(),
            Query::Find { .. } => false,
        }
    }

    /// Whether this is an `explain` query.
    pub fn is_explain(&self) -> bool {
        matches!(self, Query::Explain(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let q = Query::Find {
            class: "Data".into(),
            exact: false,
            selections: vec![Selection::NameEquals("Alarms".into())],
            navigate: None,
        };
        assert_eq!(q.class(), "Data");
        assert!(!q.is_count());
        let c = Query::Count {
            class: "Action".into(),
            exact: true,
            selections: vec![],
            navigate: None,
        };
        assert!(c.is_count());
        assert_eq!(c.class(), "Action");
        let e = Query::Explain(Box::new(c));
        assert!(e.is_explain());
        assert!(e.is_count());
        assert_eq!(e.class(), "Action");
    }
}
