//! MVCC snapshot reads: immutable, LSN-keyed read snapshots published copy-on-write.
//!
//! The server's `RwLock<Database>` gives writers exclusivity, but it also means one long
//! check-in stalls every reader.  This module generalizes the delta-version machinery into a
//! **multi-version read path**: a [`SnapshotCell`] owns an immutable [`Snapshot`] of the
//! queryable state, readers pin it with one atomic refcount bump and then run entirely
//! lock-free, and writers publish a successor snapshot after each commit.
//!
//! ## Publication protocol
//!
//! Publication is O(delta), not O(database).  The cell keeps a **spare generation** — the
//! snapshot it retired last time — together with the exact item delta (`lag`) that spare is
//! missing relative to the published one.  To publish generation *N+1*:
//!
//! 1. drain the database's snapshot delta (*N → N+1*, maintained by
//!    [`Database::enable_snapshot_tracking`]);
//! 2. patch the spare (generation *N−1*) with `lag ∪ delta` via
//!    `Database::sync_snapshot_from`, which replays the changed records through the store's
//!    ordinary index-maintaining mutators — if a straggler reader still pins the spare,
//!    `Arc::make_mut` clones it first so the pinned snapshot is never mutated;
//! 3. swap the patched spare into the published slot (a brief write lock; readers hold the
//!    slot lock only long enough to clone an `Arc`), and demote the old published snapshot to
//!    be the next spare with `lag = delta`.
//!
//! ## Memory lifecycle
//!
//! At most two full copies of the database are alive in steady state: the published snapshot
//! and the spare (plus the authoritative store itself).  A retired snapshot that readers still
//! pin survives exactly until the last reader drops it — the `Arc` refcount is the retention
//! mechanism, there is no epoch table to administer.  Long-lived readers therefore cost one
//! database copy each, which is the operational trade-off documented in OPERATIONS.md.
//!
//! ## LSN keying
//!
//! Every snapshot carries the **durable LSN** it corresponds to (the storage engine's last
//! committed record at publication time).  In-memory databases, which have no WAL, fall back
//! to the publication epoch — still monotonic, so staleness remains observable.  Replicas
//! publish with an explicit LSN override: the shipped batch's `last_lsn`.

use std::ops::Deref;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::database::Database;
use crate::durability::DurabilityStatus;
use crate::ident::ItemId;

/// One immutable generation of the queryable state.
struct SnapshotGen {
    db: Database,
    lsn: u64,
    epoch: u64,
    durability: Option<DurabilityStatus>,
}

impl Clone for SnapshotGen {
    fn clone(&self) -> Self {
        Self {
            db: self.db.clone_for_snapshot(),
            lsn: self.lsn,
            epoch: self.epoch,
            durability: self.durability.clone(),
        }
    }
}

impl SnapshotGen {
    fn capture(db: &Database, epoch: u64, lsn: u64) -> Self {
        Self { db: db.clone_for_snapshot(), lsn, epoch, durability: db.durability_status() }
    }
}

/// An immutable, point-in-time view of the database, pinned by readers.
///
/// Dereferences to [`Database`], so the full read surface (`object_by_name`, `objects_of_class`,
/// query planning, completeness analysis, ...) runs against the snapshot unchanged — and
/// entirely lock-free: cloning a `Snapshot` is one `Arc` refcount bump.
#[derive(Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotGen>,
}

impl Snapshot {
    /// The durable LSN this snapshot corresponds to (publication epoch for in-memory
    /// databases).
    pub fn lsn(&self) -> u64 {
        self.inner.lsn
    }

    /// Monotonic publication counter (1 for the initial snapshot).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The durability status captured at publication time (`None` for in-memory databases).
    /// Snapshots carry it so status requests need not touch the authoritative database.
    pub fn durability(&self) -> Option<&DurabilityStatus> {
        self.inner.durability.as_ref()
    }
}

impl Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.inner.db
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("lsn", &self.inner.lsn)
            .field("epoch", &self.inner.epoch)
            .finish()
    }
}

/// Publisher-side state: the retired generation kept as the next build buffer, and the delta
/// it is missing relative to the published snapshot.
struct Publisher {
    spare: Option<Arc<SnapshotGen>>,
    lag: Vec<ItemId>,
    epoch: u64,
}

/// The snapshot publication cell: readers call [`SnapshotCell::read`], the single writer calls
/// [`SnapshotCell::publish`] after each commit.
///
/// The published slot is behind its own `RwLock` so a slow publication (a forced full clone
/// because a straggler pinned the spare) never blocks readers — all patching happens on the
/// spare under the publisher mutex, and the slot lock is held only for the pointer swap.
pub struct SnapshotCell {
    published: RwLock<Snapshot>,
    state: Mutex<Publisher>,
}

impl SnapshotCell {
    /// Builds the initial snapshot (epoch 1) and enables snapshot-delta tracking on `db`.
    pub fn new(db: &mut Database) -> Self {
        db.enable_snapshot_tracking();
        let _ = db.take_snapshot_changes();
        let lsn = db.durable_lsn().unwrap_or(1);
        let gen = Arc::new(SnapshotGen::capture(db, 1, lsn));
        Self {
            published: RwLock::new(Snapshot { inner: gen }),
            state: Mutex::new(Publisher { spare: None, lag: Vec::new(), epoch: 1 }),
        }
    }

    /// Pins the current snapshot: a brief shared lock on the slot, then fully lock-free reads.
    pub fn read(&self) -> Snapshot {
        self.published.read().clone()
    }

    /// Publishes the database's current state as the next snapshot generation (LSN taken from
    /// the database's durable cursor, or the epoch when in-memory).
    pub fn publish(&self, db: &mut Database) {
        self.publish_at(db, None)
    }

    /// [`SnapshotCell::publish`] with an explicit LSN — the replica apply path, where the
    /// serving database is in-memory but the position is the shipped batch's `last_lsn`.
    pub fn publish_at(&self, db: &mut Database, lsn_hint: Option<u64>) {
        let start = std::time::Instant::now();
        let registry = seed_obs::global();
        let mut st = self.state.lock();
        // A wholesale-replaced database (replica snapshot resync) arrives untracked; enabling
        // tracking marks it for a rebuild, which take_snapshot_changes reports as `None`.
        db.enable_snapshot_tracking();
        let delta = db.take_snapshot_changes();
        st.epoch += 1;
        let epoch = st.epoch;
        let lsn = lsn_hint.or_else(|| db.durable_lsn()).unwrap_or(epoch);

        let fresh = match (&delta, st.spare.take()) {
            (Some(items), Some(mut spare)) => {
                // O(delta) path: the spare is two generations behind `db`, by exactly
                // `lag ∪ items`.  A straggler still pinning it forces a one-off clone.
                if Arc::get_mut(&mut spare).is_none() {
                    registry.counter("snapshot_straggler_copies_total").inc();
                }
                let gen = Arc::make_mut(&mut spare);
                let missing: Vec<ItemId> = st.lag.iter().chain(items.iter()).copied().collect();
                registry.histogram("snapshot_patch_items").observe(missing.len() as u64);
                gen.db.sync_snapshot_from(db, &missing);
                gen.lsn = lsn;
                gen.epoch = epoch;
                gen.durability = db.durability_status();
                spare
            }
            _ => {
                registry.counter("snapshot_full_captures_total").inc();
                Arc::new(SnapshotGen::capture(db, epoch, lsn))
            }
        };

        let retired = {
            let mut slot = self.published.write();
            std::mem::replace(&mut *slot, Snapshot { inner: fresh })
        };
        match delta {
            Some(items) => {
                // The retired snapshot is one generation behind by exactly this delta.
                st.lag = items;
                st.spare = Some(retired.inner);
            }
            None => {
                // Wholesale rebuild: the retired snapshot predates the reset and cannot be
                // patched back into currency; drop it (readers may still pin it).
                st.lag = Vec::new();
                st.spare = None;
            }
        }
        registry.histogram("snapshot_publish_us").observe_duration(start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NameSegment;
    use crate::value::Value;
    use seed_schema::figure3_schema;

    /// A deterministic, exhaustive rendering of the queryable state: every read in here must be
    /// byte-identical between a patched snapshot and a fresh full clone.
    pub(super) fn fingerprint(db: &Database) -> String {
        let mut out = String::new();
        let mut objects: Vec<_> = db.store().all_objects().collect();
        objects.sort_by_key(|o| o.id);
        for o in &objects {
            out.push_str(&format!("O {:?}\n", o));
            out.push_str(&format!("  inherits {:?}\n", db.store().inherited_patterns(o.id)));
            out.push_str(&format!(
                "  children {:?}\n",
                db.children(o.id).iter().map(|c| c.record.id).collect::<Vec<_>>()
            ));
            out.push_str(&format!("  value {:?}\n", db.value(o.id)));
        }
        let mut rels: Vec<_> = db.store().all_relationships().collect();
        rels.sort_by_key(|r| r.id);
        for r in &rels {
            out.push_str(&format!("R {:?}\n", r));
        }
        out.push_str(&format!(
            "prefix {:?}\n",
            db.objects_with_name_prefix("").iter().map(|o| o.name.to_string()).collect::<Vec<_>>()
        ));
        for class in ["Thing", "Data", "Action", "OutputData"] {
            out.push_str(&format!(
                "class {class} {:?}\n",
                db.objects_of_class(class, true)
                    .unwrap_or_default()
                    .iter()
                    .map(|o| o.id)
                    .collect::<Vec<_>>()
            ));
        }
        out.push_str(&format!("schema {}\n", db.schema().name));
        out.push_str(&format!(
            "versions {:?}\n",
            db.versions().iter().map(|v| v.id.to_string()).collect::<Vec<_>>()
        ));
        out.push_str(&format!("counts {} {}\n", db.object_count(), db.relationship_count()));
        out.push_str(&format!("floors {:?}\n", db.store().id_floor()));
        out
    }

    #[test]
    fn snapshots_are_immutable_and_publication_is_incremental() {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let cell = SnapshotCell::new(&mut db);

        let s1 = cell.read();
        assert_eq!(s1.epoch(), 1);
        let s1_print = fingerprint(&s1);
        assert!(s1.object_by_name("Alarms").is_ok());

        // Mutate + publish twice: the second publish exercises the patched-spare path.
        let sensor = db.create_object("Action", "Sensor").unwrap();
        cell.publish(&mut db);
        let s2 = cell.read();
        db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        db.set_value(alarms, Value::Undefined).unwrap();
        cell.publish(&mut db);
        let s3 = cell.read();

        assert_eq!(s2.epoch(), 2);
        assert_eq!(s3.epoch(), 3);
        // Retired snapshots never change, even though their generation became the spare.
        assert_eq!(fingerprint(&s1), s1_print);
        assert!(s1.object_by_name("Sensor").is_err());
        assert!(s2.object_by_name("Sensor").is_ok());
        assert_eq!(s2.relationship_count(), 0);
        assert_eq!(s3.relationship_count(), 1);
        // The patched snapshot is byte-identical to a fresh full clone.
        assert_eq!(fingerprint(&s3), fingerprint(&db.clone_for_snapshot()));
    }

    #[test]
    fn cross_item_renames_within_one_delta_patch_cleanly() {
        let mut db = Database::new(figure3_schema());
        let a = db.create_object("Data", "Left").unwrap();
        let b = db.create_object("Data", "Right").unwrap();
        let cell = SnapshotCell::new(&mut db);
        // Publish once so the next publish patches the spare in place.
        db.create_object("Action", "Warmup").unwrap();
        cell.publish(&mut db);
        // Swap the two names within a single delta.
        db.rename_object(a, "Parked").unwrap();
        db.rename_object(b, "Left").unwrap();
        db.rename_object(a, "Right").unwrap();
        cell.publish(&mut db);
        // And once more so the spare (which saw the swap as lag) is patched and republished.
        db.create_object("Action", "Warmup2").unwrap();
        cell.publish(&mut db);
        let s = cell.read();
        assert_eq!(s.object_by_name("Right").unwrap().id, a);
        assert_eq!(s.object_by_name("Left").unwrap().id, b);
        assert_eq!(fingerprint(&s), fingerprint(&db.clone_for_snapshot()));
    }

    #[test]
    fn deletes_tombstones_and_dependents_patch_cleanly() {
        let mut db = Database::new(figure3_schema());
        let cell = SnapshotCell::new(&mut db);
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let text = db
            .create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)
            .unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        cell.publish(&mut db);
        db.delete_object(alarms).unwrap();
        cell.publish(&mut db);
        db.create_object("Data", "Alarms").unwrap(); // name reuse after tombstone
        cell.publish(&mut db);
        let s = cell.read();
        assert!(s.object(text).is_err());
        assert!(s.object_by_name("Alarms").is_ok());
        assert_eq!(fingerprint(&s), fingerprint(&db.clone_for_snapshot()));
    }

    #[test]
    fn transition_rules_replaced_with_the_same_count_patch_cleanly() {
        use crate::history::TransitionRule;
        let mut db = Database::new(figure3_schema());
        db.add_transition_rule(TransitionRule::NoDeletions).unwrap();
        let cell = SnapshotCell::new(&mut db);
        db.create_object("Data", "Warmup").unwrap();
        cell.publish(&mut db);
        // Swap the rule set for a different one of the SAME length: the patched spare must
        // pick it up (a count-based comparison would silently serve the stale rules).
        db.set_transition_rules(vec![TransitionRule::MustDiffer]);
        db.create_object("Data", "Warmup2").unwrap();
        cell.publish(&mut db);
        assert_eq!(cell.read().transition_rules(), &[TransitionRule::MustDiffer]);
        // And again, so the spare that still carries the old rules is patched and republished.
        db.create_object("Data", "Warmup3").unwrap();
        cell.publish(&mut db);
        assert_eq!(cell.read().transition_rules(), &[TransitionRule::MustDiffer]);
    }

    #[test]
    fn rolled_back_transactions_leave_the_next_snapshot_clean() {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let cell = SnapshotCell::new(&mut db);
        db.create_object("Action", "Keep").unwrap();
        cell.publish(&mut db);
        db.begin_transaction().unwrap();
        db.create_object("Action", "Ghost").unwrap();
        db.reclassify_object(alarms, "OutputData").unwrap();
        db.rollback_transaction().unwrap();
        cell.publish(&mut db);
        let s = cell.read();
        assert!(s.object_by_name("Ghost").is_err());
        assert!(s.object_by_name("Keep").is_ok());
        assert_eq!(fingerprint(&s), fingerprint(&db.clone_for_snapshot()));
    }

    #[test]
    fn wholesale_resets_republish_and_recover_incremental_publishing() {
        let mut db = Database::new(figure3_schema());
        db.create_object("Data", "Alarms").unwrap();
        let v1 = db.create_version("v1").unwrap();
        db.create_object("Data", "Later").unwrap();
        let cell = SnapshotCell::new(&mut db);
        // An alternative checkout swaps the whole working store: the snapshot must follow.
        db.checkout_alternative(v1).unwrap();
        cell.publish(&mut db);
        assert!(cell.read().object_by_name("Later").is_err());
        db.return_to_current().unwrap();
        cell.publish(&mut db);
        assert!(cell.read().object_by_name("Later").is_ok());
        // Incremental publishing resumes after the resets.
        db.create_object("Action", "After").unwrap();
        cell.publish(&mut db);
        db.create_object("Action", "After2").unwrap();
        cell.publish(&mut db);
        let s = cell.read();
        assert!(s.object_by_name("After2").is_ok());
        assert_eq!(fingerprint(&s), fingerprint(&db.clone_for_snapshot()));
    }

    #[test]
    fn straggler_readers_force_a_clone_but_never_see_changes() {
        let mut db = Database::new(figure3_schema());
        db.create_object("Data", "Alarms").unwrap();
        let cell = SnapshotCell::new(&mut db);
        let mut pinned = Vec::new();
        let mut prints = Vec::new();
        for i in 0..6 {
            db.create_object("Data", &format!("D{i}")).unwrap();
            cell.publish(&mut db);
            let s = cell.read();
            prints.push(fingerprint(&s));
            pinned.push(s); // every generation stays pinned → every publish hits make_mut
        }
        for (s, print) in pinned.iter().zip(&prints) {
            assert_eq!(&fingerprint(s), print, "pinned snapshot mutated after retirement");
        }
        assert_eq!(fingerprint(&pinned[5]), fingerprint(&db.clone_for_snapshot()));
    }

    #[test]
    fn snapshot_lsn_tracks_the_durable_cursor() {
        let dir = std::env::temp_dir().join(format!("seed-snap-lsn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        let cell = SnapshotCell::new(&mut db);
        let initial = cell.read().lsn();
        assert_eq!(Some(initial), db.durable_lsn());
        db.create_object("Data", "Alarms").unwrap();
        cell.publish(&mut db);
        let s = cell.read();
        assert_eq!(Some(s.lsn()), db.durable_lsn());
        assert!(s.lsn() > initial);
        assert!(s.durability().is_some(), "durable snapshots carry the storage status");
        // Explicit override (the replica path).
        cell.publish_at(&mut db, Some(777));
        assert_eq!(cell.read().lsn(), 777);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::value::Value;
    use proptest::prelude::*;
    use seed_schema::figure3_schema;

    /// One step of the randomized reader/writer schedule.  `Publish` is the interleaving point:
    /// wherever it lands, the published snapshot must equal an exclusive-lock deep copy taken
    /// at the same instant.
    #[derive(Debug, Clone)]
    enum Op {
        CreateData(u8),
        CreateAction(u8),
        SetDescription(u8, String),
        CreateDescription(u8, String),
        Rename(u8, u8),
        Reclassify(u8),
        Link(u8, u8),
        Unlink(u8),
        Delete(u8),
        InheritPattern(u8),
        CreateVersion,
        Begin,
        Commit,
        Rollback,
        Publish,
    }

    fn data_name(i: u8) -> String {
        format!("D{i}")
    }

    fn action_name(i: u8) -> String {
        format!("A{i}")
    }

    fn apply(db: &mut Database, op: &Op) {
        match op {
            Op::CreateData(i) => {
                let _ = db.create_object("Data", &data_name(*i));
            }
            Op::CreateAction(i) => {
                let _ = db.create_object("Action", &action_name(*i));
            }
            Op::CreateDescription(i, text) => {
                if let Ok(parent) = db.object_by_name(&action_name(*i)) {
                    let _ =
                        db.create_dependent(parent.id, "Description", Value::string(text.clone()));
                }
            }
            Op::SetDescription(i, text) => {
                if let Ok(desc) = db.object_by_name(&format!("{}.Description", action_name(*i))) {
                    let _ = db.set_value(desc.id, Value::string(text.clone()));
                }
            }
            Op::Rename(i, j) => {
                if let Ok(obj) = db.object_by_name(&data_name(*i)) {
                    let _ = db.rename_object(obj.id, &data_name(*j));
                }
            }
            Op::Reclassify(i) => {
                if let Ok(obj) = db.object_by_name(&data_name(*i)) {
                    let _ = db.reclassify_object(obj.id, "OutputData");
                }
            }
            Op::Link(i, j) => {
                if let (Ok(d), Ok(a)) =
                    (db.object_by_name(&data_name(*i)), db.object_by_name(&action_name(*j)))
                {
                    let _ = db.create_relationship("Access", &[("from", d.id), ("by", a.id)]);
                }
            }
            Op::Unlink(i) => {
                if let Ok(d) = db.object_by_name(&data_name(*i)) {
                    if let Some(rel) = db.relationships(d.id).first() {
                        let id = rel.record.id;
                        let _ = db.delete_relationship(id);
                    }
                }
            }
            Op::Delete(i) => {
                if let Ok(obj) = db.object_by_name(&data_name(*i)) {
                    let _ = db.delete_object(obj.id);
                }
            }
            Op::InheritPattern(i) => {
                let pattern = match db.any_object_by_name("Pat") {
                    Ok(p) => p.id,
                    Err(_) => match db.create_pattern_object("Data", "Pat") {
                        Ok(p) => p,
                        Err(_) => return,
                    },
                };
                if let Ok(obj) = db.object_by_name(&data_name(*i)) {
                    let _ = db.inherit_pattern(obj.id, pattern);
                }
            }
            Op::CreateVersion => {
                if !db.in_transaction() {
                    let _ = db.create_version("snapshot");
                }
            }
            Op::Begin => {
                let _ = db.begin_transaction();
            }
            Op::Commit => {
                let _ = db.commit_transaction();
            }
            Op::Rollback => {
                let _ = db.rollback_transaction();
            }
            Op::Publish => unreachable!("handled by the schedule loop"),
        }
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        let idx = 0u8..5;
        prop_oneof![
            idx.clone().prop_map(Op::CreateData),
            idx.clone().prop_map(Op::CreateAction),
            (idx.clone(), "[a-z]{0,6}").prop_map(|(i, t)| Op::CreateDescription(i, t)),
            (idx.clone(), "[a-z]{0,6}").prop_map(|(i, t)| Op::SetDescription(i, t)),
            (idx.clone(), 0u8..5).prop_map(|(i, j)| Op::Rename(i, j)),
            idx.clone().prop_map(Op::Reclassify),
            (idx.clone(), 0u8..5).prop_map(|(i, j)| Op::Link(i, j)),
            idx.clone().prop_map(Op::Unlink),
            idx.clone().prop_map(Op::Delete),
            idx.prop_map(Op::InheritPattern),
            (0u8..1).prop_map(|_| Op::CreateVersion),
            (0u8..1).prop_map(|_| Op::Begin),
            (0u8..1).prop_map(|_| Op::Commit),
            (0u8..1).prop_map(|_| Op::Rollback),
            (0u8..3).prop_map(|_| Op::Publish),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The MVCC oracle: for a random interleaved writer/publish schedule, every published
        /// snapshot must be byte-identical to a deep copy taken under the exclusive lock at the
        /// same instant ("the database rolled to LSN L"), and must still be byte-identical at
        /// the end of the run (immutability across later publications that reuse its
        /// generation as the build buffer).
        #[test]
        fn published_snapshots_equal_exclusive_lock_reads(
            ops in proptest::collection::vec(arb_op(), 1..48),
        ) {
            let mut db = Database::new(figure3_schema());
            let cell = SnapshotCell::new(&mut db);
            let mut retained: Vec<(Snapshot, String)> = Vec::new();
            for op in &ops {
                if matches!(op, Op::Publish) {
                    cell.publish(&mut db);
                    let snap = cell.read();
                    // The exclusive-lock oracle: a full deep copy at the same LSN.
                    let locked = db.clone_for_snapshot();
                    let expect = super::tests::fingerprint(&locked);
                    prop_assert_eq!(super::tests::fingerprint(&snap), expect.clone());
                    retained.push((snap, expect));
                } else {
                    apply(&mut db, op);
                }
            }
            // Epochs are strictly monotonic, and every retained generation is still intact.
            for pair in retained.windows(2) {
                prop_assert!(pair[0].0.epoch() < pair[1].0.epoch());
            }
            for (snap, expect) in &retained {
                // Retired snapshots must never be mutated by a later publication.
                prop_assert_eq!(&super::tests::fingerprint(snap), expect);
            }
        }
    }
}
