//! Write-lock table of the central server.
//!
//! "Data that has been copied to a client for update has a write lock in the central database."
//! Locks are per-object and exclusive; a client may re-acquire its own lock (re-checkout).

use std::collections::HashMap;

use seed_core::ObjectId;

use crate::protocol::ClientId;

/// Exclusive write locks keyed by object id.
#[derive(Debug, Default, Clone)]
pub struct LockTable {
    locks: HashMap<ObjectId, ClientId>,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tries to acquire a write lock for `client`; returns the current holder on conflict.
    pub fn acquire(&mut self, object: ObjectId, client: ClientId) -> Result<(), ClientId> {
        match self.locks.get(&object) {
            Some(holder) if *holder != client => Err(*holder),
            _ => {
                self.locks.insert(object, client);
                Ok(())
            }
        }
    }

    /// Releases a single lock if held by `client`.
    pub fn release(&mut self, object: ObjectId, client: ClientId) -> bool {
        if self.locks.get(&object) == Some(&client) {
            self.locks.remove(&object);
            true
        } else {
            false
        }
    }

    /// Releases every lock held by `client`, returning how many were released.
    pub fn release_all(&mut self, client: ClientId) -> usize {
        let before = self.locks.len();
        self.locks.retain(|_, holder| *holder != client);
        before - self.locks.len()
    }

    /// The holder of the lock on `object`, if any.
    pub fn holder(&self, object: ObjectId) -> Option<ClientId> {
        self.locks.get(&object).copied()
    }

    /// Whether `client` holds the lock on `object`.
    pub fn holds(&self, object: ObjectId, client: ClientId) -> bool {
        self.holder(object) == Some(client)
    }

    /// Number of locks currently held.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether no locks are held.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_acquisition_and_release() {
        let mut table = LockTable::new();
        let a = ObjectId(1);
        let b = ObjectId(2);
        assert!(table.acquire(a, 1).is_ok());
        assert!(table.acquire(a, 1).is_ok(), "re-acquiring one's own lock is fine");
        assert_eq!(table.acquire(a, 2), Err(1));
        assert!(table.acquire(b, 2).is_ok());
        assert_eq!(table.len(), 2);
        assert!(table.holds(a, 1));
        assert!(!table.holds(a, 2));
        assert_eq!(table.holder(b), Some(2));

        assert!(!table.release(a, 2), "only the holder can release");
        assert!(table.release(a, 1));
        assert!(table.acquire(a, 2).is_ok());
        assert_eq!(table.release_all(2), 2);
        assert!(table.is_empty());
    }
}
