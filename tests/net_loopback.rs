//! Integration tests of the network layer: real TCP connections on loopback, exercising the
//! acceptance criteria of the `seed-net` subsystem across crates.
//!
//! * the SPADES workload produces byte-identical results through [`RemoteClient`] and the
//!   in-process backend;
//! * two remote clients racing for the same object: exactly one checkout wins and the loser is
//!   told the holder's id;
//! * reads during concurrent check-ins are never torn: one request sees the database either
//!   before or after a whole check-in.

use seed::core::{Database, Value};
use seed::net::{RemoteClient, SeedNetServer};
use seed::schema::figure3_schema;
use seed::server::{SeedServer, ServerError, Update};
use seed::spades::{
    specification_report, RemoteBackend, SeedBackend, SpecBackend, Workload, WorkloadConfig,
};

fn start(db: Database) -> SeedNetServer {
    SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").expect("bind loopback")
}

#[test]
fn spades_workload_is_byte_identical_over_tcp() {
    let workload = Workload::generate(&WorkloadConfig {
        data_elements: 15,
        actions: 8,
        checkpoint_every: 25,
        ..WorkloadConfig::default()
    });
    let mut local = SeedBackend::new();
    assert_eq!(workload.apply(&mut local), 0);

    let server = start(Database::new(figure3_schema()));
    let client = RemoteClient::connect(server.local_addr()).expect("connect");
    let mut remote = RemoteBackend::new(client).expect("schema");
    assert_eq!(workload.apply(&mut remote), 0);

    let local_report = specification_report(&local);
    let remote_report =
        specification_report(&remote).replace(remote.backend_name(), local.backend_name());
    assert_eq!(remote_report, local_report);
    assert_eq!(server.core().locked_count(), 0, "a clean run leaves no locks");
    server.shutdown();
}

#[test]
fn racing_checkouts_have_exactly_one_winner_per_round() {
    let mut db = Database::new(figure3_schema());
    db.create_object("Data", "Contested").unwrap();
    let server = start(db);
    let addr = server.local_addr();

    for _round in 0..5 {
        // Two synchronization points per round: start together, then hold until all resolved.
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(3));
        let racers: Vec<_> = (0..3)
            .map(|_| {
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let mut client = RemoteClient::connect(addr).expect("connect");
                    barrier.wait();
                    let won = match client.checkout(&["Contested"]) {
                        Ok(_) => true,
                        Err(ServerError::Locked { object, holder }) => {
                            assert_eq!(object, "Contested");
                            assert_ne!(
                                holder,
                                client.id(),
                                "the loser learns a *different* holder"
                            );
                            false
                        }
                        Err(other) => panic!("unexpected checkout failure: {other}"),
                    };
                    // Hold the lock until every racer's checkout has resolved — otherwise an
                    // early release lets a second racer "win" the same round.
                    barrier.wait();
                    if won {
                        client.release().expect("release");
                    }
                    won
                })
            })
            .collect();
        let wins = racers.into_iter().map(|r| r.join().expect("racer")).filter(|&won| won).count();
        assert_eq!(wins, 1, "exactly one racer must win the checkout");
    }
    server.shutdown();
}

#[test]
fn remote_reads_never_observe_half_a_checkin() {
    let mut db = Database::new(figure3_schema());
    for name in ["Pair0", "Pair1"] {
        let id = db.create_object("Action", name).unwrap();
        db.create_dependent(id, "Description", Value::string("round 0")).unwrap();
    }
    let server = start(db);
    let addr = server.local_addr();

    let writer = std::thread::spawn(move || {
        let mut client = RemoteClient::connect(addr).expect("connect writer");
        for round in 1..=40u32 {
            client.checkout(&["Pair0", "Pair1"]).expect("checkout");
            client
                .checkin(vec![
                    Update::SetValue {
                        object: "Pair0.Description".into(),
                        value: Value::string(format!("round {round}")),
                    },
                    Update::SetValue {
                        object: "Pair1.Description".into(),
                        value: Value::string(format!("round {round}")),
                    },
                ])
                .expect("checkin");
        }
    });
    let readers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = RemoteClient::connect(addr).expect("connect reader");
                for _ in 0..150 {
                    // One request = one atomic read on the server: both descriptions arrive
                    // from the same database state.
                    let records = client.objects_with_prefix("Pair").expect("prefix read");
                    let values: Vec<&Value> = records
                        .iter()
                        .filter(|r| r.name.to_string().ends_with(".Description"))
                        .map(|r| &r.value)
                        .collect();
                    assert_eq!(values.len(), 2, "both descriptions are visible");
                    assert_eq!(values[0], values[1], "a read observed half a check-in");
                }
            })
        })
        .collect();
    writer.join().expect("writer");
    for reader in readers {
        reader.join().expect("reader");
    }
    let mut probe = RemoteClient::connect(addr).expect("connect probe");
    assert_eq!(
        probe.retrieve("Pair0.Description").expect("final value").value,
        Value::string("round 40")
    );
    server.shutdown();
}
