//! Relationship records.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use seed_schema::AssociationId;

use crate::ident::{ObjectId, RelationshipId};
use crate::value::Value;

/// A stored relationship: an instance of an association, binding objects to roles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationshipRecord {
    /// Stable identifier.
    pub id: RelationshipId,
    /// The association this relationship belongs to (may move within a generalization hierarchy
    /// via re-classification, e.g. `Access` → `Write`).
    pub association: AssociationId,
    /// Role bindings in role-name order of the association.
    pub bindings: Vec<(String, ObjectId)>,
    /// Relationship attribute values (e.g. `NumberOfWrites = 2`).
    pub attributes: BTreeMap<String, Value>,
    /// Whether the relationship is a pattern relationship.
    pub is_pattern: bool,
    /// Logical-deletion tombstone.
    pub deleted: bool,
}

impl RelationshipRecord {
    /// Creates a live, non-pattern relationship.
    pub fn new(
        id: RelationshipId,
        association: AssociationId,
        bindings: Vec<(String, ObjectId)>,
    ) -> Self {
        Self {
            id,
            association,
            bindings,
            attributes: BTreeMap::new(),
            is_pattern: false,
            deleted: false,
        }
    }

    /// The object bound to `role`, if any.
    pub fn bound(&self, role: &str) -> Option<ObjectId> {
        self.bindings.iter().find(|(r, _)| r == role).map(|(_, o)| *o)
    }

    /// The role a given object is bound to, if any.
    pub fn role_of(&self, object: ObjectId) -> Option<&str> {
        self.bindings.iter().find(|(_, o)| *o == object).map(|(r, _)| r.as_str())
    }

    /// Whether `object` participates in this relationship.
    pub fn involves(&self, object: ObjectId) -> bool {
        self.bindings.iter().any(|(_, o)| *o == object)
    }

    /// Objects bound by this relationship, in role order.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.bindings.iter().map(|(_, o)| *o).collect()
    }

    /// Whether the relationship is visible to ordinary retrieval.
    pub fn is_visible(&self) -> bool {
        !self.deleted && !self.is_pattern
    }

    /// Returns a copy with every binding of `from` replaced by `to`.  Used to materialize
    /// inherited pattern relationships in the context of an inheritor.
    pub fn with_substituted(&self, from: ObjectId, to: ObjectId) -> RelationshipRecord {
        let mut copy = self.clone();
        for (_, obj) in copy.bindings.iter_mut() {
            if *obj == from {
                *obj = to;
            }
        }
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> RelationshipRecord {
        RelationshipRecord::new(
            RelationshipId(1),
            AssociationId(0),
            vec![("from".to_string(), ObjectId(10)), ("by".to_string(), ObjectId(20))],
        )
    }

    #[test]
    fn binding_lookups() {
        let r = rel();
        assert_eq!(r.bound("from"), Some(ObjectId(10)));
        assert_eq!(r.bound("by"), Some(ObjectId(20)));
        assert_eq!(r.bound("onto"), None);
        assert_eq!(r.role_of(ObjectId(20)), Some("by"));
        assert_eq!(r.role_of(ObjectId(99)), None);
        assert!(r.involves(ObjectId(10)));
        assert!(!r.involves(ObjectId(11)));
        assert_eq!(r.objects(), vec![ObjectId(10), ObjectId(20)]);
    }

    #[test]
    fn visibility() {
        let mut r = rel();
        assert!(r.is_visible());
        r.is_pattern = true;
        assert!(!r.is_visible());
        r.is_pattern = false;
        r.deleted = true;
        assert!(!r.is_visible());
    }

    #[test]
    fn substitution_replaces_bindings() {
        let r = rel();
        let s = r.with_substituted(ObjectId(10), ObjectId(99));
        assert_eq!(s.bound("from"), Some(ObjectId(99)));
        assert_eq!(s.bound("by"), Some(ObjectId(20)));
        // Original untouched.
        assert_eq!(r.bound("from"), Some(ObjectId(10)));
    }

    #[test]
    fn attributes_store_values() {
        let mut r = rel();
        r.attributes.insert("NumberOfWrites".into(), Value::Integer(2));
        assert_eq!(r.attributes.get("NumberOfWrites"), Some(&Value::Integer(2)));
    }
}
