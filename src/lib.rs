//! Umbrella crate for the SEED reproduction (Glinz & Ludewig, ICDE 1986): re-exports the
//! workspace crates under one roof and hosts the integration tests (`tests/`) and runnable
//! examples (`examples/`).
//!
//! Layer by layer (see `docs/ARCHITECTURE.md` for the full picture):
//!
//! * [`obs`] — lock-free metrics registry, structured event ring and slow-operation log
//!   shared by every layer (catalog: `docs/OBSERVABILITY.md`);
//! * [`storage`] — pages, buffer pool, heap files, WAL, B+ tree, key/value engine;
//! * [`schema`] — classes, associations, generalization, SDL, validation, versioning;
//! * [`core`] — the DBMS: objects, relationships, consistency/completeness, versions, patterns;
//! * [`query`] — the `find …` retrieval language, entity-relationship algebra and the
//!   cost-aware planner with indexed access paths and `explain` (contract: `docs/QUERY.md`);
//! * [`server`] — the two-level multi-user extension (check-out/check-in, write locks);
//! * [`net`] — the network frontend: versioned binary wire protocol, concurrent TCP server,
//!   blocking remote client, and WAL-shipping read replicas (wire contract:
//!   `docs/PROTOCOL.md`; replication runbook: `docs/OPERATIONS.md`);
//! * [`spades`] — the miniature SPADES specification tool, SEED's example application.
//!
//! # Example
//!
//! ```
//! use seed::core::{Database, Value};
//! use seed::schema::figure3_schema;
//!
//! let mut db = Database::new(figure3_schema());
//!
//! // Vague: "there is a thing called Alarms".
//! let alarms = db.create_object("Thing", "Alarms").unwrap();
//! let sensor = db.create_object("Action", "Sensor").unwrap();
//!
//! // More precise: it is data, accessed by Sensor.
//! db.reclassify_object(alarms, "Data").unwrap();
//! db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
//!
//! // Completeness is analyzed on demand, never forced on updates.
//! for finding in &db.completeness_report().findings {
//!     println!("incomplete: {finding}");
//! }
//! # let _ = Value::Undefined;
//! ```

pub use seed_core as core;
pub use seed_net as net;
pub use seed_obs as obs;
pub use seed_query as query;
pub use seed_schema as schema;
pub use seed_server as server;
pub use seed_storage as storage;
pub use spades;
