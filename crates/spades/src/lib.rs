//! # spades
//!
//! A miniature re-creation of **SPADES**, the specification and design system the SEED paper was
//! built for.  SPADES models a target software system semiformally as actions, data and data
//! flows; "development starts with informal, incomplete, and vague textual descriptions and
//! evolves to a rather formal representation by objects and relationships of well defined
//! sorts".
//!
//! The crate exists for two reasons:
//!
//! 1. It is the *example application* of the SEED reproduction — the workloads the paper's
//!    introduction motivates (see `examples/spades_tool.rs`).
//! 2. It carries the paper's only quantitative claim: "The first experiences with SPADES using
//!    SEED show that SPADES has become **considerably slower**, but much more flexible."  To
//!    reproduce that claim we provide the same tool API over two backends:
//!    * [`SeedBackend`] — the tool on top of the SEED DBMS (consistency checking, versions,
//!      vague data, patterns), and
//!    * [`DirectBackend`] — the pre-SEED way: plain in-memory structures, no checking, versions
//!      as full copies.
//!
//!    The benchmark `spades_overhead` drives both with the same [`workload`] and reports the
//!    slowdown factor.
//!
//! Since the network layer exists, the tool also runs in the paper's *deployed* two-level
//! shape: [`RemoteBackend`] is the same tool API over a `seed-net` [`seed_net::RemoteClient`],
//! talking checkout / check-in to a central server over TCP (see `examples/net_demo.rs`).

pub mod backend;
pub mod direct_backend;
pub mod error;
pub mod model;
pub mod remote_backend;
pub mod report;
pub mod seed_backend;
pub mod workload;

pub use backend::SpecBackend;
pub use direct_backend::DirectBackend;
pub use error::{SpadesError, SpadesResult};
pub use model::{ElementInfo, ElementKind, FlowKind};
pub use remote_backend::RemoteBackend;
pub use report::specification_report;
pub use seed_backend::SeedBackend;
pub use workload::{SpecOp, Workload, WorkloadConfig};
