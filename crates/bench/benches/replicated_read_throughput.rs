//! E12 — WAL-shipping replication: remote read throughput over loopback through the
//! read-preferred client, with 0 (primary alone), 1 and 2 read replicas.
//!
//! Each iteration runs a fixed batch of `retrieve` round-trips spread across a fixed client
//! fleet; the interesting number is how the per-iteration time shrinks as replicas are added —
//! every replica serves reads from its own database behind its own read–write lock, so the
//! topology adds capacity instead of queueing on one node.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seed_core::Database;
use seed_net::{RemoteClient, ReplicaNode, SeedNetServer};
use seed_schema::figure3_schema;
use seed_server::SeedServer;

const OBJECTS: usize = 500;
const CLIENTS: usize = 4;
const OPS_PER_ITER: usize = 400;

fn replicated_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_replicated_reads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for replicas in [0usize, 1, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &replicas, |b, &replicas| {
            let base = std::env::temp_dir().join(format!("seed-bench-e12c-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&base);
            let mut db =
                Database::create_durable(base.join("primary"), figure3_schema()).expect("primary");
            db.begin_transaction().expect("txn");
            for i in 0..OBJECTS {
                db.create_object("Data", &format!("Data{i:05}")).expect("create");
            }
            db.commit_transaction().expect("commit");
            let server = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").expect("bind");
            let addr = server.local_addr();
            let target = server.core().with_database(|db| db.durable_lsn().unwrap_or(0));
            let nodes: Vec<ReplicaNode> = (0..replicas)
                .map(|i| {
                    let node = ReplicaNode::start(base.join(format!("r{i}")), addr, "127.0.0.1:0")
                        .expect("replica");
                    assert!(node.wait_for_lsn(target, std::time::Duration::from_secs(30)));
                    node
                })
                .collect();
            let replica_addrs: Vec<_> = nodes.iter().map(|n| n.local_addr()).collect();
            b.iter(|| {
                let ops_each = OPS_PER_ITER / CLIENTS;
                let workers: Vec<_> = (0..CLIENTS)
                    .map(|w| {
                        let replica_addrs = replica_addrs.clone();
                        std::thread::spawn(move || {
                            let mut client =
                                RemoteClient::connect_read_preferred(addr, &replica_addrs)
                                    .expect("connect");
                            for i in 0..ops_each {
                                let name = format!("Data{:05}", (w * 131 + i) % OBJECTS);
                                client.retrieve(&name).expect("retrieve");
                            }
                            ops_each
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().expect("worker")).sum::<usize>()
            });
            for node in nodes {
                node.shutdown();
            }
            server.shutdown();
            let _ = std::fs::remove_dir_all(&base);
        });
    }
    group.finish();
}

criterion_group!(benches, replicated_reads);
criterion_main!(benches);
