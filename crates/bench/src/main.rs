//! Prints the quick evaluation report (one row per experiment in `EXPERIMENTS.md`) and writes
//! the machine-readable `BENCH.json` next to it.
//!
//! Run with `cargo run -p seed-bench --release`; pass `--smoke` for the small-parameter variant
//! CI runs (seconds instead of minutes, same metrics).  Pass `--metrics` to additionally print
//! the final metrics registry in Prometheus text exposition format on stdout (see
//! `docs/OBSERVABILITY.md`).

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let metrics = std::env::args().any(|a| a == "--metrics");
    seed_bench::run_report_mode(smoke);
    if metrics {
        print!("{}", seed_obs::global().snapshot().to_prometheus_text());
    }
}
