//! The event-loop TCP frontend: a readiness-polled reactor over nonblocking sockets, feeding a
//! sharded worker pool, over a shared [`SeedServer`].
//!
//! One reactor thread owns every socket.  It accepts connections, decodes as many complete
//! frames as each wakeup delivers ([`FrameDecoder`]), and hands the decoded requests to worker
//! shards over channels; a connection's requests always go to the **same** shard, so they
//! execute serially in arrival order (checkout → check-in ordering is preserved) while
//! different connections proceed in parallel.  Responses come back tagged with a per-connection
//! sequence number and are emitted strictly in request order — a peer may therefore *pipeline*:
//! write many request frames before reading a single response, and read the responses back in
//! the order it sent the requests.  The wire format is unchanged (still protocol v3);
//! pipelining is purely a scheduling property of this server.
//!
//! Two backpressure rules bound memory per connection: a connection with
//! [`NetServerConfig::max_in_flight`] requests admitted-but-unanswered is not read from until
//! responses drain, and a connection whose peer stops draining its socket (output backlog past
//! a high-water mark) is likewise paused.  All responses ready for a connection are coalesced
//! into one `write` syscall per wakeup.
//!
//! Each connection is handshaken onto its own [`ClientId`]; the reactor enforces that identity
//! on every lock-table request (a peer cannot act for another connection's client), and when
//! the connection closes — cleanly or not — the client's write locks and checkout bookkeeping
//! are released, the paper's crash-recovery rule for checked-out data.  The idle reaper runs as
//! a reactor tick.  Replication sessions (Subscribe / LogBatch / Ack) ride the same event loop:
//! the reactor owns the framing and the one-batch-in-flight flow control, the worker shards cut
//! each shipment under one database read lock (`replication::cut_shipment`).

use std::collections::{BTreeMap, HashMap};
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use polling::{Event, Poller};
use seed_server::{ClientId, Request, Response, SeedServer, ServerError};

use crate::codec::{decode_request, encode_response_versioned};
use crate::error::WireError;
use crate::replication::{cut_shipment, ShipmentPlan};
use crate::wire::{
    negotiate, write_frame, Ack, Frame, FrameDecoder, FrameKind, HandshakeRole, Hello, Subscribe,
    Welcome,
};

/// Tuning knobs of the TCP frontend.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Reclaim the locks of clients idle longer than this (`None` disables the reaper; the
    /// disconnect path still releases locks when a connection closes).
    pub idle_timeout: Option<Duration>,
    /// How often the reaper checks for idle clients.
    pub reaper_interval: Duration,
    /// Free-form server identification sent in the handshake.
    pub banner: String,
    /// How often a replication session polls the WAL for news to ship.
    pub replication_poll: Duration,
    /// Longest a replication session stays silent: an empty heartbeat batch ships after this,
    /// so replicas can track the primary's end of log (and their lag) through idle periods.
    pub replication_heartbeat: Duration,
    /// Number of worker shards executing requests.  A connection is pinned to one shard
    /// (its requests run serially, in order); throughput scales across connections.
    pub worker_shards: usize,
    /// Most requests a single connection may have admitted-but-unanswered.  A pipelining peer
    /// past this window is not read from until responses drain (bounded memory per connection).
    pub max_in_flight: usize,
    /// How long shutdown waits for in-flight pipelined requests to finish and their responses
    /// to flush before closing the remaining connections anyway.
    pub shutdown_drain: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            idle_timeout: None,
            reaper_interval: Duration::from_millis(200),
            banner: format!("seed-net/{}", env!("CARGO_PKG_VERSION")),
            replication_poll: Duration::from_millis(10),
            replication_heartbeat: Duration::from_secs(1),
            worker_shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8),
            max_in_flight: 128,
            shutdown_drain: Duration::from_secs(5),
        }
    }
}

/// The poller key reserved for the listening socket.  Connection tokens start at 1.
const LISTENER: usize = 0;

/// How long a fresh connection may take to complete the handshake.  Without a deadline, a peer
/// that connects and never sends its hello would hold a registration for the server's whole
/// lifetime — and the idle reaper cannot reclaim it, because no client id exists yet.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Stop reading a connection whose un-flushed output backlog passes this (the peer is not
/// draining its socket; buffering more responses for it would be unbounded memory).
const OUT_HIGH_WATER: usize = 1024 * 1024;

/// Read syscall granularity.
const READ_CHUNK: usize = 16 * 1024;

/// The frontend's metric handles, registered once on first use.  Request latency is recorded
/// per request kind (`net_request_us_<kind>`); everything else is whole-server.
struct NetMetrics {
    connections: seed_obs::Gauge,
    connections_total: seed_obs::Counter,
    bytes_in: seed_obs::Counter,
    bytes_out: seed_obs::Counter,
    in_flight: seed_obs::Gauge,
    backpressure_pauses: seed_obs::Counter,
    write_coalesce_bytes: seed_obs::Histogram,
    reaper_reclaims: seed_obs::Counter,
    io_errors: seed_obs::Counter,
    batches_shipped: seed_obs::Counter,
    request_us: HashMap<&'static str, seed_obs::Histogram>,
}

fn net_metrics() -> &'static NetMetrics {
    static METRICS: OnceLock<NetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = seed_obs::global();
        NetMetrics {
            connections: r.gauge("net_connections"),
            connections_total: r.counter("net_connections_total"),
            bytes_in: r.counter("net_bytes_in_total"),
            bytes_out: r.counter("net_bytes_out_total"),
            in_flight: r.gauge("net_in_flight"),
            backpressure_pauses: r.counter("net_backpressure_pauses_total"),
            write_coalesce_bytes: r.histogram("net_write_coalesce_bytes"),
            reaper_reclaims: r.counter("net_reaper_reclaims_total"),
            io_errors: r.counter("net_io_errors_total"),
            batches_shipped: r.counter("repl_batches_shipped_total"),
            request_us: Request::KIND_NAMES
                .iter()
                .map(|kind| (*kind, r.histogram(&format!("net_request_us_{kind}"))))
                .collect(),
        }
    })
}

/// Routes a connection I/O failure into the structured log (and `net_io_errors_total`) with
/// the peer address and, once handshaken, the session's client id — previously these errors
/// were dropped on the floor and a dead peer looked identical to a clean close.
fn log_io_error(conn: &Conn, what: &str, detail: String) {
    net_metrics().io_errors.inc();
    let mut fields: Vec<(&str, String)> = vec![("peer", conn.peer.to_string()), ("error", detail)];
    if let Some(client) = conn.client_id() {
        fields.push(("client", client.to_string()));
    }
    seed_obs::global().events().emit(seed_obs::Level::Warn, "net", what, &fields);
}

/// A running TCP server around a shared [`SeedServer`].
pub struct SeedNetServer {
    core: Arc<SeedServer>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    poller: Arc<Poller>,
    reactor_thread: Option<JoinHandle<()>>,
}

impl SeedNetServer {
    /// Binds with default configuration.  Use `"127.0.0.1:0"` to let the OS pick a port (see
    /// [`SeedNetServer::local_addr`]).
    pub fn bind(server: SeedServer, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::with_config(server, addr, NetServerConfig::default())
    }

    /// Binds a listener and starts the reactor and its worker shards.
    pub fn with_config(
        server: SeedServer,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let core = Arc::new(server);
        let stop = Arc::new(AtomicBool::new(false));
        let poller = Arc::new(Poller::new()?);
        poller.add(&listener, Event::readable(LISTENER))?;

        let shard_count = config.worker_shards.max(1);
        let (done_tx, done_rx) = unbounded::<Done>();
        let mut shards = Vec::with_capacity(shard_count);
        let mut workers = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let (job_tx, job_rx) = unbounded::<Job>();
            shards.push(job_tx);
            let core = core.clone();
            let done = done_tx.clone();
            let poller = poller.clone();
            let handle = std::thread::Builder::new()
                .name(format!("seed-net-worker-{i}"))
                .spawn(move || worker_loop(&core, job_rx, done, &poller))?;
            workers.push(handle);
        }
        drop(done_tx);

        let reactor = Reactor {
            core: core.clone(),
            config,
            poller: poller.clone(),
            listener,
            stop: stop.clone(),
            conns: HashMap::new(),
            next_token: LISTENER + 1,
            shards,
            done_rx,
            workers,
            last_reap: Instant::now(),
            draining_since: None,
        };
        let reactor_thread = std::thread::Builder::new()
            .name("seed-net-reactor".into())
            .spawn(move || reactor.run())?;

        Ok(Self { core, addr, stop, poller, reactor_thread: Some(reactor_thread) })
    }

    /// The address the server listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared central server (for in-process inspection next to remote clients).
    pub fn core(&self) -> Arc<SeedServer> {
        self.core.clone()
    }

    /// The process-wide metrics registry rendered in Prometheus text exposition format —
    /// the scrape surface for anything that speaks Prometheus rather than SEWP.
    pub fn metrics_text(&self) -> String {
        seed_obs::global().snapshot().to_prometheus_text()
    }

    /// Stops accepting, drains in-flight pipelined requests (bounded by
    /// [`NetServerConfig::shutdown_drain`]) and waits for the reactor and every worker shard.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.poller.notify();
        if let Some(handle) = self.reactor_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SeedNetServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// One unit of work for a worker shard.
enum Job {
    /// Answer one client request frame.  `frame` is the request payload, or the ordered
    /// protocol-error text when the reactor already rejected the frame (wrong kind, recoverable
    /// framing error) — the error response must still be emitted *in sequence*.
    Client {
        token: usize,
        seq: u64,
        client: ClientId,
        version: u16,
        frame: Result<Vec<u8>, String>,
    },
    /// Cut one replication shipment for the session at cursor `next`.
    Pump { token: usize, next: u64, answer_now: bool, heartbeat_due: bool },
}

/// A worker shard's completion, routed back to the reactor.
enum Done {
    /// The encoded response frame for (`token`, `seq`); `close` ends the connection after it.
    Client { token: usize, seq: u64, bytes: Vec<u8>, close: bool },
    /// The outcome of a replication pump tick.
    Pump { token: usize, outcome: PumpOutcome },
}

enum PumpOutcome {
    /// Nothing to ship and no answer due.
    Idle,
    /// An encoded log-batch frame to ship (then await the replica's ack).
    Batch(Vec<u8>),
    /// An encoded reject frame; close the session after it flushes.
    Reject(Vec<u8>),
    /// Storage failure; close the session.
    End,
}

fn worker_loop(core: &SeedServer, jobs: Receiver<Job>, done: Sender<Done>, poller: &Poller) {
    while let Ok(job) = jobs.recv() {
        let completion = match job {
            Job::Client { token, seq, client, version, frame } => {
                let (response, close) = answer(core, client, frame);
                let payload = encode_response_versioned(&response, version);
                let mut bytes = Vec::with_capacity(payload.len() + 16);
                write_frame(&mut bytes, FrameKind::Response, &payload)
                    .expect("writing a frame into a Vec cannot fail");
                Done::Client { token, seq, bytes, close }
            }
            Job::Pump { token, next, answer_now, heartbeat_due } => {
                let outcome = match cut_shipment(core, next, answer_now, heartbeat_due) {
                    ShipmentPlan::Idle => PumpOutcome::Idle,
                    ShipmentPlan::End => PumpOutcome::End,
                    ShipmentPlan::Reject(reason) => {
                        let mut bytes = Vec::new();
                        write_frame(&mut bytes, FrameKind::Reject, reason.as_bytes())
                            .expect("writing a frame into a Vec cannot fail");
                        PumpOutcome::Reject(bytes)
                    }
                    ShipmentPlan::Batch(batch) => {
                        let payload = batch.encode();
                        let mut bytes = Vec::with_capacity(payload.len() + 16);
                        write_frame(&mut bytes, FrameKind::LogBatch, &payload)
                            .expect("writing a frame into a Vec cannot fail");
                        PumpOutcome::Batch(bytes)
                    }
                };
                Done::Pump { token, outcome }
            }
        };
        if done.send(completion).is_err() {
            break;
        }
        // Wake the reactor so the completion is emitted promptly.
        let _ = poller.notify();
    }
}

/// Answers one client frame: the request-validation pipeline of the old per-connection session
/// loop, unchanged — identity enforcement, the Connect rejection, activity touch, dispatch.
fn answer(core: &SeedServer, client: ClientId, frame: Result<Vec<u8>, String>) -> (Response, bool) {
    let payload = match frame {
        Ok(payload) => payload,
        Err(msg) => return (Response::Error(ServerError::Protocol(msg)), false),
    };
    let request = match decode_request(&payload) {
        Ok(request) => request,
        Err(e) => return (Response::Error(ServerError::from(e)), false),
    };
    // Per-connection identity: lock-table requests may only act for the client id bound to
    // this connection at handshake.
    if let Some(claimed) = request.client_id() {
        if claimed != client {
            return (
                Response::Error(ServerError::Protocol(format!(
                    "request claims client {claimed}, but this connection is client {client}"
                ))),
                false,
            );
        }
    }
    // Identity is assigned at handshake, one per connection; serving Connect here would mint
    // session entries nothing ever cleans up.
    if matches!(request, Request::Connect) {
        return (
            Response::Error(ServerError::Protocol(
                "client identity is assigned at handshake; open a new connection instead"
                    .to_string(),
            )),
            false,
        );
    }
    core.touch(client);
    let closing = matches!(request, Request::Shutdown);
    let kind = request.kind_name();
    let start = Instant::now();
    let response = core.handle(request);
    if let Some(latency) = net_metrics().request_us.get(kind) {
        latency.observe_duration(start.elapsed());
    }
    (response, closing)
}

/// Where a connection is in its lifecycle.
enum ConnState {
    /// Awaiting the hello frame (deadlined — no client id exists for the reaper to govern).
    Handshake { deadline: Instant },
    /// A handshaken request/response session.
    Client(ClientSession),
    /// A handshaken replica awaiting its subscribe frame.
    ReplicaPending { client: ClientId },
    /// A subscribed replication session.
    Replica(ReplicaSession),
}

struct ClientSession {
    client: ClientId,
    version: u16,
    /// Sequence number assigned to the next admitted request.
    next_seq: u64,
    /// Sequence number of the next response to emit (responses go out in request order).
    next_emit: u64,
    /// Completed responses waiting for their turn, keyed by sequence number.
    ready: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Requests admitted but not yet completed by a worker.
    in_flight: usize,
    /// A close-flagged response (`Request::Shutdown`) was emitted; later responses are dropped,
    /// exactly as the old per-connection loop never read past a shutdown.
    halted: bool,
}

struct ReplicaSession {
    client: ClientId,
    /// First LSN the replica still needs (`acked + 1`; acks may move it down on a resync).
    next: u64,
    /// The subscribe deserves a position-sync batch even when there is nothing to ship.
    answer_now: bool,
    /// Pump at the next tick without waiting out `replication_poll` (set by the subscribe and
    /// by every ack — new records ship promptly, but a caught-up cursor goes idle instead of
    /// ping-ponging heartbeats against instant acks).
    pump_now: bool,
    /// One batch in flight: true from batch emission until the replica's ack.
    awaiting_ack: bool,
    /// A pump job is on a worker shard; don't schedule another.
    pump_busy: bool,
    last_sent: Instant,
    last_pump: Instant,
}

struct Conn {
    stream: TcpStream,
    /// Peer address, captured at accept for the I/O-error log.
    peer: SocketAddr,
    decoder: FrameDecoder,
    /// Coalesced output: every frame ready for this connection, flushed in one write per
    /// wakeup.  `out_pos` marks the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// No more frames are read or admitted; the connection closes once in-flight work drains
    /// and the output flushes (or the write side dies).
    closing: bool,
    /// The write side failed; pending output is discarded and the close is immediate.
    write_dead: bool,
    /// Something happened this wakeup (event, completion, admission): sweep this connection.
    touched: bool,
    /// Last pause verdict seen at re-arm time, so `net_backpressure_pauses_total` counts
    /// pause *onsets* instead of every wakeup spent paused.
    paused: bool,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn client_id(&self) -> Option<ClientId> {
        match &self.state {
            ConnState::Handshake { .. } => None,
            ConnState::Client(s) => Some(s.client),
            ConnState::ReplicaPending { client } => Some(*client),
            ConnState::Replica(s) => Some(s.client),
        }
    }
}

fn append_frame(out: &mut Vec<u8>, kind: FrameKind, payload: &[u8]) {
    write_frame(out, kind, payload).expect("writing a frame into a Vec cannot fail");
}

fn reject(conn: &mut Conn, reason: &[u8]) {
    append_frame(&mut conn.out, FrameKind::Reject, reason);
    conn.closing = true;
}

/// Emits every consecutively-ready response into the connection's output buffer.  Runs during
/// shutdown drain too: `closing` stops *reads*, never the emission of answers already earned.
fn emit_ready(conn: &mut Conn) {
    let ConnState::Client(session) = &mut conn.state else { return };
    while !session.halted {
        let Some((bytes, close)) = session.ready.remove(&session.next_emit) else { break };
        session.next_emit += 1;
        conn.out.extend_from_slice(&bytes);
        if close {
            session.halted = true;
            conn.closing = true;
        }
    }
    if session.halted {
        session.ready.clear();
    }
}

/// Write coalescing: one `write` syscall covers everything emitted this wakeup (looping only
/// on partial writes).
fn flush_out(conn: &mut Conn) {
    if conn.out_pos < conn.out.len() {
        net_metrics().write_coalesce_bytes.observe(conn.backlog() as u64);
    }
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                log_io_error(conn, "write returned zero bytes", "peer stopped accepting".into());
                conn.write_dead = true;
                break;
            }
            Ok(n) => {
                conn.out_pos += n;
                net_metrics().bytes_out.add(n as u64);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                log_io_error(conn, "write error", e.to_string());
                conn.write_dead = true;
                break;
            }
        }
    }
    if conn.write_dead || conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    } else if conn.out_pos >= 64 * 1024 {
        // Reclaim the flushed prefix before it grows unbounded under a slow peer.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    if conn.write_dead {
        conn.closing = true;
    }
}

struct Reactor {
    core: Arc<SeedServer>,
    config: NetServerConfig,
    poller: Arc<Poller>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    shards: Vec<Sender<Job>>,
    done_rx: Receiver<Done>,
    workers: Vec<JoinHandle<()>>,
    last_reap: Instant,
    draining_since: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.stop.load(Ordering::SeqCst) && self.draining_since.is_none() {
                self.begin_drain();
            }
            if let Some(since) = self.draining_since {
                if self.conns.is_empty() || since.elapsed() >= self.config.shutdown_drain {
                    break;
                }
            }
            events.clear();
            let _ = self.poller.wait(&mut events, self.poll_timeout());
            // Completions first: a freed in-flight window lets paused connections resume in
            // the same sweep.
            while let Ok(done) = self.done_rx.try_recv() {
                self.on_done(done);
            }
            for event in events.drain(..) {
                if event.key == LISTENER {
                    self.accept_burst();
                } else if event.key != usize::MAX {
                    self.on_io(event.key, event.readable);
                }
            }
            self.tick();
            self.sweep();
        }
        self.finish();
    }

    /// Stop accepting and flag every connection for a drained close: reads stop immediately,
    /// in-flight responses still complete and flush (bounded by `shutdown_drain`).
    fn begin_drain(&mut self) {
        self.draining_since = Some(Instant::now());
        let _ = self.poller.delete(&self.listener);
        for conn in self.conns.values_mut() {
            conn.closing = true;
            conn.touched = true;
        }
    }

    fn poll_timeout(&self) -> Option<Duration> {
        if self.draining_since.is_some() {
            return Some(Duration::from_millis(5));
        }
        let mut timeout: Option<Duration> = None;
        let mut consider = |d: Duration| {
            let d = d.max(Duration::from_millis(1));
            timeout = Some(match timeout {
                Some(t) if t < d => t,
                _ => d,
            });
        };
        if self.config.idle_timeout.is_some() {
            consider(self.config.reaper_interval.saturating_sub(self.last_reap.elapsed()));
        }
        let now = Instant::now();
        for conn in self.conns.values() {
            match &conn.state {
                ConnState::Handshake { deadline } => {
                    consider(deadline.saturating_duration_since(now));
                }
                ConnState::Replica(s) if !s.awaiting_ack && !s.pump_busy && !conn.closing => {
                    consider(self.config.replication_poll);
                }
                _ => {}
            }
        }
        timeout
    }

    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if self.draining_since.is_some() {
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.add(&stream, Event::readable(token)).is_err() {
                        continue;
                    }
                    net_metrics().connections.inc();
                    net_metrics().connections_total.inc();
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            peer,
                            decoder: FrameDecoder::new(),
                            out: Vec::new(),
                            out_pos: 0,
                            state: ConnState::Handshake {
                                deadline: Instant::now() + HANDSHAKE_TIMEOUT,
                            },
                            closing: false,
                            write_dead: false,
                            touched: true,
                            paused: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        // Oneshot delivery: re-arm the listener.
        let _ = self.poller.modify(&self.listener, Event::readable(LISTENER));
    }

    fn on_io(&mut self, token: usize, readable: bool) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        conn.touched = true;
        if readable && !conn.closing {
            self.pump_read(token);
        }
    }

    /// Reads until the socket runs dry, the connection pauses (backpressure) or closes,
    /// dispatching every complete frame as it is decoded.
    fn pump_read(&mut self, token: usize) {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            self.dispatch_frames(token);
            let Some(conn) = self.conns.get(&token) else { return };
            if conn.closing {
                return;
            }
            if self.read_paused(token) {
                return;
            }
            let conn = self.conns.get_mut(&token).expect("checked above");
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF: the peer is gone.  Frames still buffered but undispatched are
                    // dropped — same as the old server, which never read past a disconnect.
                    conn.closing = true;
                    return;
                }
                Ok(n) => {
                    conn.decoder.extend(&buf[..n]);
                    net_metrics().bytes_in.add(n as u64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    log_io_error(conn, "read error", e.to_string());
                    conn.closing = true;
                    conn.write_dead = true;
                    return;
                }
            }
        }
    }

    /// Decodes and routes every complete buffered frame, honoring backpressure between frames.
    fn dispatch_frames(&mut self, token: usize) {
        loop {
            {
                let Some(conn) = self.conns.get(&token) else { return };
                if conn.closing {
                    return;
                }
            }
            if self.read_paused(token) {
                return;
            }
            let step = self.conns.get_mut(&token).expect("checked above").decoder.next_frame();
            match step {
                Ok(Some(frame)) => self.route_frame(token, frame),
                Ok(None) => return,
                Err(WireError::Recoverable(msg)) => {
                    // The frame boundary held.  A client session answers in sequence and
                    // lives on; any other state treats it as a handshake/stream failure.
                    let conn = self.conns.get_mut(&token).expect("checked above");
                    if matches!(conn.state, ConnState::Client(_)) {
                        self.admit(token, Err(msg));
                    } else {
                        conn.closing = true;
                        return;
                    }
                }
                Err(_) => {
                    // Desync (bad magic, unknown kind, oversize): the stream is unusable.
                    self.conns.get_mut(&token).expect("checked above").closing = true;
                    return;
                }
            }
        }
    }

    fn route_frame(&mut self, token: usize, frame: Frame) {
        enum Route {
            Hello,
            Client,
            Subscribe(ClientId),
            Replica,
        }
        let route = match &self.conns.get(&token).expect("routed for a live conn").state {
            ConnState::Handshake { .. } => Route::Hello,
            ConnState::Client(_) => Route::Client,
            ConnState::ReplicaPending { client } => Route::Subscribe(*client),
            ConnState::Replica(_) => Route::Replica,
        };
        match route {
            Route::Hello => self.on_hello(token, frame),
            Route::Client => {
                if frame.kind == FrameKind::Request {
                    self.admit(token, Ok(frame.payload));
                } else {
                    self.admit(
                        token,
                        Err(format!("expected a request frame, got {:?}", frame.kind)),
                    );
                }
            }
            Route::Subscribe(client) => self.on_subscribe(token, client, frame),
            Route::Replica => self.on_replica_frame(token, frame),
        }
    }

    /// Hello in, Welcome (or Reject) out — the old `handshake()`, minus the blocking reads.
    fn on_hello(&mut self, token: usize, frame: Frame) {
        let conn = self.conns.get_mut(&token).expect("routed for a live conn");
        if frame.kind != FrameKind::Hello {
            reject(conn, b"handshake must start with a hello frame");
            return;
        }
        let hello = match Hello::decode(&frame.payload) {
            Ok(hello) => hello,
            Err(e) => {
                reject(conn, e.to_string().as_bytes());
                return;
            }
        };
        let version = match negotiate(&hello) {
            Ok(version) => version,
            Err(reason) => {
                reject(conn, reason.as_bytes());
                return;
            }
        };
        // The replication kinds exist only from v2 on; a v1-negotiated replica could never
        // speak its own stream.
        if hello.role == HandshakeRole::Replica && version < 2 {
            reject(conn, b"replication requires protocol v2");
            return;
        }
        let client = self.core.connect();
        let welcome = Welcome { version, client_id: client, banner: self.config.banner.clone() };
        append_frame(&mut conn.out, FrameKind::Welcome, &welcome.encode());
        conn.state = match hello.role {
            HandshakeRole::Replica => ConnState::ReplicaPending { client },
            HandshakeRole::Client => ConnState::Client(ClientSession {
                client,
                version,
                next_seq: 0,
                next_emit: 0,
                ready: BTreeMap::new(),
                in_flight: 0,
                halted: false,
            }),
        };
    }

    fn on_subscribe(&mut self, token: usize, client: ClientId, frame: Frame) {
        if frame.kind != FrameKind::Subscribe {
            let conn = self.conns.get_mut(&token).expect("routed for a live conn");
            reject(conn, b"a replica session must open with a subscribe frame");
            return;
        }
        let subscribe = match Subscribe::decode(&frame.payload) {
            Ok(subscribe) => subscribe,
            Err(e) => {
                let conn = self.conns.get_mut(&token).expect("routed for a live conn");
                reject(conn, e.to_string().as_bytes());
                return;
            }
        };
        let next = subscribe.from_lsn.max(1);
        // The subscribe IS the first ack: pin WAL retention to the cursor before the first
        // batch ships, so a checkpoint racing the subscribe cannot truncate the tail out from
        // under it.
        self.core.note_replica_ack(client, next - 1);
        let now = Instant::now();
        let conn = self.conns.get_mut(&token).expect("routed for a live conn");
        conn.state = ConnState::Replica(ReplicaSession {
            client,
            next,
            answer_now: true, // the subscribe deserves a prompt position sync
            pump_now: true,
            awaiting_ack: false,
            pump_busy: false,
            last_sent: now,
            last_pump: now,
        });
    }

    fn on_replica_frame(&mut self, token: usize, frame: Frame) {
        let (client, applied) = {
            let conn = self.conns.get_mut(&token).expect("routed for a live conn");
            let ConnState::Replica(session) = &mut conn.state else { return };
            // Flow control is one batch in flight; anything but the awaited ack (EOF, desync,
            // wrong kind) ends the stream, as in the old session loop.
            if frame.kind != FrameKind::Ack || !session.awaiting_ack {
                conn.closing = true;
                return;
            }
            match Ack::decode(&frame.payload) {
                Ok(ack) => (session.client, ack.applied_lsn),
                Err(_) => {
                    conn.closing = true;
                    return;
                }
            }
        };
        self.core.touch(client);
        self.core.note_replica_ack(client, applied);
        let conn = self.conns.get_mut(&token).expect("routed for a live conn");
        let ConnState::Replica(session) = &mut conn.state else { return };
        // The ack IS the cursor — including backwards: a reset snapshot rebinds a replica
        // whose cursor came from a longer (different or restored) log to this log's positions,
        // and `next` must follow it down or the session would re-ship the snapshot forever.
        session.next = applied + 1;
        session.awaiting_ack = false;
        session.pump_now = true; // re-check the log promptly; idle if nothing new shipped
    }

    /// Admits one request (or its ordered rejection) into the connection's pipeline and hands
    /// it to the connection's shard.  Same shard every time: a connection's requests execute
    /// serially in arrival order.
    fn admit(&mut self, token: usize, frame: Result<Vec<u8>, String>) {
        let shard = token % self.shards.len();
        let conn = self.conns.get_mut(&token).expect("admitting for a live conn");
        let ConnState::Client(session) = &mut conn.state else { return };
        let seq = session.next_seq;
        session.next_seq += 1;
        session.in_flight += 1;
        net_metrics().in_flight.inc();
        conn.touched = true;
        let job =
            Job::Client { token, seq, client: session.client, version: session.version, frame };
        let _ = self.shards[shard].send(job);
    }

    fn on_done(&mut self, done: Done) {
        match done {
            Done::Client { token, seq, bytes, close } => {
                net_metrics().in_flight.dec();
                let Some(conn) = self.conns.get_mut(&token) else { return };
                conn.touched = true;
                let ConnState::Client(session) = &mut conn.state else { return };
                session.in_flight -= 1;
                session.ready.insert(seq, (bytes, close));
            }
            Done::Pump { token, outcome } => {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                conn.touched = true;
                let ConnState::Replica(session) = &mut conn.state else { return };
                session.pump_busy = false;
                match outcome {
                    PumpOutcome::Idle => {}
                    PumpOutcome::Batch(bytes) => {
                        if !conn.closing {
                            conn.out.extend_from_slice(&bytes);
                            session.awaiting_ack = true;
                            session.last_sent = Instant::now();
                            net_metrics().batches_shipped.inc();
                        }
                    }
                    PumpOutcome::Reject(bytes) => {
                        conn.out.extend_from_slice(&bytes);
                        conn.closing = true;
                    }
                    PumpOutcome::End => conn.closing = true,
                }
            }
        }
    }

    fn read_paused(&self, token: usize) -> bool {
        let Some(conn) = self.conns.get(&token) else { return true };
        if conn.backlog() > OUT_HIGH_WATER {
            return true;
        }
        match &conn.state {
            ConnState::Client(s) => s.in_flight + s.ready.len() >= self.config.max_in_flight,
            _ => false,
        }
    }

    /// Timer work: the idle reaper, handshake deadlines, replication pump scheduling.
    fn tick(&mut self) {
        let now = Instant::now();
        if let Some(timeout) = self.config.idle_timeout {
            if now.duration_since(self.last_reap) >= self.config.reaper_interval {
                self.last_reap = now;
                let reclaimed = self.core.reclaim_idle(timeout);
                if !reclaimed.is_empty() {
                    net_metrics().reaper_reclaims.add(reclaimed.len() as u64);
                    seed_obs::global().events().emit(
                        seed_obs::Level::Warn,
                        "net",
                        "idle reaper reclaimed client locks",
                        &[("clients", format!("{reclaimed:?}"))],
                    );
                }
            }
        }
        let mut pumps = Vec::new();
        for (token, conn) in self.conns.iter_mut() {
            match &mut conn.state {
                ConnState::Handshake { deadline } if now >= *deadline => {
                    log_io_error(conn, "handshake timed out", "no hello within deadline".into());
                    conn.closing = true;
                    conn.touched = true;
                }
                ConnState::Replica(session) => {
                    if conn.closing || session.pump_busy || session.awaiting_ack {
                        continue;
                    }
                    let due = session.pump_now
                        || now.duration_since(session.last_pump) >= self.config.replication_poll;
                    if due {
                        session.pump_busy = true;
                        session.last_pump = now;
                        let answer_now = session.answer_now;
                        session.answer_now = false;
                        session.pump_now = false;
                        let heartbeat_due = now.duration_since(session.last_sent)
                            >= self.config.replication_heartbeat;
                        pumps.push((
                            *token,
                            Job::Pump {
                                token: *token,
                                next: session.next,
                                answer_now,
                                heartbeat_due,
                            },
                        ));
                    }
                }
                _ => {}
            }
        }
        for (token, job) in pumps {
            let shard = token % self.shards.len();
            let _ = self.shards[shard].send(job);
        }
    }

    /// Per-wakeup housekeeping for every touched connection: emit ready responses, flush
    /// coalesced output, resume paused reads, finalize drained closes, re-arm interest.
    fn sweep(&mut self) {
        let touched: Vec<usize> =
            self.conns.iter().filter(|(_, c)| c.touched).map(|(t, _)| *t).collect();
        for token in touched {
            {
                let Some(conn) = self.conns.get_mut(&token) else { continue };
                conn.touched = false;
                emit_ready(conn);
                flush_out(conn);
            }
            // A completion may have freed the in-flight window: dispatch frames that were
            // buffered under backpressure (the poller is level-triggered underneath, so
            // re-arming read interest below re-delivers anything still in the kernel buffer).
            if !self.conns[&token].closing && !self.read_paused(token) {
                self.dispatch_frames(token);
                if let Some(conn) = self.conns.get_mut(&token) {
                    emit_ready(conn);
                    flush_out(conn);
                }
            }
            if self.maybe_finalize(token) {
                continue;
            }
            self.rearm(token);
        }
    }

    fn rearm(&mut self, token: usize) {
        let paused = self.read_paused(token);
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if paused && !conn.paused && !conn.closing {
            net_metrics().backpressure_pauses.inc();
        }
        conn.paused = paused;
        let readable = !conn.closing && !paused;
        let writable = !conn.write_dead && conn.out_pos < conn.out.len();
        let _ = self.poller.modify(&conn.stream, Event { key: token, readable, writable });
    }

    /// Closes a `closing` connection once its in-flight work has drained and its output has
    /// flushed (or its write side died).  Never closes under a live worker job: releasing the
    /// client's locks mid-request would yank state out from under the handler.
    fn maybe_finalize(&mut self, token: usize) -> bool {
        let Some(conn) = self.conns.get(&token) else { return true };
        if !conn.closing {
            return false;
        }
        let busy = match &conn.state {
            ConnState::Client(s) => s.in_flight > 0 || (!s.halted && !s.ready.is_empty()),
            ConnState::Replica(s) => s.pump_busy,
            _ => false,
        };
        if busy {
            return false;
        }
        if !conn.write_dead && conn.out_pos < conn.out.len() {
            return false;
        }
        self.close_conn(token);
        true
    }

    fn close_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.remove(&token) else { return };
        net_metrics().connections.dec();
        let _ = self.poller.delete(&conn.stream);
        match conn.state {
            ConnState::Handshake { .. } => {}
            // The crash-recovery rule: whatever this client still had checked out comes back.
            ConnState::Client(s) => {
                self.core.disconnect(s.client);
            }
            // Retire (not forget): the session's last ack keeps pinning WAL retention so the
            // replica can catch up from the retained log when it reconnects.
            ConnState::ReplicaPending { client } => {
                self.core.retire_replica(client);
                self.core.disconnect(client);
            }
            ConnState::Replica(s) => {
                self.core.retire_replica(s.client);
                self.core.disconnect(s.client);
            }
        }
        let _ = conn.stream.shutdown(Shutdown::Both);
    }

    /// Shutdown epilogue: flush what completed, retire the workers, then disconnect every
    /// surviving client in one sweep.  Workers are joined *before* the disconnects so no lock
    /// is ever released under a still-running request.
    fn finish(mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            self.on_done(done);
        }
        for conn in self.conns.values_mut() {
            emit_ready(conn);
            flush_out(conn);
        }
        let shards = std::mem::take(&mut self.shards);
        drop(shards); // workers drain their queues and exit
        let workers = std::mem::take(&mut self.workers);
        for worker in workers {
            let _ = worker.join();
        }
        while let Ok(done) = self.done_rx.try_recv() {
            self.on_done(done);
        }
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        let mut clients = Vec::new();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                emit_ready(conn);
                flush_out(conn);
            }
            let Some(conn) = self.conns.remove(&token) else { continue };
            net_metrics().connections.dec();
            let _ = self.poller.delete(&conn.stream);
            match conn.state {
                ConnState::Handshake { .. } => {}
                ConnState::Client(s) => clients.push(s.client),
                ConnState::ReplicaPending { client } => {
                    self.core.retire_replica(client);
                    clients.push(client);
                }
                ConnState::Replica(s) => {
                    self.core.retire_replica(s.client);
                    clients.push(s.client);
                }
            }
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.core.disconnect_many(&clients);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RemoteClient;
    use crate::wire::{read_frame, Hello, PROTOCOL_VERSION};
    use seed_core::{Database, Value};
    use seed_schema::figure3_schema;
    use seed_server::Update;
    use std::io::{BufReader, BufWriter};

    fn start_server() -> SeedNetServer {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        db.create_dependent(handler, "Description", Value::string("Handles alarms")).unwrap();
        SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn handshake_and_full_request_surface_over_loopback() {
        let server = start_server();
        let mut client = RemoteClient::connect(server.local_addr()).unwrap();
        assert!(client.id() > 0);
        assert_eq!(client.protocol_version(), PROTOCOL_VERSION);
        assert!(client.server_banner().starts_with("seed-net/"));

        // Reads.
        assert_eq!(client.retrieve("Alarms").unwrap().name.to_string(), "Alarms");
        assert!(matches!(client.retrieve("Ghost"), Err(ServerError::Unknown(_))));
        let answer = client.query(r#"find Data where name prefix "Alarm""#).unwrap();
        assert_eq!(answer.names, vec!["Alarms"]);
        assert!(client.explain("count Data").unwrap().contains("count"));
        assert!(matches!(client.query("bogus"), Err(ServerError::Query(_))));
        let schema = client.schema().unwrap();
        assert_eq!(schema.name, "Figure3");
        assert!(schema.class_id("Data").is_some());
        assert_eq!(client.children("AlarmHandler").unwrap().len(), 1);
        assert_eq!(client.objects_of_class("Action", true).unwrap().len(), 2);
        assert_eq!(client.relationship_count("Access", true).unwrap(), 1);
        let rels = client.relationships_of("Alarms").unwrap();
        assert_eq!(rels.len(), 1);
        assert!(rels[0].involves("Sensor"));
        assert!(client.completeness_count().unwrap() > 0);
        assert!(!client.objects_with_prefix("Alarm").unwrap().is_empty());
        assert!(!client.persistence().unwrap().durable);

        // Checkout / check-in cycle.
        let set = client.checkout(&["AlarmHandler"]).unwrap();
        assert_eq!(set.len(), 2, "root + Description dependent");
        client
            .checkin(vec![Update::SetValue {
                object: "AlarmHandler.Description".into(),
                value: Value::string("updated over TCP"),
            }])
            .unwrap();
        assert_eq!(
            client.retrieve("AlarmHandler.Description").unwrap().value,
            Value::string("updated over TCP")
        );
        client.create_version("over the wire").unwrap();
        assert_eq!(client.persistence().unwrap().versions, 1);
        client.close().unwrap();
        server.shutdown();
    }

    #[test]
    fn two_clients_race_exactly_one_wins_and_loser_learns_the_holder() {
        let server = start_server();
        let addr = server.local_addr();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let mut client = RemoteClient::connect(addr).unwrap();
                    barrier.wait();
                    let outcome = client.checkout(&["Alarms"]).map(|_| client.id());
                    (client, outcome)
                })
            })
            .collect();
        let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let winners: Vec<u64> =
            results.iter().filter_map(|(_, o)| o.as_ref().ok().copied()).collect();
        assert_eq!(winners.len(), 1, "exactly one checkout must win");
        let loser_error = results
            .iter()
            .find_map(|(_, o)| o.as_ref().err())
            .expect("exactly one checkout must lose");
        match loser_error {
            ServerError::Locked { object, holder } => {
                assert_eq!(object, "Alarms");
                assert_eq!(*holder, winners[0], "the loser learns who holds the lock");
            }
            other => panic!("loser expected Locked, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn disconnect_releases_the_clients_locks() {
        let server = start_server();
        let addr = server.local_addr();
        let core = server.core();
        {
            let mut client = RemoteClient::connect(addr).unwrap();
            client.checkout(&["Alarms"]).unwrap();
            assert!(core.locked_count() > 0);
            // Dropped without release or close: the TCP connection dies with it.
        }
        // The reactor notices EOF and runs the crash-recovery rule.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while core.locked_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(core.locked_count(), 0, "disconnect must release the client's locks");
        let mut next = RemoteClient::connect(addr).unwrap();
        next.checkout(&["Alarms"]).unwrap();
        server.shutdown();
    }

    #[test]
    fn idle_clients_are_reaped_on_timeout() {
        let mut db = Database::new(figure3_schema());
        db.create_object("Data", "Alarms").unwrap();
        let config = NetServerConfig {
            idle_timeout: Some(Duration::from_millis(100)),
            reaper_interval: Duration::from_millis(20),
            ..NetServerConfig::default()
        };
        let server =
            SeedNetServer::with_config(SeedServer::new(db), "127.0.0.1:0", config).unwrap();
        let core = server.core();
        let mut sleeper = RemoteClient::connect(server.local_addr()).unwrap();
        sleeper.checkout(&["Alarms"]).unwrap();
        assert!(core.locked_count() > 0);
        // The client keeps its TCP connection but falls silent; the reaper reclaims its locks.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while core.locked_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(core.locked_count(), 0, "idle locks must be reclaimed");
        let mut other = RemoteClient::connect(server.local_addr()).unwrap();
        other.checkout(&["Alarms"]).unwrap();
        server.shutdown();
    }

    #[test]
    fn identity_is_enforced_per_connection() {
        let server = start_server();
        let mut alice = RemoteClient::connect(server.local_addr()).unwrap();
        let mut mallory = RemoteClient::connect(server.local_addr()).unwrap();
        alice.checkout(&["Alarms"]).unwrap();
        // Mallory forges requests with Alice's client id: the session rejects them outright.
        let forged = Request::Release { client: alice.id() };
        assert!(matches!(mallory.call(forged), Err(ServerError::Protocol(_))));
        let forged = Request::Checkin {
            client: alice.id(),
            updates: vec![Update::SetValue { object: "Alarms".into(), value: Value::Undefined }],
        };
        assert!(matches!(mallory.call(forged), Err(ServerError::Protocol(_))));
        // Alice is unaffected.
        assert!(server.core().locked_count() > 0);
        alice.release().unwrap();
        server.shutdown();
    }

    #[test]
    fn malformed_frames_are_rejected_without_losing_the_connection() {
        use std::io::Write as _;
        let server = start_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        write_frame(&mut writer, FrameKind::Hello, &Hello::current("raw").encode()).unwrap();
        let welcome = read_frame(&mut reader).unwrap();
        assert_eq!(welcome.kind, FrameKind::Welcome);

        // A frame with a valid header but garbage payload: rejected, connection lives.
        write_frame(&mut writer, FrameKind::Request, &[0xFF, 0xEE, 0xDD]).unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert_eq!(reply.kind, FrameKind::Response);
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            Response::Error(ServerError::Protocol(_))
        ));

        // A corrupted checksum: rejected, connection lives.
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            FrameKind::Request,
            &crate::codec::encode_request(&Request::Persistence),
        )
        .unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        writer.write_all(&buf).unwrap();
        writer.flush().unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            Response::Error(ServerError::Protocol(_))
        ));

        // A hello frame mid-session is also a protocol error, not a hangup.
        write_frame(&mut writer, FrameKind::Hello, &Hello::current("again").encode()).unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            Response::Error(ServerError::Protocol(_))
        ));

        // After all that abuse, a well-formed request still works.
        write_frame(
            &mut writer,
            FrameKind::Request,
            &crate::codec::encode_request(&Request::Persistence),
        )
        .unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            Response::Persistence(_)
        ));
        server.shutdown();
    }

    #[test]
    fn v1_negotiated_sessions_get_v1_byte_shapes() {
        // A v1-only peer must decode every reply with its original six-field persistence
        // decoder: the server keys response encoding on the session's negotiated version.
        let server = start_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        let v1_hello = Hello { max_version: 1, ..Hello::current("v1 peer") };
        write_frame(&mut writer, FrameKind::Hello, &v1_hello.encode()).unwrap();
        let welcome = read_frame(&mut reader).unwrap();
        assert_eq!(welcome.kind, FrameKind::Welcome);
        assert_eq!(crate::wire::Welcome::decode(&welcome.payload).unwrap().version, 1);
        write_frame(
            &mut writer,
            FrameKind::Request,
            &crate::codec::encode_request(&Request::Persistence),
        )
        .unwrap();
        let reply = read_frame(&mut reader).unwrap();
        // The payload must end right after the `versions` varint — no v2 replication flag.
        let expected = crate::codec::encode_response_versioned(
            &Response::Persistence(server.core().persistence_status()),
            1,
        );
        assert_eq!(reply.payload, expected, "v1 session got a non-v1 byte shape");
        server.shutdown();
    }

    #[test]
    fn incompatible_versions_are_rejected_at_handshake() {
        let server = start_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        let future = Hello {
            min_version: PROTOCOL_VERSION + 1,
            max_version: PROTOCOL_VERSION + 2,
            agent: "from the future".into(),
            role: HandshakeRole::Client,
        };
        write_frame(&mut writer, FrameKind::Hello, &future.encode()).unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert_eq!(reply.kind, FrameKind::Reject);
        assert!(String::from_utf8_lossy(&reply.payload).contains("no common protocol version"));
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_get_in_order_responses_over_one_connection() {
        let server = start_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(&mut writer, FrameKind::Hello, &Hello::current("pipeliner").encode()).unwrap();
        let welcome = read_frame(&mut reader).unwrap();
        assert_eq!(welcome.kind, FrameKind::Welcome);

        // A whole burst written before reading a single response: three valid retrieves, a
        // malformed payload in the middle, an unknown name at the end.
        let names = ["Alarms", "Sensor", "AlarmHandler"];
        for name in names {
            write_frame(
                &mut writer,
                FrameKind::Request,
                &crate::codec::encode_request(&Request::Retrieve { name: name.to_string() }),
            )
            .unwrap();
        }
        write_frame(&mut writer, FrameKind::Request, &[0xFF, 0xEE]).unwrap();
        write_frame(
            &mut writer,
            FrameKind::Request,
            &crate::codec::encode_request(&Request::Retrieve { name: "Ghost".to_string() }),
        )
        .unwrap();
        use std::io::Write as _;
        writer.flush().unwrap();

        // The responses come back in request order: the error answers take their turn too.
        for name in names {
            let reply = read_frame(&mut reader).unwrap();
            assert_eq!(reply.kind, FrameKind::Response);
            match crate::codec::decode_response(&reply.payload).unwrap() {
                Response::Object(Ok(record)) => assert_eq!(record.name.to_string(), name),
                other => panic!("expected the object {name}, got {other:?}"),
            }
        }
        let reply = read_frame(&mut reader).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            Response::Error(ServerError::Protocol(_))
        ));
        let reply = read_frame(&mut reader).unwrap();
        match crate::codec::decode_response(&reply.payload).unwrap() {
            Response::Object(Err(ServerError::Unknown(_))) => {}
            other => panic!("expected unknown-object error last, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn a_tiny_in_flight_window_still_answers_every_request_in_order() {
        // max_in_flight = 2 forces the reactor through its pause/resume backpressure path on
        // every burst; all 50 responses must still arrive, in order.
        let mut db = Database::new(figure3_schema());
        db.create_object("Data", "Alarms").unwrap();
        let config = NetServerConfig { max_in_flight: 2, ..NetServerConfig::default() };
        let server =
            SeedNetServer::with_config(SeedServer::new(db), "127.0.0.1:0", config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(&mut writer, FrameKind::Hello, &Hello::current("burst").encode()).unwrap();
        assert_eq!(read_frame(&mut reader).unwrap().kind, FrameKind::Welcome);
        for _ in 0..50 {
            write_frame(
                &mut writer,
                FrameKind::Request,
                &crate::codec::encode_request(&Request::Retrieve { name: "Alarms".to_string() }),
            )
            .unwrap();
        }
        use std::io::Write as _;
        writer.flush().unwrap();
        for i in 0..50 {
            let reply = read_frame(&mut reader).unwrap();
            assert_eq!(reply.kind, FrameKind::Response, "response {i}");
            match crate::codec::decode_response(&reply.payload).unwrap() {
                Response::Object(Ok(record)) => assert_eq!(record.name.to_string(), "Alarms"),
                other => panic!("response {i}: expected Alarms, got {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_pipelined_work_and_never_parks_on_a_stuffed_socket() {
        // The old thread-per-connection server could park forever in `write_all` against a
        // peer that stopped draining its socket.  The reactor's shutdown must return within
        // its drain deadline no matter what the peer does.
        let mut db = Database::new(figure3_schema());
        db.create_object("Data", "Alarms").unwrap();
        let config =
            NetServerConfig { shutdown_drain: Duration::from_millis(300), ..Default::default() };
        let server =
            SeedNetServer::with_config(SeedServer::new(db), "127.0.0.1:0", config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(&mut writer, FrameKind::Hello, &Hello::current("stuffer").encode()).unwrap();
        for _ in 0..64 {
            write_frame(
                &mut writer,
                FrameKind::Request,
                &crate::codec::encode_request(&Request::Persistence),
            )
            .unwrap();
        }
        use std::io::Write as _;
        writer.flush().unwrap();
        // Give the burst a moment to be admitted, then shut down while work is in flight and
        // the peer never reads a byte.
        std::thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown must not park on an undrained peer (took {:?})",
            started.elapsed()
        );
        drop((reader, writer));
    }
}
