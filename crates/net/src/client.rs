//! The blocking remote client: the workstation side of the two-level scheme, over TCP.
//!
//! [`RemoteClient`] exposes the same checkout / check-in / query surface as the in-process
//! server API, so application code (the SPADES tool, the examples) runs unmodified over
//! loopback or a real network.  The client id is assigned by the server at handshake and bound
//! to the connection — it is filled in automatically on every lock-table request.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use seed_core::{ObjectRecord, Value, VersionId};
use seed_server::{
    CheckoutSet, ClientId, HealthStatus, PersistenceStatus, PromotionReceipt, QueryAnswer,
    RelationshipInfo, ReplicationRole, Request, Response, SchemaSummary, ServerError, ServerResult,
    Update,
};

use crate::codec::{decode_response, encode_request};
use crate::wire::{read_frame, write_frame, FrameKind, Hello, Welcome};

/// A blocking connection to a [`crate::SeedNetServer`].
pub struct RemoteClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    client: ClientId,
    version: u16,
    banner: String,
    schema: Option<SchemaSummary>,
}

fn transport(e: impl std::fmt::Display) -> ServerError {
    ServerError::Transport(e.to_string())
}

impl RemoteClient {
    /// Connects and performs the handshake (protocol version negotiation, client id
    /// assignment).
    pub fn connect(addr: impl ToSocketAddrs) -> ServerResult<Self> {
        Self::connect_as(addr, "seed-net client")
    }

    /// Like [`RemoteClient::connect`], with an explicit agent string for the server's logs.
    pub fn connect_as(addr: impl ToSocketAddrs, agent: &str) -> ServerResult<Self> {
        let stream = TcpStream::connect(addr).map_err(transport)?;
        stream.set_nodelay(true).map_err(transport)?;
        let mut reader = BufReader::new(stream.try_clone().map_err(transport)?);
        let mut writer = BufWriter::new(stream);
        write_frame(&mut writer, FrameKind::Hello, &Hello::current(agent).encode())
            .map_err(ServerError::from)?;
        let frame = read_frame(&mut reader).map_err(ServerError::from)?;
        match frame.kind {
            FrameKind::Welcome => {
                let welcome = Welcome::decode(&frame.payload).map_err(ServerError::from)?;
                Ok(Self {
                    reader,
                    writer,
                    client: welcome.client_id,
                    version: welcome.version,
                    banner: welcome.banner,
                    schema: None,
                })
            }
            FrameKind::Reject => {
                Err(ServerError::Protocol(String::from_utf8_lossy(&frame.payload).into_owned()))
            }
            other => Err(ServerError::Protocol(format!(
                "handshake expected welcome or reject, got {other:?}"
            ))),
        }
    }

    /// The client id this connection is bound to.
    pub fn id(&self) -> ClientId {
        self.client
    }

    /// The negotiated protocol version.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// The server's handshake banner.
    pub fn server_banner(&self) -> &str {
        &self.banner
    }

    /// Sends one request and waits for the server's reply.  A [`Response::Error`] reply (the
    /// server rejected the frame as such) is surfaced as the contained error.
    pub fn call(&mut self, request: Request) -> ServerResult<Response> {
        write_frame(&mut self.writer, FrameKind::Request, &encode_request(&request))
            .map_err(ServerError::from)?;
        let frame = read_frame(&mut self.reader).map_err(ServerError::from)?;
        match frame.kind {
            FrameKind::Response => match decode_response(&frame.payload)? {
                Response::Error(e) => Err(e),
                response => Ok(response),
            },
            FrameKind::Reject => {
                Err(ServerError::Protocol(String::from_utf8_lossy(&frame.payload).into_owned()))
            }
            other => Err(ServerError::Protocol(format!("unexpected {other:?} frame"))),
        }
    }

    /// Checks out the named objects, taking central write locks for this client.
    pub fn checkout(&mut self, names: &[&str]) -> ServerResult<CheckoutSet> {
        let request = Request::Checkout {
            client: self.client,
            objects: names.iter().map(|s| s.to_string()).collect(),
        };
        match self.call(request)? {
            Response::Checkout(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Checks a batch of updates in as one central transaction, releasing this client's locks
    /// on success.
    pub fn checkin(&mut self, updates: Vec<Update>) -> ServerResult<()> {
        match self.call(Request::Checkin { client: self.client, updates })? {
            Response::Ack(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Releases all of this client's locks without checking anything in.
    pub fn release(&mut self) -> ServerResult<()> {
        match self.call(Request::Release { client: self.client })? {
            Response::Ack(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Retrieves one object by name.
    pub fn retrieve(&mut self, name: &str) -> ServerResult<ObjectRecord> {
        match self.call(Request::Retrieve { name: name.to_string() })? {
            Response::Object(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Evaluates a retrieval-language query (or an `explain`).
    pub fn query(&mut self, text: &str) -> ServerResult<QueryAnswer> {
        match self.call(Request::Query { text: text.to_string() })? {
            Response::Answer(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The rendered physical plan for a query (prepends `explain` when absent).
    pub fn explain(&mut self, text: &str) -> ServerResult<String> {
        let text = text.trim();
        let explained =
            if text.starts_with("explain") { text.to_string() } else { format!("explain {text}") };
        self.query(&explained)?.plan.ok_or_else(|| {
            ServerError::Query("explain produced no plan (not a find/count query?)".to_string())
        })
    }

    /// Creates a global version snapshot on the central database.
    pub fn create_version(&mut self, comment: &str) -> ServerResult<VersionId> {
        match self.call(Request::CreateVersion { comment: comment.to_string() })? {
            Response::Version(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The durability state of the central database.
    pub fn persistence(&mut self) -> ServerResult<PersistenceStatus> {
        match self.call(Request::Persistence)? {
            Response::Persistence(status) => Ok(status),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// A point-in-time copy of the server's whole metrics registry: every counter, gauge and
    /// latency histogram, ready for percentile extraction or Prometheus re-exposition.
    pub fn stats(&mut self) -> ServerResult<seed_obs::RegistrySnapshot> {
        match self.call(Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The server's liveness/readiness probe: a reply at all is liveness, `ready` is the
    /// readiness verdict (a primary with a writable WAL; a replica within its lag budget).
    pub fn health(&mut self) -> ServerResult<HealthStatus> {
        match self.call(Request::Health)? {
            Response::Health(status) => Ok(status),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Asks the server to checkpoint its durable storage.
    pub fn checkpoint(&mut self) -> ServerResult<()> {
        match self.call(Request::Checkpoint)? {
            Response::Ack(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Orders a topology change under epoch `epoch` (see `docs/OPERATIONS.md` §7).  Sent to a
    /// **replica**, the node finishes applying its shipped tail, fences its old primary and
    /// takes over as primary at `new_primary`.  Sent to the **old primary**, the node is fenced
    /// directly: it refuses every further write with [`ServerError::Fenced`] naming
    /// `new_primary`.
    pub fn promote(&mut self, epoch: u64, new_primary: &str) -> ServerResult<PromotionReceipt> {
        let request = Request::Promote { epoch, new_primary: new_primary.to_string() };
        match self.call(request)? {
            Response::Promoted(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// A structural summary of the server's schema (fetched once, then cached).
    pub fn schema(&mut self) -> ServerResult<SchemaSummary> {
        if let Some(schema) = &self.schema {
            return Ok(schema.clone());
        }
        match self.call(Request::Schema)? {
            Response::Schema(summary) => {
                self.schema = Some(summary.clone());
                Ok(summary)
            }
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The (materialized) children of an object.
    pub fn children(&mut self, name: &str) -> ServerResult<Vec<ObjectRecord>> {
        match self.call(Request::Children { name: name.to_string() })? {
            Response::Objects(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// All objects whose hierarchical name starts with `prefix`.
    pub fn objects_with_prefix(&mut self, prefix: &str) -> ServerResult<Vec<ObjectRecord>> {
        match self.call(Request::Prefix { prefix: prefix.to_string() })? {
            Response::Objects(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The relationships an object participates in, rendered by name.
    pub fn relationships_of(&mut self, name: &str) -> ServerResult<Vec<RelationshipInfo>> {
        match self.call(Request::RelationshipsOf { name: name.to_string() })? {
            Response::Relationships(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The extent of a class by name.
    pub fn objects_of_class(
        &mut self,
        class: &str,
        transitive: bool,
    ) -> ServerResult<Vec<ObjectRecord>> {
        let request = Request::ObjectsOfClass { class: class.to_string(), transitive };
        match self.call(request)? {
            Response::Objects(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Counts the live relationships of an association (optionally with specializations).
    pub fn relationship_count(
        &mut self,
        association: &str,
        transitive: bool,
    ) -> ServerResult<usize> {
        let request =
            Request::RelationshipCount { association: association.to_string(), transitive };
        match self.call(request)? {
            Response::Count(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Number of completeness findings on the central database.
    pub fn completeness_count(&mut self) -> ServerResult<usize> {
        match self.call(Request::Completeness)? {
            Response::Count(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: sets a value through a one-shot checkout/check-in cycle.
    pub fn quick_set_value(&mut self, object: &str, value: Value) -> ServerResult<()> {
        self.checkout(&[object])?;
        self.checkin(vec![Update::SetValue { object: object.to_string(), value }])
    }

    /// Closes the session politely (the server releases this client's locks either way).
    pub fn close(mut self) -> ServerResult<()> {
        match self.call(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Starts a pipelined batch: queue many requests with [`Pipeline::submit`], then send them
    /// all and collect the responses in submission order with [`Pipeline::flush`].  The
    /// event-loop server admits many in-flight frames per connection and answers strictly in
    /// request order, so a deep pipeline pays one round-trip for the whole batch instead of
    /// one per request.
    pub fn pipeline(&mut self) -> Pipeline<'_> {
        Pipeline { client: self, queued: Vec::new(), count: 0 }
    }

    /// Connects a topology-aware client: writes go to the `primary`, reads fan out across the
    /// `replicas` round-robin (falling back to the primary when a replica connection fails
    /// mid-call, or when `replicas` is empty).  Across a failover the client re-routes itself:
    /// a `Fenced`/`ReadOnlyReplica` rejection re-points the write connection at the node the
    /// rejection names, and a dead connection triggers a health-probe sweep over every known
    /// endpoint to find the new primary.  This is how an application points itself at a
    /// replicated deployment — see `docs/OPERATIONS.md`.
    pub fn connect_read_preferred(
        primary: impl ToSocketAddrs,
        replicas: &[impl ToSocketAddrs],
    ) -> ServerResult<ReadPreferredClient> {
        let primary_addr = resolve(primary)?;
        let primary = RemoteClient::connect_as(primary_addr, "seed-net read-preferred (primary)")?;
        let mut replica_addrs = Vec::with_capacity(replicas.len());
        let mut replica_clients = Vec::with_capacity(replicas.len());
        for replica in replicas {
            let addr = resolve(replica)?;
            replica_clients
                .push(RemoteClient::connect_as(addr, "seed-net read-preferred (replica)")?);
            replica_addrs.push(addr);
        }
        Ok(ReadPreferredClient {
            primary,
            primary_addr,
            replicas: replica_clients,
            replica_addrs,
            cursor: 0,
        })
    }
}

/// Resolves an address argument to its first concrete socket address.
fn resolve(addr: impl ToSocketAddrs) -> ServerResult<SocketAddr> {
    addr.to_socket_addrs()
        .map_err(transport)?
        .next()
        .ok_or_else(|| ServerError::Transport("address resolves to nothing".into()))
}

/// While a pipelined write stalls on backpressure, wait this long before draining a response
/// to free the server's in-flight window (the server stops reading a connection whose window
/// is full; draining is what un-sticks the write).
const PIPELINE_WRITE_SLICE: Duration = Duration::from_millis(100);

/// A batch of requests submitted over one connection before any response is read.
///
/// Responses are returned **by submission index** from [`Pipeline::flush`]: the server answers
/// strictly in request order, so `results[i]` is the answer to the `i`-th
/// [`Pipeline::submit`].  A server-side [`Response::Error`] reply is surfaced as `Err` at its
/// index without disturbing its neighbours; a transport or framing failure aborts the whole
/// flush (and the connection should be discarded — the stream may hold unread responses).
pub struct Pipeline<'a> {
    client: &'a mut RemoteClient,
    queued: Vec<u8>,
    count: usize,
}

impl Pipeline<'_> {
    /// Queues one request and returns its index into the [`Pipeline::flush`] results.
    pub fn submit(&mut self, request: Request) -> usize {
        let index = self.count;
        self.count += 1;
        write_frame(&mut self.queued, FrameKind::Request, &encode_request(&request))
            .expect("writing a frame into a Vec cannot fail");
        index
    }

    /// Number of requests queued so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether nothing has been submitted yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sends every queued frame and drains the responses, in submission order.
    ///
    /// Writing and reading are interleaved: when the server applies backpressure (it stops
    /// reading a connection past its in-flight window), the flush drains ready responses to
    /// open the window instead of deadlocking with both sides blocked on full buffers.
    pub fn flush(self) -> ServerResult<Vec<ServerResult<Response>>> {
        let Pipeline { client, queued, count } = self;
        let mut results = Vec::with_capacity(count);
        if count == 0 {
            return Ok(results);
        }
        // Anything buffered from earlier sequential calls goes out first.
        use std::io::Write as _;
        client.writer.flush().map_err(transport)?;
        client.writer.get_mut().set_write_timeout(Some(PIPELINE_WRITE_SLICE)).map_err(transport)?;
        let outcome = interleave(client, &queued, count, &mut results);
        let _ = client.writer.get_mut().set_write_timeout(None);
        outcome?;
        Ok(results)
    }
}

/// The write-then-drain loop of [`Pipeline::flush`], separated so the write timeout is always
/// restored on the way out.
fn interleave(
    client: &mut RemoteClient,
    queued: &[u8],
    count: usize,
    results: &mut Vec<ServerResult<Response>>,
) -> ServerResult<()> {
    use std::io::Write as _;
    let mut written = 0;
    while written < queued.len() {
        match client.writer.get_mut().write(&queued[written..]) {
            Ok(0) => {
                return Err(ServerError::Transport("connection closed mid-pipeline".to_string()))
            }
            Ok(n) => written += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if results.len() >= count {
                    // Every response is in but the peer still won't take our bytes: nothing
                    // left to drain, so this can only be a dead or wedged connection.
                    return Err(ServerError::Transport(
                        "pipelined write stalled after every response arrived".to_string(),
                    ));
                }
                results.push(read_pipelined_response(&mut client.reader)?);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(transport(e)),
        }
    }
    while results.len() < count {
        results.push(read_pipelined_response(&mut client.reader)?);
    }
    Ok(())
}

/// Reads one in-order response.  The outer `Err` aborts the whole flush (broken stream); the
/// inner result is the per-index answer.
fn read_pipelined_response(
    reader: &mut BufReader<TcpStream>,
) -> ServerResult<ServerResult<Response>> {
    let frame = read_frame(reader).map_err(ServerError::from)?;
    match frame.kind {
        FrameKind::Response => match decode_response(&frame.payload)? {
            Response::Error(e) => Ok(Err(e)),
            response => Ok(Ok(response)),
        },
        FrameKind::Reject => {
            Err(ServerError::Protocol(String::from_utf8_lossy(&frame.payload).into_owned()))
        }
        other => Err(ServerError::Protocol(format!("unexpected {other:?} frame"))),
    }
}

/// A client over a replicated deployment: one write connection to the primary, one read
/// connection per replica.  Every read round-robins across the replicas (a replica answers the
/// full read surface with the same bytes as the primary once caught up); every write — and any
/// read whose replica connection died mid-call — goes to the primary.
///
/// The client survives a failover without application involvement: when the primary rejects a
/// write with [`ServerError::Fenced`] (or [`ServerError::ReadOnlyReplica`], the demoted form)
/// it reconnects to the node the rejection names and retries once — safe because a rejected
/// write was refused outright, never half-applied.  When the primary connection is simply dead,
/// it sweeps every known endpoint with a health probe ([`RemoteClient::health`]) and adopts
/// whichever node reports itself a ready primary.  A retry after a **mid-call transport**
/// failure is at-least-once, not exactly-once: the lost reply may have been an ack, in which
/// case the retry surfaces the server's duplicate rejection instead of silently double-applying.
pub struct ReadPreferredClient {
    primary: RemoteClient,
    primary_addr: SocketAddr,
    replicas: Vec<RemoteClient>,
    replica_addrs: Vec<SocketAddr>,
    cursor: usize,
}

impl ReadPreferredClient {
    /// The write-side (primary) client, for the full checkout / check-in surface.
    pub fn primary(&mut self) -> &mut RemoteClient {
        &mut self.primary
    }

    /// The address the write connection currently points at — after a failover, the promoted
    /// node.
    pub fn primary_addr(&self) -> SocketAddr {
        self.primary_addr
    }

    /// Number of replica connections reads fan out across.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Runs one read against the next replica in the rotation, falling back to the primary on
    /// transport failure (a dead replica must degrade the topology, not the application) and
    /// re-routing to a rediscovered primary when the fallback is dead too.  Reads are
    /// idempotent, so the replay is transparent.
    fn read<R>(
        &mut self,
        mut op: impl FnMut(&mut RemoteClient) -> ServerResult<R>,
    ) -> ServerResult<R> {
        if self.replicas.is_empty() {
            return match op(&mut self.primary) {
                Err(ServerError::Transport(_)) => {
                    self.rediscover()?;
                    op(&mut self.primary)
                }
                outcome => outcome,
            };
        }
        let pick = self.cursor % self.replicas.len();
        self.cursor = self.cursor.wrapping_add(1);
        match op(&mut self.replicas[pick]) {
            Err(ServerError::Transport(_)) => match op(&mut self.primary) {
                Err(ServerError::Transport(_)) => {
                    self.rediscover()?;
                    op(&mut self.primary)
                }
                outcome => outcome,
            },
            outcome => outcome,
        }
    }

    /// Runs one write against the primary, re-routing once across a failover: a fencing
    /// rejection names the node to use instead, a dead connection triggers rediscovery.
    fn write<R>(
        &mut self,
        mut op: impl FnMut(&mut RemoteClient) -> ServerResult<R>,
    ) -> ServerResult<R> {
        match op(&mut self.primary) {
            Err(ServerError::Fenced { new_primary, .. }) => {
                self.repoint(&new_primary)?;
                op(&mut self.primary)
            }
            Err(ServerError::ReadOnlyReplica { primary }) => {
                self.repoint(&primary)?;
                op(&mut self.primary)
            }
            Err(ServerError::Transport(_)) => {
                self.rediscover()?;
                op(&mut self.primary)
            }
            outcome => outcome,
        }
    }

    /// Re-points the write connection at the node a fencing rejection named, falling back to a
    /// full probe sweep when that node is not reachable (yet).
    fn repoint(&mut self, addr: &str) -> ServerResult<()> {
        if let Ok(sock) = addr.parse::<SocketAddr>() {
            if let Ok(fresh) = RemoteClient::connect_as(sock, "seed-net read-preferred (primary)") {
                self.primary = fresh;
                self.primary_addr = sock;
                return Ok(());
            }
        }
        self.rediscover()
    }

    /// Probes every known endpoint over a fresh connection and adopts the one whose health
    /// reports a ready primary.
    fn rediscover(&mut self) -> ServerResult<()> {
        let mut candidates = vec![self.primary_addr];
        candidates.extend(self.replica_addrs.iter().copied());
        for addr in candidates {
            let Ok(mut probe) = RemoteClient::connect_as(addr, "seed-net read-preferred (probe)")
            else {
                continue;
            };
            let Ok(health) = probe.health() else { continue };
            if health.ready && health.role == ReplicationRole::Primary {
                self.primary = probe;
                self.primary_addr = addr;
                return Ok(());
            }
            let _ = probe.close();
        }
        Err(ServerError::Transport("no ready primary found among the known endpoints".into()))
    }

    /// Retrieves one object by name, from a replica.
    pub fn retrieve(&mut self, name: &str) -> ServerResult<ObjectRecord> {
        self.read(|c| c.retrieve(name))
    }

    /// Evaluates a retrieval-language query (or an `explain`), on a replica.
    pub fn query(&mut self, text: &str) -> ServerResult<QueryAnswer> {
        self.read(|c| c.query(text))
    }

    /// A structural summary of the schema, from a replica.
    pub fn schema(&mut self) -> ServerResult<SchemaSummary> {
        self.read(|c| c.schema())
    }

    /// The (materialized) children of an object, from a replica.
    pub fn children(&mut self, name: &str) -> ServerResult<Vec<ObjectRecord>> {
        self.read(|c| c.children(name))
    }

    /// All objects whose hierarchical name starts with `prefix`, from a replica.
    pub fn objects_with_prefix(&mut self, prefix: &str) -> ServerResult<Vec<ObjectRecord>> {
        self.read(|c| c.objects_with_prefix(prefix))
    }

    /// The relationships an object participates in, from a replica.
    pub fn relationships_of(&mut self, name: &str) -> ServerResult<Vec<RelationshipInfo>> {
        self.read(|c| c.relationships_of(name))
    }

    /// The extent of a class by name, from a replica.
    pub fn objects_of_class(
        &mut self,
        class: &str,
        transitive: bool,
    ) -> ServerResult<Vec<ObjectRecord>> {
        self.read(|c| c.objects_of_class(class, transitive))
    }

    /// Live relationship count of an association, from a replica.
    pub fn relationship_count(
        &mut self,
        association: &str,
        transitive: bool,
    ) -> ServerResult<usize> {
        self.read(|c| c.relationship_count(association, transitive))
    }

    /// Number of completeness findings, from a replica.
    pub fn completeness_count(&mut self) -> ServerResult<usize> {
        self.read(|c| c.completeness_count())
    }

    /// The **primary's** durability and replication status (authoritative for the deployment).
    pub fn persistence(&mut self) -> ServerResult<PersistenceStatus> {
        match self.primary.persistence() {
            Err(ServerError::Transport(_)) => {
                self.rediscover()?;
                self.primary.persistence()
            }
            outcome => outcome,
        }
    }

    /// Checks out the named objects on the primary (re-routing across a failover).
    pub fn checkout(&mut self, names: &[&str]) -> ServerResult<CheckoutSet> {
        self.write(|c| c.checkout(names))
    }

    /// Checks a batch of updates in on the primary (re-routing across a failover).
    pub fn checkin(&mut self, updates: Vec<Update>) -> ServerResult<()> {
        self.write(|c| c.checkin(updates.clone()))
    }

    /// Releases the primary-side locks without checking anything in.
    pub fn release(&mut self) -> ServerResult<()> {
        self.write(|c| c.release())
    }

    /// Creates a global version snapshot on the primary (re-routing across a failover).
    pub fn create_version(&mut self, comment: &str) -> ServerResult<VersionId> {
        self.write(|c| c.create_version(comment))
    }

    /// Convenience: sets a value through a one-shot checkout/check-in cycle on the primary.
    pub fn quick_set_value(&mut self, object: &str, value: Value) -> ServerResult<()> {
        self.write(|c| c.quick_set_value(object, value.clone()))
    }

    /// Closes every connection politely.  Every close is attempted even when one fails (a
    /// replica that already died must not leave the primary session to linger until EOF
    /// detection); the first error is reported.
    pub fn close(self) -> ServerResult<()> {
        let mut first_error = None;
        for replica in self.replicas {
            if let Err(e) = replica.close() {
                first_error.get_or_insert(e);
            }
        }
        match self.primary.close() {
            Err(e) => Err(first_error.unwrap_or(e)),
            Ok(()) => first_error.map_or(Ok(()), Err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedNetServer;
    use seed_core::Database;
    use seed_schema::figure3_schema;
    use seed_server::SeedServer;

    fn start_server() -> SeedNetServer {
        let mut db = Database::new(figure3_schema());
        db.create_object("Data", "Alarms").unwrap();
        db.create_object("Action", "Sensor").unwrap();
        SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn a_pipeline_returns_results_by_submission_index() {
        let server = start_server();
        let mut client = RemoteClient::connect(server.local_addr()).unwrap();
        let mut pipeline = client.pipeline();
        let a = pipeline.submit(Request::Retrieve { name: "Alarms".to_string() });
        let ghost = pipeline.submit(Request::Retrieve { name: "Ghost".to_string() });
        let forged = pipeline.submit(Request::Release { client: u64::MAX });
        let b = pipeline.submit(Request::Retrieve { name: "Sensor".to_string() });
        assert_eq!((a, ghost, forged, b), (0, 1, 2, 3));
        assert_eq!(pipeline.len(), 4);
        let results = pipeline.flush().unwrap();
        assert_eq!(results.len(), 4);
        match &results[0] {
            Ok(Response::Object(Ok(record))) => assert_eq!(record.name.to_string(), "Alarms"),
            other => panic!("index 0: expected Alarms, got {other:?}"),
        }
        // The unknown name errors in place without disturbing its neighbours.
        assert!(matches!(&results[1], Ok(Response::Object(Err(ServerError::Unknown(_))))));
        // The forged identity is rejected at its index, as an outright protocol error.
        assert!(matches!(&results[2], Err(ServerError::Protocol(_))));
        match &results[3] {
            Ok(Response::Object(Ok(record))) => assert_eq!(record.name.to_string(), "Sensor"),
            other => panic!("index 3: expected Sensor, got {other:?}"),
        }
        client.close().unwrap();
        server.shutdown();
    }

    #[test]
    fn a_pipeline_deeper_than_the_servers_window_still_drains() {
        // 512 submissions against the default 128-deep in-flight window: the flush leans on
        // the interleaved write/drain path instead of deadlocking on mutual backpressure.
        let server = start_server();
        let mut client = RemoteClient::connect(server.local_addr()).unwrap();
        let mut pipeline = client.pipeline();
        for _ in 0..512 {
            pipeline.submit(Request::Retrieve { name: "Alarms".to_string() });
        }
        let results = pipeline.flush().unwrap();
        assert_eq!(results.len(), 512);
        assert!(results.iter().all(|r| matches!(r, Ok(Response::Object(Ok(_))))));
        // The connection is still perfectly usable for sequential calls afterwards.
        assert_eq!(client.retrieve("Sensor").unwrap().name.to_string(), "Sensor");
        client.close().unwrap();
        server.shutdown();
    }
}
