//! Associations (relationship classes) and their roles.
//!
//! In Figure 2 of the paper, `Read` relates `Data` and `Action` through the roles `from` and
//! `by`; the role cardinality `1..*` on `Read from` means that every object of class `Data`
//! must eventually participate in at least one `Read` relationship (completeness), while a
//! bounded maximum would be enforced on every update (consistency).  The `Contained`
//! association carries the `ACYCLIC` attribute and the cardinality `0..1` for the role `in`,
//! which together impose a tree structure on `Action` objects.
//!
//! Associations form their own generalization hierarchy (`Access` ⊒ `Read`, `Write`), the
//! mechanism SEED uses to admit vague relationship knowledge.

use serde::{Deserialize, Serialize};

use crate::cardinality::Cardinality;
use crate::ids::{AssociationId, ClassId};
use crate::procedure::AttachedProcedure;

/// Declaration of an attribute carried by relationships of an association.
///
/// Figure 3 of the paper attaches `NumberOfWrites : 1..1` and `ErrorHandling : 0..1
/// (abort, repeat)` to the `Write` association; the precise final statement "written **twice**,
/// repeated in case of error" is stored in these attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationshipAttribute {
    /// Attribute name, e.g. `"NumberOfWrites"`.
    pub name: String,
    /// Value domain of the attribute.
    pub domain: crate::domain::Domain,
    /// Whether a value must eventually be present (completeness information).
    pub required: bool,
}

impl RelationshipAttribute {
    /// Creates an attribute declaration.
    pub fn new(name: impl Into<String>, domain: crate::domain::Domain, required: bool) -> Self {
        Self { name: name.into(), domain, required }
    }
}

/// One role of an association.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Role {
    /// Role name, e.g. `"from"` or `"by"`.
    pub name: String,
    /// Class whose instances fill this role.
    pub class: ClassId,
    /// Participation cardinality of instances of `class` in relationships of this association.
    /// Maximum = consistency, minimum = completeness.
    pub cardinality: Cardinality,
}

impl Role {
    /// Creates a role.
    pub fn new(name: impl Into<String>, class: ClassId, cardinality: Cardinality) -> Self {
        Self { name: name.into(), class, cardinality }
    }
}

/// An association (relationship class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Association {
    /// Handle of this association within its schema.
    pub id: AssociationId,
    /// Association name, e.g. `"Read"`.
    pub name: String,
    /// The association's roles (binary in all of the paper's examples, but not restricted).
    pub roles: Vec<Role>,
    /// `ACYCLIC` structural constraint: the directed graph formed by the relationship's first
    /// role → second role pairs must stay acyclic (consistency information).
    pub acyclic: bool,
    /// Direct super-association in the generalization hierarchy (`Read` is-a `Access`).
    pub superassociation: Option<AssociationId>,
    /// Covering condition: every relationship of this association must eventually be
    /// specialized into one of its sub-associations (completeness information).
    pub covering: bool,
    /// Attached procedures executed when relationships of this association are updated.
    pub procedures: Vec<AttachedProcedure>,
    /// Attributes carried by relationships of this association.
    pub attributes: Vec<RelationshipAttribute>,
}

impl Association {
    /// Looks up a role by name.
    pub fn role(&self, name: &str) -> Option<&Role> {
        self.roles.iter().find(|r| r.name == name)
    }

    /// Index of a role by name.
    pub fn role_index(&self, name: &str) -> Option<usize> {
        self.roles.iter().position(|r| r.name == name)
    }

    /// Whether the association is binary (exactly two roles).
    pub fn is_binary(&self) -> bool {
        self.roles.len() == 2
    }

    /// Whether the association specializes another association.
    pub fn is_specialization(&self) -> bool {
        self.superassociation.is_some()
    }

    /// Role names in declaration order.
    pub fn role_names(&self) -> Vec<&str> {
        self.roles.iter().map(|r| r.name.as_str()).collect()
    }

    /// Looks up a relationship attribute declaration by name.
    pub fn attribute(&self, name: &str) -> Option<&RelationshipAttribute> {
        self.attributes.iter().find(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_assoc() -> Association {
        Association {
            id: AssociationId(0),
            name: "Read".to_string(),
            roles: vec![
                Role::new("from", ClassId(0), Cardinality::at_least_one()),
                Role::new("by", ClassId(1), Cardinality::any()),
            ],
            acyclic: false,
            superassociation: None,
            covering: false,
            procedures: Vec::new(),
            attributes: vec![RelationshipAttribute::new(
                "NumberOfReads",
                crate::domain::Domain::Integer,
                false,
            )],
        }
    }

    #[test]
    fn role_lookup() {
        let a = read_assoc();
        assert!(a.is_binary());
        assert_eq!(a.role("from").unwrap().class, ClassId(0));
        assert_eq!(a.role("by").unwrap().class, ClassId(1));
        assert!(a.role("onto").is_none());
        assert_eq!(a.role_index("by"), Some(1));
        assert_eq!(a.role_names(), vec!["from", "by"]);
    }

    #[test]
    fn specialization_flag() {
        let mut a = read_assoc();
        assert!(!a.is_specialization());
        a.superassociation = Some(AssociationId(5));
        assert!(a.is_specialization());
    }

    #[test]
    fn attribute_lookup() {
        let a = read_assoc();
        assert!(a.attribute("NumberOfReads").is_some());
        assert!(a.attribute("NumberOfWrites").is_none());
    }
}
