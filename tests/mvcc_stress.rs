//! MVCC stress: a deliberately slow check-in holds the write path while reader threads hammer
//! the query surface.  Snapshot reads must stay fast (they never take the database write lock)
//! and must never observe a torn mid-transaction state.  The design is documented in
//! `docs/ARCHITECTURE.md` (snapshot reads); the satellite oracle lives in
//! `crates/core/src/snapshot.rs` proptests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use seed::core::Database;
use seed::schema::figure3_schema;
use seed::server::SeedServer;

/// How long each "slow" check-in holds the database write lock.
const WRITE_HOLD: Duration = Duration::from_millis(500);
/// Rounds of slow check-ins.
const ROUNDS: usize = 4;
/// Reader threads querying concurrently.
const READERS: usize = 6;
/// A single snapshot read must complete well under one write-lock hold.  If reads took the
/// write lock they would block for up to `WRITE_HOLD` each round; 350 ms leaves generous
/// headroom for CI jitter while still failing a lock-coupled read path.
const LATENCY_BOUND: Duration = Duration::from_millis(350);
/// Independent `Data` objects seeded before the run; the writer keeps exactly one extra
/// `Flip*` object alive, so every consistent state has `SEEDED + 1` objects of class `Data`.
const SEEDED: usize = 10;

#[test]
fn readers_stay_fast_and_consistent_while_a_slow_checkin_holds_the_write_path() {
    let mut db = Database::new(figure3_schema());
    db.begin_transaction().unwrap();
    for i in 0..SEEDED {
        db.create_object("Data", &format!("Seed{i}")).unwrap();
    }
    db.create_object("Data", "Flip0").unwrap();
    db.commit_transaction().unwrap();
    let server = Arc::new(SeedServer::new(db));
    let invariant_count = (SEEDED + 1) as u64;

    let stop = Arc::new(AtomicBool::new(false));
    let max_latency_ns = Arc::new(AtomicU64::new(0));
    let reads_done = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let max_latency_ns = Arc::clone(&max_latency_ns);
            let reads_done = Arc::clone(&reads_done);
            std::thread::spawn(move || {
                let mut last_lsn = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let start = Instant::now();
                    let count = server.query("count Data").unwrap().count as u64;
                    let snapshot = server.snapshot();
                    let latency = start.elapsed();
                    // Torn-read check: the writer deletes one Flip and creates the next
                    // inside a single transaction, so no published snapshot ever shows the
                    // intermediate count.
                    assert_eq!(count, invariant_count, "torn read: mid-transaction state leaked");
                    // Snapshots only move forward for a single observer.
                    assert!(snapshot.lsn() >= last_lsn, "snapshot LSN went backwards");
                    last_lsn = snapshot.lsn();
                    max_latency_ns.fetch_max(latency.as_nanos() as u64, Ordering::Relaxed);
                    reads_done.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // The slow writer: each round holds the write lock for WRITE_HOLD with the transaction
    // half-applied (the old Flip deleted, the new one created but uncommitted), the worst
    // case for a reader that could see live state.
    for round in 0..ROUNDS {
        server.with_database_mut(|db| {
            db.begin_transaction().unwrap();
            let old = db.object_by_name(&format!("Flip{round}")).unwrap().id;
            db.delete_object(old).unwrap();
            std::thread::sleep(WRITE_HOLD / 2);
            db.create_object("Data", &format!("Flip{}", round + 1)).unwrap();
            std::thread::sleep(WRITE_HOLD / 2);
            db.commit_transaction().unwrap();
        });
    }

    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }

    let max_latency = Duration::from_nanos(max_latency_ns.load(Ordering::Relaxed));
    assert!(
        max_latency < LATENCY_BOUND,
        "a read blocked for {max_latency:?} (bound {LATENCY_BOUND:?}): reads must not take \
         the write lock"
    );
    // Readers made real progress during ROUNDS * WRITE_HOLD of continuous write-lock holds.
    let reads = reads_done.load(Ordering::Relaxed);
    assert!(
        reads >= (READERS * ROUNDS * 4) as u64,
        "only {reads} reads completed — readers appear to have been serialized behind writes"
    );

    // The writer's effects are all visible once the last publish lands.
    assert!(server.retrieve(&format!("Flip{ROUNDS}")).is_ok());
    for round in 0..ROUNDS {
        assert!(server.retrieve(&format!("Flip{round}")).is_err(), "Flip{round} must be gone");
    }
    assert_eq!(server.query("count Data").unwrap().count as u64, invariant_count);
}
