//! Object records: independent objects and dependent sub-objects.

use serde::{Deserialize, Serialize};

use seed_schema::ClassId;

use crate::ident::ObjectId;
use crate::name::ObjectName;
use crate::value::Value;

/// A stored object (entity instance).
///
/// Deletion is logical ("this is made easy by marking items as deleted instead of removing them
/// physically"), which is what makes delta-based version storage cheap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectRecord {
    /// Stable identifier.
    pub id: ObjectId,
    /// The object's class (may move within a generalization hierarchy via re-classification).
    pub class: ClassId,
    /// Full hierarchical name (`Alarms`, `Alarms.Text.Selector`, ...).
    pub name: ObjectName,
    /// Owning object for dependent objects.
    pub parent: Option<ObjectId>,
    /// The object's value, or [`Value::Undefined`] when none has been entered yet.
    pub value: Value,
    /// Whether the object is a pattern ("patterns are invisible to any retrieval operation and
    /// are not checked for consistency unless they are inherited by a 'normal' data item").
    pub is_pattern: bool,
    /// Logical-deletion tombstone.
    pub deleted: bool,
}

impl ObjectRecord {
    /// Creates a live, non-pattern object record.
    pub fn new(id: ObjectId, class: ClassId, name: ObjectName, parent: Option<ObjectId>) -> Self {
        Self { id, class, name, parent, value: Value::Undefined, is_pattern: false, deleted: false }
    }

    /// Whether this object is visible to ordinary retrieval (live and not a pattern).
    pub fn is_visible(&self) -> bool {
        !self.deleted && !self.is_pattern
    }

    /// Whether the object is an independent (top-level) object.
    pub fn is_independent(&self) -> bool {
        self.parent.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_object_is_visible_and_undefined() {
        let o = ObjectRecord::new(ObjectId(1), ClassId(0), ObjectName::root("Alarms"), None);
        assert!(o.is_visible());
        assert!(o.is_independent());
        assert!(o.value.is_undefined());
        assert!(!o.is_pattern);
    }

    #[test]
    fn visibility_flags() {
        let mut o = ObjectRecord::new(ObjectId(1), ClassId(0), ObjectName::root("Alarms"), None);
        o.is_pattern = true;
        assert!(!o.is_visible());
        o.is_pattern = false;
        o.deleted = true;
        assert!(!o.is_visible());
    }

    #[test]
    fn dependent_objects_have_parents() {
        let o = ObjectRecord::new(
            ObjectId(2),
            ClassId(3),
            ObjectName::parse("Alarms.Text").unwrap(),
            Some(ObjectId(1)),
        );
        assert!(!o.is_independent());
    }
}
