//! E10 — incremental durability: per-item write-through commits vs whole-database snapshot
//! saves, and recovery from the storage WAL.
//!
//! The quick-report rendition (`cargo run -p seed-bench --release`, row E10) measures the same
//! scenario at 10k objects; here each leg gets Criterion statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use seed_core::{Database, ObjectId, Value};
use seed_schema::figure3_schema;

const OBJECTS: usize = 2_000;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("seed-bench-e10c-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable database with `OBJECTS` data objects, bulk-loaded in one group commit.
fn durable_fixture(dir: &std::path::Path) -> (Database, Vec<ObjectId>) {
    let mut db = Database::create_durable(dir, figure3_schema()).unwrap();
    db.begin_transaction().unwrap();
    let mut ids = Vec::with_capacity(OBJECTS);
    for i in 0..OBJECTS {
        ids.push(db.create_object("Data", &format!("Data{i:06}")).unwrap());
    }
    db.commit_transaction().unwrap();
    db.checkpoint().unwrap();
    (db, ids)
}

fn write_through_vs_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_write_through_vs_snapshot");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let dir = temp_dir("write-through");
    let (mut db, ids) = durable_fixture(&dir);
    let mut k = 0usize;
    group.bench_function("write_through_commit_1", |b| {
        b.iter(|| {
            k += 1;
            db.set_value(ids[k % ids.len()], Value::Undefined).unwrap();
        })
    });

    let snap_dir = temp_dir("snapshot-target");
    group.bench_function("snapshot_save_full", |b| b.iter(|| db.save_to_dir(&snap_dir).unwrap()));
    group.finish();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

fn recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_recovery");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Recovery with a WAL of 100 committed mutations on top of the last checkpoint.
    let dir = temp_dir("recovery");
    let (mut db, ids) = durable_fixture(&dir);
    for k in 0..100usize {
        db.set_value(ids[k % ids.len()], Value::Undefined).unwrap();
    }
    drop(db);
    group.bench_function("reopen_with_100_commit_wal", |b| {
        b.iter(|| {
            let db = Database::open_durable(&dir).unwrap();
            db.object_count()
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, write_through_vs_snapshot, recovery);
criterion_main!(benches);
