//! Segmented write-ahead log.
//!
//! Every engine mutation is appended to the log before the corresponding page is allowed to be
//! written back.  Frames are CRC-protected; recovery replays committed transactions in order and
//! stops at the first corrupt or torn frame (everything after a torn write is, by definition,
//! not yet durable).
//!
//! The log is a sequence of bounded **segment files** (`wal.000017.seg`) instead of one
//! monolithic file:
//!
//! * appends go to the **active** (last) segment; once it outgrows
//!   [`WalConfig::segment_max_bytes`] the next batch triggers a **rotation** — the active
//!   segment is synced shut (sealed) and a fresh one is created.  A group-commit batch never
//!   spans segments, so fsync batching stays per-segment;
//! * a **checkpoint** ([`WriteAheadLog::truncate`]) seals the active segment and then deletes
//!   whole sealed segments oldest-first, instead of rewriting anything.  Segments holding
//!   records a replication subscriber still needs (at or past the **retention floor**) are kept,
//!   up to [`WalConfig::retention_budget_bytes`];
//! * **recovery** parses sealed segments in parallel across threads
//!   ([`WriteAheadLog::read_all_parallel`]), then replays the merged record stream serially.
//!
//! Segment layout: a 24-byte header (`magic | format version | base LSN | crc`) followed by
//! frames of `len: u32 | crc: u32 | payload: len bytes`.
//!
//! ## Checkpoint-stable LSNs
//!
//! LSNs are **absolute**: they number every record ever appended, and checkpoint pruning does
//! not reset them.  Each segment's header carries its *base* — the LSN before its first record —
//! so the first frame of segment with base `b` always carries LSN `b + 1` (this generalizes the
//! single-file log's `.base` sidecar, which is migrated on open).  This is what lets a
//! replication subscriber hold a durable cursor into the primary's log
//! ([`WriteAheadLog::read_from`]) across checkpoints and restarts on either side.
//!
//! All storage I/O goes through the [`SegmentIo`] trait ([`FileSegmentIo`] for durable
//! directories, [`MemorySegmentIo`] for ephemeral logs), which is also the injection point for
//! the deterministic crash-injection harness in `tests/crash_injection.rs`.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::codec::{crc32, Decoder, Encoder};
use crate::error::{StorageError, StorageResult};

/// Process-wide WAL metrics (see `docs/OBSERVABILITY.md` for the catalog).  Handles are
/// registered once and shared by every log instance; recording is lock-free.
struct WalMetrics {
    append_us: seed_obs::Histogram,
    fsync_us: seed_obs::Histogram,
    batch_records: seed_obs::Histogram,
    rotations: seed_obs::Counter,
}

fn wal_metrics() -> &'static WalMetrics {
    static METRICS: OnceLock<WalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = seed_obs::global();
        WalMetrics {
            append_us: registry.histogram("wal_append_us"),
            fsync_us: registry.histogram("wal_fsync_us"),
            batch_records: registry.histogram("wal_batch_records"),
            rotations: registry.counter("wal_rotations_total"),
        }
    })
}

/// Log sequence number: the absolute, checkpoint-stable index of a record in the log (1-based;
/// 0 means "none").  Pruning advances the log's base instead of resetting the numbering.
pub type Lsn = u64;

/// Identifier of one segment file (monotonically increasing; gaps mark pruned segments).
pub type SegmentId = u64;

/// The answer to a tail read ([`WriteAheadLog::read_from`]): either the records from the asked
/// position to the durable end, or the news that the position has been truncated away and the
/// subscriber must resynchronize from a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// Every record with `lsn >= from`, in order (possibly empty when the caller is caught up).
    Records(Vec<(Lsn, LogRecord)>),
    /// The asked position is no longer in the log — either a checkpoint pruned it away, or
    /// the caller's cursor is ahead of this log (a different or reset log).  `oldest` is the
    /// first LSN still available.
    Truncated {
        /// The first LSN the log can still serve.
        oldest: Lsn,
    },
}

/// A logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A transaction began.
    Begin { txn: u64 },
    /// A transaction committed; its effects must survive recovery.
    Commit { txn: u64 },
    /// A transaction aborted; its effects must be discarded by recovery.
    Abort { txn: u64 },
    /// A key was set to a value within a transaction.
    Put { txn: u64, key: Vec<u8>, value: Vec<u8> },
    /// A key was removed within a transaction.
    Delete { txn: u64, key: Vec<u8> },
    /// A checkpoint: all effects of LSNs up to and including `up_to` are in the page store.
    Checkpoint { up_to: Lsn },
}

impl LogRecord {
    const TAG_BEGIN: u8 = 1;
    const TAG_COMMIT: u8 = 2;
    const TAG_ABORT: u8 = 3;
    const TAG_PUT: u8 = 4;
    const TAG_DELETE: u8 = 5;
    const TAG_CHECKPOINT: u8 = 6;

    /// Serializes the record to bytes (without the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            LogRecord::Begin { txn } => {
                e.put_u8(Self::TAG_BEGIN).put_u64(*txn);
            }
            LogRecord::Commit { txn } => {
                e.put_u8(Self::TAG_COMMIT).put_u64(*txn);
            }
            LogRecord::Abort { txn } => {
                e.put_u8(Self::TAG_ABORT).put_u64(*txn);
            }
            LogRecord::Put { txn, key, value } => {
                e.put_u8(Self::TAG_PUT).put_u64(*txn).put_bytes(key).put_bytes(value);
            }
            LogRecord::Delete { txn, key } => {
                e.put_u8(Self::TAG_DELETE).put_u64(*txn).put_bytes(key);
            }
            LogRecord::Checkpoint { up_to } => {
                e.put_u8(Self::TAG_CHECKPOINT).put_u64(*up_to);
            }
        }
        e.finish()
    }

    /// Deserializes a record produced by [`LogRecord::encode`].
    pub fn decode(bytes: &[u8]) -> StorageResult<Self> {
        let mut d = Decoder::new(bytes);
        let tag = d.get_u8()?;
        let rec = match tag {
            Self::TAG_BEGIN => LogRecord::Begin { txn: d.get_u64()? },
            Self::TAG_COMMIT => LogRecord::Commit { txn: d.get_u64()? },
            Self::TAG_ABORT => LogRecord::Abort { txn: d.get_u64()? },
            Self::TAG_PUT => LogRecord::Put {
                txn: d.get_u64()?,
                key: d.get_bytes()?.to_vec(),
                value: d.get_bytes()?.to_vec(),
            },
            Self::TAG_DELETE => {
                LogRecord::Delete { txn: d.get_u64()?, key: d.get_bytes()?.to_vec() }
            }
            Self::TAG_CHECKPOINT => LogRecord::Checkpoint { up_to: d.get_u64()? },
            other => return Err(StorageError::Corrupt(format!("unknown WAL record tag {other}"))),
        };
        Ok(rec)
    }
}

// ----- configuration ----------------------------------------------------------------------------

/// Tuning knobs of a [`WriteAheadLog`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotation threshold: once the active segment holds at least this many frame bytes, the
    /// next append batch goes to a fresh segment.  A single batch never spans segments, so one
    /// oversized batch may push a segment past the cap.
    pub segment_max_bytes: u64,
    /// Upper bound on the frame bytes kept **past a checkpoint** for replication subscribers
    /// (the retention floor).  Sealed segments a subscriber still needs are retained newest-
    /// first up to this budget; anything beyond it is pruned and the subscriber falls back to a
    /// snapshot resync.
    pub retention_budget_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self { segment_max_bytes: 256 * 1024, retention_budget_bytes: 4 * 1024 * 1024 }
    }
}

// ----- segment I/O ------------------------------------------------------------------------------

/// Byte-level storage for WAL segments.
///
/// The log's durability argument rests on three properties implementations must provide:
/// `create` persists the initial bytes (and the segment's existence) before returning, `sync`
/// is a write barrier for earlier `append`s to the same segment, and `delete` durably removes
/// the segment.  `append` may tear at any byte boundary on a crash — recovery handles that —
/// which is exactly the surface the crash-injection harness drives.
pub trait SegmentIo: Send + Sync {
    /// Ids of all existing segments, in ascending order.
    fn list(&self) -> StorageResult<Vec<SegmentId>>;
    /// The full contents of segment `id`.
    fn read(&self, id: SegmentId) -> StorageResult<Vec<u8>>;
    /// Creates segment `id` holding `initial`, durably (contents, then existence).
    fn create(&self, id: SegmentId, initial: &[u8]) -> StorageResult<()>;
    /// Appends `bytes` to segment `id` (buffered until [`SegmentIo::sync`]).
    fn append(&self, id: SegmentId, bytes: &[u8]) -> StorageResult<()>;
    /// Forces all appended bytes of segment `id` to durable storage.
    fn sync(&self, id: SegmentId) -> StorageResult<()>;
    /// Shrinks segment `id` to `len` bytes (recovery chopping a torn tail).
    fn truncate(&self, id: SegmentId, len: u64) -> StorageResult<()>;
    /// Durably removes segment `id` (absent segments are not an error).
    fn delete(&self, id: SegmentId) -> StorageResult<()>;
}

/// File-backed [`SegmentIo`]: one `wal.<id:06>.seg` file per segment inside a directory.
pub struct FileSegmentIo {
    dir: PathBuf,
    /// Cached handle of the segment currently being appended to, so the group-commit hot path
    /// (append + sync) does not reopen the file per call.
    active: Mutex<Option<(SegmentId, File)>>,
}

impl FileSegmentIo {
    /// A segment store over directory `dir` (which must exist).
    pub fn new(dir: impl AsRef<Path>) -> Self {
        Self { dir: dir.as_ref().to_path_buf(), active: Mutex::new(None) }
    }

    fn path(&self, id: SegmentId) -> PathBuf {
        self.dir.join(format!("wal.{id:06}.seg"))
    }

    /// Parses `wal.<id>.seg` names; everything else in the directory is ignored.
    fn parse_name(name: &str) -> Option<SegmentId> {
        name.strip_prefix("wal.")?.strip_suffix(".seg")?.parse().ok()
    }

    fn sync_dir(&self) -> StorageResult<()> {
        // Directory sync makes renames/creates/deletes durable; best-effort on filesystems
        // that reject opening directories.
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_data();
        }
        Ok(())
    }
}

impl SegmentIo for FileSegmentIo {
    fn list(&self) -> StorageResult<Vec<SegmentId>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(id) = entry.file_name().to_str().and_then(Self::parse_name) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn read(&self, id: SegmentId) -> StorageResult<Vec<u8>> {
        Ok(std::fs::read(self.path(id))?)
    }

    fn create(&self, id: SegmentId, initial: &[u8]) -> StorageResult<()> {
        let mut file = OpenOptions::new().write(true).create_new(true).open(self.path(id))?;
        file.write_all(initial)?;
        file.sync_data()?;
        self.sync_dir()?;
        *self.active.lock() = Some((id, file));
        Ok(())
    }

    fn append(&self, id: SegmentId, bytes: &[u8]) -> StorageResult<()> {
        let mut active = self.active.lock();
        if !matches!(&*active, Some((aid, _)) if *aid == id) {
            let file = OpenOptions::new().read(true).append(true).open(self.path(id))?;
            *active = Some((id, file));
        }
        let Some((_, file)) = &mut *active else { unreachable!() };
        Ok(file.write_all(bytes)?)
    }

    fn sync(&self, id: SegmentId) -> StorageResult<()> {
        let active = self.active.lock();
        match &*active {
            Some((aid, file)) if *aid == id => Ok(file.sync_data()?),
            _ => Ok(File::open(self.path(id))?.sync_data()?),
        }
    }

    fn truncate(&self, id: SegmentId, len: u64) -> StorageResult<()> {
        let mut active = self.active.lock();
        if matches!(&*active, Some((aid, _)) if *aid == id) {
            *active = None;
        }
        let file = OpenOptions::new().write(true).open(self.path(id))?;
        file.set_len(len)?;
        file.sync_data()?;
        Ok(())
    }

    fn delete(&self, id: SegmentId) -> StorageResult<()> {
        let mut active = self.active.lock();
        if matches!(&*active, Some((aid, _)) if *aid == id) {
            *active = None;
        }
        drop(active);
        match std::fs::remove_file(self.path(id)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// In-memory [`SegmentIo`] (ephemeral databases, tests, and the seed state the crash-injection
/// harness reopens from).
#[derive(Default)]
pub struct MemorySegmentIo {
    segments: Mutex<BTreeMap<SegmentId, Vec<u8>>>,
}

impl MemorySegmentIo {
    /// An empty in-memory segment store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store seeded with existing segment contents (reopening a crash survivor state).
    pub fn from_segments(segments: BTreeMap<SegmentId, Vec<u8>>) -> Self {
        Self { segments: Mutex::new(segments) }
    }

    /// A copy of every segment's current contents.
    pub fn dump(&self) -> BTreeMap<SegmentId, Vec<u8>> {
        self.segments.lock().clone()
    }
}

impl SegmentIo for MemorySegmentIo {
    fn list(&self) -> StorageResult<Vec<SegmentId>> {
        Ok(self.segments.lock().keys().copied().collect())
    }

    fn read(&self, id: SegmentId) -> StorageResult<Vec<u8>> {
        self.segments
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| StorageError::InvalidArgument(format!("no such segment {id}")))
    }

    fn create(&self, id: SegmentId, initial: &[u8]) -> StorageResult<()> {
        match self.segments.lock().entry(id) {
            std::collections::btree_map::Entry::Occupied(_) => {
                Err(StorageError::InvalidArgument(format!("segment {id} already exists")))
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(initial.to_vec());
                Ok(())
            }
        }
    }

    fn append(&self, id: SegmentId, bytes: &[u8]) -> StorageResult<()> {
        let mut segments = self.segments.lock();
        let seg = segments
            .get_mut(&id)
            .ok_or_else(|| StorageError::InvalidArgument(format!("no such segment {id}")))?;
        seg.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, _id: SegmentId) -> StorageResult<()> {
        Ok(())
    }

    fn truncate(&self, id: SegmentId, len: u64) -> StorageResult<()> {
        let mut segments = self.segments.lock();
        let seg = segments
            .get_mut(&id)
            .ok_or_else(|| StorageError::InvalidArgument(format!("no such segment {id}")))?;
        seg.truncate(len as usize);
        Ok(())
    }

    fn delete(&self, id: SegmentId) -> StorageResult<()> {
        self.segments.lock().remove(&id);
        Ok(())
    }
}

// ----- segment format ---------------------------------------------------------------------------

const SEGMENT_MAGIC: &[u8; 8] = b"SEEDWSEG";
const SEGMENT_FORMAT_VERSION: u32 = 1;
/// Bytes of the segment header: magic (8) + version (4) + base LSN (8) + CRC (4).
pub const SEGMENT_HEADER_LEN: usize = 24;

fn segment_header(base: Lsn) -> Vec<u8> {
    let mut e = Encoder::with_capacity(SEGMENT_HEADER_LEN);
    e.put_raw(SEGMENT_MAGIC).put_u32(SEGMENT_FORMAT_VERSION).put_u64(base);
    let crc = crc32(e.as_slice());
    e.put_u32(crc);
    e.finish()
}

/// Parses a segment header, returning its base LSN.  `None` means torn or foreign bytes — the
/// segment is a rotation artifact (creation cut by a crash) and carries no acknowledged data.
fn parse_segment_header(raw: &[u8]) -> Option<Lsn> {
    if raw.len() < SEGMENT_HEADER_LEN || &raw[..8] != SEGMENT_MAGIC {
        return None;
    }
    let mut d = Decoder::new(&raw[..SEGMENT_HEADER_LEN]);
    d.get_raw(8).ok()?;
    let version = d.get_u32().ok()?;
    let base = d.get_u64().ok()?;
    let crc = d.get_u32().ok()?;
    if version != SEGMENT_FORMAT_VERSION || crc != crc32(&raw[..SEGMENT_HEADER_LEN - 4]) {
        return None;
    }
    Some(base)
}

fn frame_bytes(record: &LogRecord) -> Vec<u8> {
    let payload = record.encode();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// One parsed segment payload: the decoded records at or past the asked cursor, the total frame
/// count, the byte length of the valid frame prefix, and whether that prefix covered every byte
/// (`false` = a torn tail follows).
struct SegmentParse {
    records: Vec<(Lsn, LogRecord)>,
    frames: u64,
    valid_len: usize,
    complete: bool,
}

/// Walks the frames of one segment's payload (the bytes after the header).  Records are
/// numbered from `base + 1`; only those with `lsn >= min_lsn` are decoded and returned — frames
/// below the cursor are CRC-checked and skipped, which keeps a replication tail read
/// O(file bytes + tail records), not O(all records).  Stops at the first truncated or
/// checksum-failing frame — the standard WAL recovery rule.  A crash can tear the final
/// (multi-frame, multi-sector) group-commit batch anywhere, including out of order: any frame
/// past the first invalid one was never acknowledged (its batch's sync cannot have returned),
/// so recovery keeps the valid prefix and discards the rest instead of refusing to open.
fn parse_segment(payload: &[u8], base: Lsn, min_lsn: Lsn) -> StorageResult<SegmentParse> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut lsn: Lsn = base + 1;
    while pos + 8 <= payload.len() {
        let len = u32::from_le_bytes(payload[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(payload[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > payload.len() {
            // Torn write at the tail: everything before it is still valid.
            break;
        }
        let frame = &payload[pos + 8..pos + 8 + len];
        if crc32(frame) != crc {
            break;
        }
        if lsn >= min_lsn {
            records.push((lsn, LogRecord::decode(frame)?));
        }
        pos += 8 + len;
        lsn += 1;
    }
    Ok(SegmentParse {
        records,
        frames: lsn - 1 - base,
        valid_len: pos,
        complete: pos == payload.len(),
    })
}

// ----- the log ----------------------------------------------------------------------------------

/// Live metadata of one segment (the bytes themselves stay in the [`SegmentIo`]).
#[derive(Debug, Clone)]
struct Segment {
    id: SegmentId,
    /// LSN before this segment's first record: its frames carry `base + 1 ..= base + records`.
    base: Lsn,
    records: u64,
    /// Frame bytes (the header is excluded everywhere sizes are reported).
    bytes: u64,
}

impl Segment {
    fn end(&self) -> Lsn {
        self.base + self.records
    }
}

struct WalState {
    /// All live segments in id order; the last one is **active** (appends go there), everything
    /// before it is sealed.  Never empty.
    segments: Vec<Segment>,
    next_lsn: Lsn,
    /// LSN through which a checkpoint has logically discarded the log.  Sealed segments at or
    /// below it may still be physically retained for replication subscribers; they no longer
    /// count toward [`WriteAheadLog::uncheckpointed_bytes`].
    pruned_to: Lsn,
    /// Oldest LSN a replication subscriber still needs (`None` = no subscribers, retain
    /// nothing past a checkpoint).
    retention_floor: Option<Lsn>,
}

impl WalState {
    fn active(&mut self) -> &mut Segment {
        self.segments.last_mut().expect("segment list is never empty")
    }
}

/// An append-only, segmented write-ahead log.
pub struct WriteAheadLog {
    io: Arc<dyn SegmentIo>,
    config: WalConfig,
    /// All log state behind one lock: readers observe segment metadata consistent with the
    /// bytes they read, appenders serialize against rotation and pruning.
    state: Mutex<WalState>,
}

impl WriteAheadLog {
    /// Creates an in-memory log (used for ephemeral databases and tests).
    pub fn in_memory() -> Self {
        Self::in_memory_with(WalConfig::default())
    }

    /// Creates an in-memory log with explicit tuning.
    pub fn in_memory_with(config: WalConfig) -> Self {
        Self::with_io(Arc::new(MemorySegmentIo::new()), config)
            .expect("in-memory segment store cannot fail to open")
    }

    /// Opens (or creates) a segmented log inside directory `dir`.
    ///
    /// A legacy single-file log (`wal.log` + `wal.log.base` sidecar) found in `dir` is migrated
    /// into segment 1 first: the bytes are copied into a segment whose header carries the
    /// sidecar's base, crash-safely (write-temp, sync, rename, sync dir), and the legacy files
    /// are removed.  An interrupted migration redoes or completes itself on the next open.
    pub fn open_dir(dir: impl AsRef<Path>, config: WalConfig) -> StorageResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Self::migrate_legacy(&dir)?;
        Self::with_io(Arc::new(FileSegmentIo::new(&dir)), config)
    }

    fn migrate_legacy(dir: &Path) -> StorageResult<()> {
        let legacy = dir.join("wal.log");
        let sidecar = dir.join("wal.log.base");
        // Stale temp files are failed migrations (pre-rename); redo from the legacy source.
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".seg.tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        if !legacy.exists() {
            return Ok(());
        }
        let has_segments = std::fs::read_dir(dir)?.any(|e| {
            e.ok()
                .and_then(|e| e.file_name().to_str().and_then(FileSegmentIo::parse_name))
                .is_some()
        });
        if !has_segments {
            // The sidecar held the count of records truncated away; it becomes segment 1's base.
            let base = std::fs::read(&sidecar)
                .ok()
                .and_then(|bytes| bytes.try_into().ok().map(u64::from_le_bytes))
                .unwrap_or(0);
            let raw = std::fs::read(&legacy)?;
            let tmp = dir.join("wal.000001.seg.tmp");
            {
                let mut file = File::create(&tmp)?;
                file.write_all(&segment_header(base))?;
                file.write_all(&raw)?;
                file.sync_data()?;
            }
            std::fs::rename(&tmp, dir.join("wal.000001.seg"))?;
        }
        // Past the rename (now, or in the interrupted run that left segments behind), the
        // segments are authoritative; drop the legacy files.
        let _ = std::fs::remove_file(&legacy);
        let _ = std::fs::remove_file(&sidecar);
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_data();
        }
        Ok(())
    }

    /// Opens a log over an arbitrary [`SegmentIo`] — the injection point for fault-injection
    /// tests, and what [`WriteAheadLog::open_dir`] / [`WriteAheadLog::in_memory`] build on.
    ///
    /// Recovery scan: segments are walked in id order; the first torn segment header, torn or
    /// checksum-failing frame, or LSN discontinuity ends the valid prefix — the offending tail
    /// is physically truncated and every later segment deleted (bytes past the first invalid
    /// point were never acknowledged).  A missing-prefix discontinuity (older segments deleted
    /// by an interrupted prune) instead drops the stale older segments and keeps the newest
    /// contiguous run, which necessarily starts at or past the last checkpoint.
    pub fn with_io(io: Arc<dyn SegmentIo>, config: WalConfig) -> StorageResult<Self> {
        let ids = io.list()?;
        let mut segments: Vec<Segment> = Vec::new();
        let mut stale: Vec<SegmentId> = Vec::new();
        let mut invalid_from: Option<usize> = None;
        for (i, &id) in ids.iter().enumerate() {
            let raw = io.read(id)?;
            let Some(base) = parse_segment_header(&raw) else {
                // Torn creation: the segment carries no acknowledged data.
                invalid_from = Some(i);
                break;
            };
            if let Some(prev) = segments.last() {
                if base > prev.end() {
                    // A hole: only an interrupted oldest-first prune leaves one, so the run
                    // before the hole predates a checkpoint and the newest run wins.
                    stale.extend(segments.drain(..).map(|s| s.id));
                } else if base < prev.end() {
                    // Overlapping numbering cannot come from any crash of ours.
                    return Err(StorageError::Corrupt(format!(
                        "segment {id} base {base} overlaps predecessor ending at {}",
                        prev.end()
                    )));
                }
            }
            // Headers and frame CRCs are validated here; record decoding is deferred to the
            // first read.
            let parse = parse_segment(&raw[SEGMENT_HEADER_LEN..], base, u64::MAX)?;
            segments.push(Segment {
                id,
                base,
                records: parse.frames,
                bytes: parse.valid_len as u64,
            });
            if !parse.complete {
                io.truncate(id, (SEGMENT_HEADER_LEN + parse.valid_len) as u64)?;
                invalid_from = Some(i + 1);
                break;
            }
        }
        if let Some(i) = invalid_from {
            for &id in &ids[i..] {
                io.delete(id)?;
            }
        }
        for id in stale {
            io.delete(id)?;
        }
        if segments.is_empty() {
            let id = ids.last().map_or(1, |last| last + 1);
            io.create(id, &segment_header(0))?;
            segments.push(Segment { id, base: 0, records: 0, bytes: 0 });
        }
        let next_lsn = segments.last().expect("non-empty").end() + 1;
        let pruned_to = segments[0].base;
        Ok(Self {
            io,
            config,
            state: Mutex::new(WalState { segments, next_lsn, pruned_to, retention_floor: None }),
        })
    }

    /// Appends a record, returning its LSN.  The append is buffered; call
    /// [`WriteAheadLog::sync`] to make it durable.
    pub fn append(&self, record: &LogRecord) -> StorageResult<Lsn> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Appends a batch of records with **one** backend write (the group-commit primitive: a
    /// committing transaction hands its `Begin`/`Put`/`Delete`/`Commit` frames over in a single
    /// contiguous write, then syncs once).  Returns the LSN of the first record.  If the active
    /// segment is already at the rotation threshold, the batch opens a fresh segment — a batch
    /// never spans two.
    pub fn append_batch(&self, records: &[LogRecord]) -> StorageResult<Lsn> {
        let start = Instant::now();
        let mut frames = Vec::new();
        for record in records {
            frames.extend_from_slice(&frame_bytes(record));
        }
        let mut state = self.state.lock();
        if !records.is_empty() && state.active().bytes >= self.config.segment_max_bytes {
            self.rotate_locked(&mut state)?;
        }
        let active = state.active();
        self.io.append(active.id, &frames)?;
        active.bytes += frames.len() as u64;
        active.records += records.len() as u64;
        let first = state.next_lsn;
        state.next_lsn += records.len() as Lsn;
        let metrics = wal_metrics();
        metrics.batch_records.observe(records.len() as u64);
        metrics.append_us.observe_duration(start.elapsed());
        Ok(first)
    }

    /// Seals the active segment (sync, so nothing in it can tear after the new segment exists)
    /// and starts a fresh one whose header base continues the LSN sequence.
    fn rotate_locked(&self, state: &mut WalState) -> StorageResult<()> {
        let active = state.active();
        self.io.sync(active.id)?;
        let id = active.id + 1;
        let base = state.next_lsn - 1;
        self.io.create(id, &segment_header(base))?;
        state.segments.push(Segment { id, base, records: 0, bytes: 0 });
        wal_metrics().rotations.inc();
        Ok(())
    }

    /// Forces appended records to durable storage (the active segment; sealed segments were
    /// synced when they were sealed).
    pub fn sync(&self) -> StorageResult<()> {
        let start = Instant::now();
        let mut state = self.state.lock();
        let id = state.active().id;
        let result = self.io.sync(id);
        wal_metrics().fsync_us.observe_duration(start.elapsed());
        result
    }

    /// LSN that will be assigned to the next appended record.
    pub fn next_lsn(&self) -> Lsn {
        self.state.lock().next_lsn
    }

    /// LSN of the last appended record (0 when nothing was ever appended).
    pub fn durable_lsn(&self) -> Lsn {
        self.state.lock().next_lsn - 1
    }

    /// LSN before the oldest record still in the log (`base_lsn() + 1 ..` are readable).
    pub fn base_lsn(&self) -> Lsn {
        self.state.lock().segments[0].base
    }

    /// Number of live segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.state.lock().segments.len()
    }

    /// Sets the oldest LSN replication still needs.  Checkpoint pruning keeps sealed segments
    /// containing LSNs at or past the floor (newest-first, within the retention budget) so a
    /// lagging subscriber can catch up from the log instead of a snapshot.  `None` retains
    /// nothing past a checkpoint.
    pub fn set_retention_floor(&self, floor: Option<Lsn>) {
        self.state.lock().retention_floor = floor;
    }

    /// Reads every valid record from the beginning of the log, serially.
    pub fn read_all(&self) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        let state = self.state.lock();
        let mut out = Vec::new();
        for seg in &state.segments {
            let raw = self.io.read(seg.id)?;
            let parse = parse_segment(&raw[SEGMENT_HEADER_LEN..], seg.base, 0)?;
            out.extend(parse.records);
            if !parse.complete {
                break;
            }
        }
        Ok(out)
    }

    /// Reads every valid record, parsing sealed segments **in parallel** across threads before
    /// the active segment's serial tail parse.  The merged stream is byte-for-byte identical to
    /// [`WriteAheadLog::read_all`] — the recovery path uses this, the property tests pin the
    /// equivalence.
    pub fn read_all_parallel(&self) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        // Snapshot segment metadata and bytes under the lock, parse outside it.
        let raws: Vec<(Lsn, Vec<u8>)> = {
            let state = self.state.lock();
            state
                .segments
                .iter()
                .map(|seg| Ok((seg.base, self.io.read(seg.id)?)))
                .collect::<StorageResult<_>>()?
        };
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get()).min(raws.len());
        if workers <= 1 {
            let mut out = Vec::new();
            for (base, raw) in &raws {
                let parse = parse_segment(&raw[SEGMENT_HEADER_LEN..], *base, 0)?;
                out.extend(parse.records);
                if !parse.complete {
                    break;
                }
            }
            return Ok(out);
        }
        let mut parses: Vec<Option<StorageResult<SegmentParse>>> =
            (0..raws.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let assigned: Vec<(usize, &(Lsn, Vec<u8>))> =
                    raws.iter().enumerate().filter(|(i, _)| i % workers == worker).collect();
                handles.push(scope.spawn(move || {
                    assigned
                        .into_iter()
                        .map(|(i, (base, raw))| {
                            (i, parse_segment(&raw[SEGMENT_HEADER_LEN..], *base, 0))
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                for (i, parse) in handle.join().expect("segment parser panicked") {
                    parses[i] = Some(parse);
                }
            }
        });
        let mut out = Vec::new();
        for parse in parses.into_iter().map(|p| p.expect("every slot parsed")) {
            let parse = parse?;
            out.extend(parse.records);
            if !parse.complete {
                // Same global rule as the serial read: nothing past the first invalid frame.
                break;
            }
        }
        Ok(out)
    }

    /// The tail of the log from LSN `from` (inclusive) to the durable end — the replication
    /// cursor primitive.  Returns [`WalTail::Truncated`] when `from` is no longer in the log
    /// (a checkpoint pruned it away) **or** lies beyond it (the caller's cursor belongs to a
    /// different or reset log); in both cases the caller must resynchronize from a snapshot.
    pub fn read_from(&self, from: Lsn) -> StorageResult<WalTail> {
        let state = self.state.lock();
        let oldest = state.segments[0].base + 1;
        let end = state.next_lsn - 1;
        if from < oldest || from > end + 1 {
            return Ok(WalTail::Truncated { oldest });
        }
        let mut out = Vec::new();
        for seg in &state.segments {
            if seg.records == 0 || seg.end() < from {
                continue;
            }
            let raw = self.io.read(seg.id)?;
            let parse = parse_segment(&raw[SEGMENT_HEADER_LEN..], seg.base, from)?;
            out.extend(parse.records);
            if !parse.complete {
                break;
            }
        }
        Ok(WalTail::Records(out))
    }

    /// Checkpoint pruning (named for the single-file era, where it truncated the log file).
    /// Seals the active segment and deletes sealed segments oldest-first, except those still
    /// needed by replication (see [`WriteAheadLog::set_retention_floor`]) within the retention
    /// budget.  The LSN numbering is **not** reset: segment headers carry absolute bases, so
    /// the next append continues the sequence ([`WriteAheadLog::read_from`] cursors stay valid
    /// or report [`WalTail::Truncated`], never silently re-bind to different records).
    pub fn truncate(&self) -> StorageResult<()> {
        let mut state = self.state.lock();
        if state.active().bytes > 0 {
            self.rotate_locked(&mut state)?;
        }
        state.pruned_to = state.next_lsn - 1;
        self.prune_locked(&mut state)
    }

    /// Deletes prunable sealed segments.  The retained set is decided newest-first (keep while
    /// the floor needs the segment and the budget allows), so the deleted set is always a
    /// prefix of the segment sequence — which is what keeps the on-disk log contiguous even
    /// when a crash interrupts the deletes (`with_io`'s hole rule covers the interrupted case).
    fn prune_locked(&self, state: &mut WalState) -> StorageResult<()> {
        let sealed = state.segments.len() - 1;
        let mut keep_from = sealed;
        if let Some(floor) = state.retention_floor {
            let mut retained: u64 = 0;
            while keep_from > 0 {
                let seg = &state.segments[keep_from - 1];
                if seg.end() < floor || retained + seg.bytes > self.config.retention_budget_bytes {
                    break;
                }
                retained += seg.bytes;
                keep_from -= 1;
            }
        }
        for seg in &state.segments[..keep_from] {
            self.io.delete(seg.id)?;
        }
        state.segments.drain(..keep_from);
        Ok(())
    }

    /// Frame bytes currently held by the log across all segments, including segments retained
    /// only for replication (headers excluded: an empty log reports 0).
    pub fn size_bytes(&self) -> StorageResult<u64> {
        Ok(self.state.lock().segments.iter().map(|s| s.bytes).sum())
    }

    /// Frame bytes not yet covered by a checkpoint — what recovery would have to replay, and
    /// what the engine's auto-checkpoint policy watches.  Excludes segments retained purely for
    /// replication, so retention cannot retrigger checkpoints in a loop.
    pub fn uncheckpointed_bytes(&self) -> StorageResult<u64> {
        let state = self.state.lock();
        Ok(state.segments.iter().filter(|s| s.base >= state.pruned_to).map(|s| s.bytes).sum())
    }
}

/// One logged effect on a key: `Some(value)` for a put, `None` for a delete.
pub type KeyEffect = (Vec<u8>, Option<Vec<u8>>);

/// Replays a log into the set of committed key/value effects.
///
/// Effects of transactions without a `Commit` record are discarded, matching the paper's
/// requirement that the database "permanently ensures consistency": only complete, checked
/// transactions become visible.
pub fn replay_committed(records: &[(Lsn, LogRecord)]) -> Vec<KeyEffect> {
    use std::collections::HashMap;
    let mut pending: HashMap<u64, Vec<KeyEffect>> = HashMap::new();
    let mut committed: Vec<KeyEffect> = Vec::new();
    for (_, rec) in records {
        match rec {
            LogRecord::Begin { txn } => {
                pending.entry(*txn).or_default();
            }
            LogRecord::Put { txn, key, value } => {
                pending.entry(*txn).or_default().push((key.clone(), Some(value.clone())));
            }
            LogRecord::Delete { txn, key } => {
                pending.entry(*txn).or_default().push((key.clone(), None));
            }
            LogRecord::Commit { txn } => {
                if let Some(effects) = pending.remove(txn) {
                    committed.extend(effects);
                }
            }
            LogRecord::Abort { txn } => {
                pending.remove(txn);
            }
            LogRecord::Checkpoint { .. } => {}
        }
    }
    committed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "seed-wal-test-{}-{name}-{:?}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Path of the newest (active) segment file in `dir`.
    fn active_segment(dir: &Path) -> PathBuf {
        segment_files(dir).pop().expect("at least one segment file")
    }

    fn segment_files(dir: &Path) -> Vec<PathBuf> {
        let mut files: Vec<(SegmentId, PathBuf)> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| {
                let e = e.unwrap();
                let id = e.file_name().to_str().and_then(FileSegmentIo::parse_name)?;
                Some((id, e.path()))
            })
            .collect();
        files.sort();
        files.into_iter().map(|(_, p)| p).collect()
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        let records = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Put { txn: 1, key: b"obj/Alarms".to_vec(), value: b"data".to_vec() },
            LogRecord::Delete { txn: 1, key: b"obj/Old".to_vec() },
            LogRecord::Commit { txn: 1 },
            LogRecord::Abort { txn: 2 },
            LogRecord::Checkpoint { up_to: 42 },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(LogRecord::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn decode_unknown_tag_errors() {
        assert!(LogRecord::decode(&[99, 0, 0]).is_err());
    }

    #[test]
    fn segment_header_roundtrips_and_rejects_damage() {
        let header = segment_header(1234);
        assert_eq!(header.len(), SEGMENT_HEADER_LEN);
        assert_eq!(parse_segment_header(&header), Some(1234));
        assert_eq!(parse_segment_header(&header[..SEGMENT_HEADER_LEN - 1]), None, "torn header");
        let mut flipped = header.clone();
        flipped[12] ^= 0xFF;
        assert_eq!(parse_segment_header(&flipped), None, "corrupt header");
        let mut foreign = header;
        foreign[0] = b'X';
        assert_eq!(parse_segment_header(&foreign), None, "foreign magic");
    }

    #[test]
    fn memory_log_appends_and_reads_back() {
        let wal = WriteAheadLog::in_memory();
        let l1 = wal.append(&LogRecord::Begin { txn: 7 }).unwrap();
        let l2 = wal.append(&LogRecord::Commit { txn: 7 }).unwrap();
        assert_eq!(l1, 1);
        assert_eq!(l2, 2);
        let all = wal.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, LogRecord::Begin { txn: 7 });
        assert_eq!(all[1].1, LogRecord::Commit { txn: 7 });
    }

    #[test]
    fn file_log_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Put { txn: 1, key: b"k".to_vec(), value: b"v".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            let all = wal.read_all().unwrap();
            assert_eq!(all.len(), 3);
            assert_eq!(wal.next_lsn(), 4);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = temp_dir("torn");
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn write: append garbage that looks like the start of a frame.
        {
            let mut f = OpenOptions::new().append(true).open(active_segment(&dir)).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
        let all = wal.read_all().unwrap();
        assert_eq!(all.len(), 2, "torn frame must be dropped, durable prefix kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_mid_frame_recovers_committed_prefix() {
        let dir = temp_dir("midframe");
        let committed_file_len;
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Put { txn: 1, key: b"a".to_vec(), value: b"1".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
            committed_file_len = std::fs::metadata(active_segment(&dir)).unwrap().len();
            // A second transaction whose frames the crash will cut in half.
            wal.append(&LogRecord::Begin { txn: 2 }).unwrap();
            wal.append(&LogRecord::Put { txn: 2, key: b"b".to_vec(), value: b"2".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 2 }).unwrap();
            wal.sync().unwrap();
        }
        // Crash mid-frame: cut the file a few bytes into the torn region.
        let seg = active_segment(&dir);
        let full = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &full[..(committed_file_len as usize + 5)]).unwrap();

        let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
        let records: Vec<LogRecord> = wal.read_all().unwrap().into_iter().map(|(_, r)| r).collect();
        assert_eq!(
            records,
            vec![
                LogRecord::Begin { txn: 1 },
                LogRecord::Put { txn: 1, key: b"a".to_vec(), value: b"1".to_vec() },
                LogRecord::Commit { txn: 1 },
            ],
            "recovery stops at the last valid committed frame"
        );
        let effects = replay_committed(&wal.read_all().unwrap());
        assert_eq!(effects, vec![(b"a".to_vec(), Some(b"1".to_vec()))]);
        // The torn bytes were physically truncated, so new appends extend the valid prefix.
        assert_eq!(std::fs::metadata(&seg).unwrap().len(), committed_file_len);
        wal.append(&LogRecord::Begin { txn: 3 }).unwrap();
        wal.append(&LogRecord::Commit { txn: 3 }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 5, "appends after a torn tail stay readable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_inside_uncommitted_transaction_is_dropped() {
        let dir = temp_dir("torn-uncommitted");
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Put { txn: 1, key: b"k".to_vec(), value: b"v".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            // Uncommitted transaction, then the crash tears its last frame.
            wal.append(&LogRecord::Begin { txn: 2 }).unwrap();
            wal.append(&LogRecord::Put { txn: 2, key: b"x".to_vec(), value: b"y".to_vec() })
                .unwrap();
            wal.sync().unwrap();
        }
        let seg = active_segment(&dir);
        let full = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &full[..full.len() - 3]).unwrap();

        let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records.len(), 4, "only the torn frame is dropped");
        let effects = replay_committed(&records);
        assert_eq!(effects, vec![(b"k".to_vec(), Some(b"v".to_vec()))]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partially_overwritten_final_frame_is_treated_as_torn() {
        let dir = temp_dir("partial-final");
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.append(&LogRecord::Put { txn: 2, key: b"k".to_vec(), value: b"v".to_vec() })
                .unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte inside the LAST frame's payload: a torn (partially written) tail frame,
        // not interior corruption — recovery must stop cleanly before it.
        let seg = active_segment(&dir);
        {
            let mut bytes = std::fs::read(&seg).unwrap();
            let n = bytes.len();
            bytes[n - 2] ^= 0xFF;
            std::fs::write(&seg, &bytes).unwrap();
        }
        let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1, LogRecord::Commit { txn: 1 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_batch_is_one_contiguous_write() {
        let wal = WriteAheadLog::in_memory();
        let first = wal
            .append_batch(&[
                LogRecord::Begin { txn: 9 },
                LogRecord::Put { txn: 9, key: b"k".to_vec(), value: b"v".to_vec() },
                LogRecord::Commit { txn: 9 },
            ])
            .unwrap();
        assert_eq!(first, 1);
        assert_eq!(wal.next_lsn(), 4);
        let records: Vec<LogRecord> = wal.read_all().unwrap().into_iter().map(|(_, r)| r).collect();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], LogRecord::Commit { txn: 9 });
    }

    #[test]
    fn invalid_frame_truncates_log_from_there() {
        // Standard WAL recovery rule: everything past the first invalid frame was never
        // acknowledged (its batch's sync cannot have returned), so recovery keeps the valid
        // prefix and discards the rest rather than refusing to open.
        let dir = temp_dir("corrupt");
        let first_frame_end;
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.sync().unwrap();
            first_frame_end = std::fs::metadata(active_segment(&dir)).unwrap().len();
            wal.append(&LogRecord::Put { txn: 1, key: b"key".to_vec(), value: b"value".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
        }
        // Tear the middle frame (out-of-order batch persistence): bytes of the final frame
        // still exist after the invalid one.
        let seg = active_segment(&dir);
        {
            let mut bytes = std::fs::read(&seg).unwrap();
            bytes[first_frame_end as usize + 10] ^= 0xFF;
            std::fs::write(&seg, &bytes).unwrap();
        }
        let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records.len(), 1, "valid prefix kept, torn batch discarded");
        assert_eq!(records[0].1, LogRecord::Begin { txn: 1 });
        assert_eq!(
            std::fs::metadata(&seg).unwrap().len(),
            first_frame_end,
            "torn bytes truncated on open"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_clears_bytes_but_keeps_the_lsn_sequence() {
        let wal = WriteAheadLog::in_memory();
        wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 0);
        assert_eq!(wal.next_lsn(), 2, "absolute LSNs survive truncation");
        assert_eq!(wal.base_lsn(), 1);
        assert_eq!(wal.size_bytes().unwrap(), 0);
        // The next append continues the sequence.
        assert_eq!(wal.append(&LogRecord::Commit { txn: 1 }).unwrap(), 2);
        assert_eq!(wal.read_all().unwrap(), vec![(2, LogRecord::Commit { txn: 1 })]);
    }

    #[test]
    fn read_from_serves_the_tail_and_reports_truncation() {
        let wal = WriteAheadLog::in_memory();
        for txn in 1..=3 {
            wal.append(&LogRecord::Begin { txn }).unwrap();
            wal.append(&LogRecord::Commit { txn }).unwrap();
        }
        // Mid-log cursor: records 4..=6.
        match wal.read_from(4).unwrap() {
            WalTail::Records(recs) => {
                assert_eq!(recs.len(), 3);
                assert_eq!(recs[0], (4, LogRecord::Commit { txn: 2 }));
            }
            other => panic!("expected records, got {other:?}"),
        }
        // Caught up: empty, not an error.
        assert_eq!(wal.read_from(7).unwrap(), WalTail::Records(vec![]));
        // Ahead of the log: a foreign cursor, must resync.
        assert!(matches!(wal.read_from(8).unwrap(), WalTail::Truncated { oldest: 1 }));
        // After truncation, old cursors learn they were cut off; new ones still work.
        wal.truncate().unwrap();
        assert!(matches!(wal.read_from(3).unwrap(), WalTail::Truncated { oldest: 7 }));
        assert_eq!(wal.read_from(7).unwrap(), WalTail::Records(vec![]));
        wal.append(&LogRecord::Begin { txn: 9 }).unwrap();
        match wal.read_from(7).unwrap() {
            WalTail::Records(recs) => assert_eq!(recs, vec![(7, LogRecord::Begin { txn: 9 })]),
            other => panic!("expected records, got {other:?}"),
        }
    }

    #[test]
    fn base_lsn_survives_reopen_of_a_file_log() {
        let dir = temp_dir("base-reopen");
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
            wal.truncate().unwrap();
            wal.append(&LogRecord::Begin { txn: 2 }).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            assert_eq!(wal.base_lsn(), 2, "base restored from the segment header");
            assert_eq!(wal.next_lsn(), 4);
            assert_eq!(wal.read_all().unwrap(), vec![(3, LogRecord::Begin { txn: 2 })]);
            assert!(matches!(wal.read_from(1).unwrap(), WalTail::Truncated { oldest: 3 }));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn small_cap(cap: u64) -> WalConfig {
        WalConfig { segment_max_bytes: cap, ..WalConfig::default() }
    }

    fn commit_batch(txn: u64, payload: usize) -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn },
            LogRecord::Put {
                txn,
                key: format!("k/{txn:04}").into_bytes(),
                value: vec![7; payload],
            },
            LogRecord::Commit { txn },
        ]
    }

    #[test]
    fn rotation_splits_the_log_across_segment_files() {
        let dir = temp_dir("rotate");
        {
            let wal = WriteAheadLog::open_dir(&dir, small_cap(128)).unwrap();
            for txn in 1..=10 {
                wal.append_batch(&commit_batch(txn, 48)).unwrap();
                wal.sync().unwrap();
            }
            assert!(wal.segment_count() > 1, "small cap must force rotations");
            assert_eq!(segment_files(&dir).len(), wal.segment_count());
            let all = wal.read_all().unwrap();
            assert_eq!(all.len(), 30);
            let lsns: Vec<Lsn> = all.iter().map(|(l, _)| *l).collect();
            assert_eq!(lsns, (1..=30).collect::<Vec<_>>(), "LSNs stay contiguous across files");
        }
        {
            let wal = WriteAheadLog::open_dir(&dir, small_cap(128)).unwrap();
            assert_eq!(wal.read_all().unwrap().len(), 30);
            assert_eq!(wal.next_lsn(), 31);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_batch_never_spans_two_segments() {
        let wal = WriteAheadLog::in_memory_with(small_cap(64));
        for txn in 1..=6 {
            wal.append_batch(&commit_batch(txn, 100)).unwrap();
        }
        // Every batch rotated into its own segment: records per segment divisible by 3.
        let state = wal.state.lock();
        for seg in state.segments.iter().filter(|s| s.records > 0) {
            assert_eq!(seg.records % 3, 0, "segment holds whole batches only");
        }
    }

    #[test]
    fn truncate_prunes_whole_sealed_segments() {
        let dir = temp_dir("prune");
        let wal = WriteAheadLog::open_dir(&dir, small_cap(128)).unwrap();
        for txn in 1..=10 {
            wal.append_batch(&commit_batch(txn, 48)).unwrap();
        }
        wal.sync().unwrap();
        let end = wal.durable_lsn();
        assert!(segment_files(&dir).len() > 1);
        wal.truncate().unwrap();
        assert_eq!(segment_files(&dir).len(), 1, "checkpoint deletes sealed segments");
        assert_eq!(wal.size_bytes().unwrap(), 0);
        assert_eq!(wal.base_lsn(), end);
        assert_eq!(wal.next_lsn(), end + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_floor_keeps_segments_a_subscriber_still_needs() {
        let wal = WriteAheadLog::in_memory_with(small_cap(128));
        for txn in 1..=10 {
            wal.append_batch(&commit_batch(txn, 48)).unwrap();
        }
        let end = wal.durable_lsn();
        let cursor = end - 7; // a lagging subscriber's next LSN
        wal.set_retention_floor(Some(cursor));
        wal.truncate().unwrap();
        assert!(wal.base_lsn() < cursor, "segments covering the cursor survive the checkpoint");
        match wal.read_from(cursor).unwrap() {
            WalTail::Records(recs) => {
                assert_eq!(recs.first().map(|(l, _)| *l), Some(cursor));
                assert_eq!(recs.last().map(|(l, _)| *l), Some(end));
            }
            other => panic!("expected retained records, got {other:?}"),
        }
        // Once the subscriber is gone, the next checkpoint drops the retained segments.
        wal.set_retention_floor(None);
        wal.truncate().unwrap();
        assert!(matches!(wal.read_from(cursor).unwrap(), WalTail::Truncated { .. }));
        assert_eq!(wal.size_bytes().unwrap(), 0);
    }

    #[test]
    fn retention_budget_bounds_what_a_checkpoint_keeps() {
        let wal = WriteAheadLog::in_memory_with(WalConfig {
            segment_max_bytes: 128,
            retention_budget_bytes: 0,
        });
        for txn in 1..=10 {
            wal.append_batch(&commit_batch(txn, 48)).unwrap();
        }
        wal.set_retention_floor(Some(2));
        wal.truncate().unwrap();
        assert!(
            matches!(wal.read_from(2).unwrap(), WalTail::Truncated { .. }),
            "a zero budget retains nothing, the subscriber must snapshot"
        );
        assert_eq!(wal.size_bytes().unwrap(), 0);
    }

    #[test]
    fn torn_rotation_artifact_is_deleted_on_open() {
        let dir = temp_dir("torn-rotation");
        {
            let wal = WriteAheadLog::open_dir(&dir, small_cap(64)).unwrap();
            for txn in 1..=3 {
                wal.append_batch(&commit_batch(txn, 32)).unwrap();
            }
            wal.sync().unwrap();
        }
        // A crash mid-rotation leaves a new segment whose header write was cut short.
        let next_id = segment_files(&dir).len() as SegmentId + 1;
        let artifact = dir.join(format!("wal.{next_id:06}.seg"));
        std::fs::write(&artifact, &segment_header(999)[..7]).unwrap();
        let wal = WriteAheadLog::open_dir(&dir, small_cap(64)).unwrap();
        assert!(!artifact.exists(), "rotation artifact removed");
        assert_eq!(wal.read_all().unwrap().len(), 9, "sealed records all survive");
        wal.append(&LogRecord::Begin { txn: 4 }).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 10, "appends continue after cleanup");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_prune_hole_keeps_the_newest_contiguous_run() {
        let dir = temp_dir("torn-prune");
        {
            let wal = WriteAheadLog::open_dir(&dir, small_cap(64)).unwrap();
            for txn in 1..=4 {
                wal.append_batch(&commit_batch(txn, 48)).unwrap();
            }
            wal.sync().unwrap();
            assert!(wal.segment_count() >= 3);
        }
        // A prune interrupted out of order would leave a hole; recovery must keep the run
        // after the hole (it starts at or past the checkpoint) and drop the stale prefix.
        let files = segment_files(&dir);
        std::fs::remove_file(&files[1]).unwrap();
        let wal = WriteAheadLog::open_dir(&dir, small_cap(64)).unwrap();
        assert!(!files[0].exists(), "stale pre-hole segment deleted");
        let all = wal.read_all().unwrap();
        assert!(!all.is_empty());
        assert!(all[0].0 > 1, "records before the hole are gone");
        let lsns: Vec<Lsn> = all.iter().map(|(l, _)| *l).collect();
        assert_eq!(
            lsns,
            (all[0].0..=all[all.len() - 1].0).collect::<Vec<_>>(),
            "surviving records are contiguous"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_single_file_log_is_migrated_on_open() {
        let dir = temp_dir("legacy");
        // Fabricate a pre-segmentation log: raw frames in `wal.log`, base in the sidecar.
        let mut raw = Vec::new();
        raw.extend_from_slice(&frame_bytes(&LogRecord::Begin { txn: 9 }));
        raw.extend_from_slice(&frame_bytes(&LogRecord::Commit { txn: 9 }));
        std::fs::write(dir.join("wal.log"), &raw).unwrap();
        std::fs::write(dir.join("wal.log.base"), 5u64.to_le_bytes()).unwrap();
        {
            let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
            assert_eq!(wal.base_lsn(), 5, "sidecar base became the segment header base");
            assert_eq!(
                wal.read_all().unwrap(),
                vec![(6, LogRecord::Begin { txn: 9 }), (7, LogRecord::Commit { txn: 9 })]
            );
            assert!(!dir.join("wal.log").exists(), "legacy file removed after migration");
            assert!(!dir.join("wal.log.base").exists());
            assert!(dir.join("wal.000001.seg").exists());
            wal.append(&LogRecord::Begin { txn: 10 }).unwrap();
            wal.sync().unwrap();
        }
        let wal = WriteAheadLog::open_dir(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 3);
        assert_eq!(wal.next_lsn(), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_read_matches_serial_including_torn_tails() {
        let dir = temp_dir("parallel");
        {
            let wal = WriteAheadLog::open_dir(&dir, small_cap(96)).unwrap();
            for txn in 1..=12 {
                wal.append_batch(&commit_batch(txn, 40)).unwrap();
            }
            wal.sync().unwrap();
            assert!(wal.segment_count() > 2);
            assert_eq!(wal.read_all_parallel().unwrap(), wal.read_all().unwrap());
        }
        // Tear the active segment's tail; both reads must agree on the shortened stream.
        let seg = active_segment(&dir);
        let full = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &full[..full.len() - 4]).unwrap();
        let wal = WriteAheadLog::open_dir(&dir, small_cap(96)).unwrap();
        let serial = wal.read_all().unwrap();
        assert_eq!(wal.read_all_parallel().unwrap(), serial);
        assert!(serial.len() < 36);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_skips_uncommitted_and_aborted() {
        let records = vec![
            (1, LogRecord::Begin { txn: 1 }),
            (2, LogRecord::Put { txn: 1, key: b"a".to_vec(), value: b"1".to_vec() }),
            (3, LogRecord::Begin { txn: 2 }),
            (4, LogRecord::Put { txn: 2, key: b"b".to_vec(), value: b"2".to_vec() }),
            (5, LogRecord::Commit { txn: 1 }),
            (6, LogRecord::Abort { txn: 2 }),
            (7, LogRecord::Begin { txn: 3 }),
            (8, LogRecord::Put { txn: 3, key: b"c".to_vec(), value: b"3".to_vec() }),
            // txn 3 never commits (crash), must not appear.
        ];
        let effects = replay_committed(&records);
        assert_eq!(effects, vec![(b"a".to_vec(), Some(b"1".to_vec()))]);
    }

    #[test]
    fn replay_preserves_delete_effects() {
        let records = vec![
            (1, LogRecord::Begin { txn: 1 }),
            (2, LogRecord::Put { txn: 1, key: b"x".to_vec(), value: b"1".to_vec() }),
            (3, LogRecord::Delete { txn: 1, key: b"x".to_vec() }),
            (4, LogRecord::Commit { txn: 1 }),
        ];
        let effects = replay_committed(&records);
        assert_eq!(effects.len(), 2);
        assert_eq!(effects[1], (b"x".to_vec(), None));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_record() -> impl Strategy<Value = LogRecord> {
        prop_oneof![
            any::<u64>().prop_map(|txn| LogRecord::Begin { txn }),
            any::<u64>().prop_map(|txn| LogRecord::Commit { txn }),
            any::<u64>().prop_map(|txn| LogRecord::Abort { txn }),
            (
                any::<u64>(),
                proptest::collection::vec(any::<u8>(), 0..64),
                proptest::collection::vec(any::<u8>(), 0..64)
            )
                .prop_map(|(txn, key, value)| LogRecord::Put { txn, key, value }),
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(txn, key)| LogRecord::Delete { txn, key }),
            any::<u64>().prop_map(|up_to| LogRecord::Checkpoint { up_to }),
        ]
    }

    proptest! {
        #[test]
        fn any_record_roundtrips(rec in arb_record()) {
            prop_assert_eq!(LogRecord::decode(&rec.encode()).unwrap(), rec);
        }

        #[test]
        fn log_preserves_order(records in proptest::collection::vec(arb_record(), 0..50)) {
            let wal = WriteAheadLog::in_memory();
            for r in &records {
                wal.append(r).unwrap();
            }
            let read: Vec<LogRecord> = wal.read_all().unwrap().into_iter().map(|(_, r)| r).collect();
            prop_assert_eq!(read, records);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The segmentation tentpole's core property: random commit-size sequences over an
        /// arbitrary segment cap recover identically to the single-file oracle (a log whose cap
        /// never rotates), across checkpoints and a simulated restart — and the parallel replay
        /// path equals the serial one at every step.
        #[test]
        fn segmented_log_matches_single_file_oracle(
            steps in proptest::collection::vec(
                (proptest::collection::vec(arb_record(), 1..6), any::<bool>()),
                1..24,
            ),
            cap in 16u64..512,
        ) {
            let io = Arc::new(MemorySegmentIo::new());
            let config = WalConfig { segment_max_bytes: cap, ..WalConfig::default() };
            let wal = WriteAheadLog::with_io(io.clone(), config.clone()).unwrap();
            let oracle = WriteAheadLog::in_memory_with(WalConfig {
                segment_max_bytes: u64::MAX,
                ..WalConfig::default()
            });
            for (batch, checkpoint) in &steps {
                prop_assert_eq!(
                    wal.append_batch(batch).unwrap(),
                    oracle.append_batch(batch).unwrap()
                );
                if *checkpoint {
                    wal.truncate().unwrap();
                    oracle.truncate().unwrap();
                }
            }
            prop_assert_eq!(wal.read_all().unwrap(), oracle.read_all().unwrap());
            prop_assert_eq!(wal.read_all_parallel().unwrap(), wal.read_all().unwrap());
            prop_assert_eq!(wal.next_lsn(), oracle.next_lsn());
            prop_assert_eq!(wal.base_lsn(), oracle.base_lsn());

            // Restart: reopen over the same segment bytes; nothing may change.
            drop(wal);
            let reopened = WriteAheadLog::with_io(io, config).unwrap();
            prop_assert_eq!(reopened.read_all().unwrap(), oracle.read_all().unwrap());
            prop_assert_eq!(reopened.read_all_parallel().unwrap(), reopened.read_all().unwrap());
            prop_assert_eq!(reopened.next_lsn(), oracle.next_lsn());
            prop_assert_eq!(reopened.base_lsn(), oracle.base_lsn());
        }
    }
}
