//! Fluent construction of schemas, plus the paper's Figure 2 and Figure 3 schemas.

use crate::association::RelationshipAttribute;
use crate::cardinality::Cardinality;
use crate::domain::Domain;
use crate::error::SchemaResult;
use crate::ids::{AssociationId, ClassId};
use crate::procedure::AttachedProcedure;
use crate::schema::Schema;

/// Fluent builder for [`Schema`].
///
/// ```
/// use seed_schema::{SchemaBuilder, Cardinality, Domain};
///
/// let schema = SchemaBuilder::new("Spec")
///     .class("Data", |c| c.dependent("Text", Cardinality::bounded(0, 16).unwrap(), None))
///     .class("Action", |c| c)
///     .association("Read", "from", "Data", "1..*", "by", "Action", "0..*", |a| a)
///     .build()
///     .unwrap();
/// assert!(schema.class_by_name("Data.Text").is_ok());
/// ```
pub struct SchemaBuilder {
    schema: Schema,
    errors: Vec<crate::error::SchemaError>,
}

/// Scoped builder for one class and its dependent classes.
pub struct ClassBuilder<'a> {
    schema: &'a mut Schema,
    class: ClassId,
    errors: &'a mut Vec<crate::error::SchemaError>,
}

/// Scoped builder for one association.
pub struct AssociationBuilder<'a> {
    schema: &'a mut Schema,
    assoc: AssociationId,
    errors: &'a mut Vec<crate::error::SchemaError>,
}

impl SchemaBuilder {
    /// Starts a new schema.
    pub fn new(name: impl Into<String>) -> Self {
        Self { schema: Schema::new(name), errors: Vec::new() }
    }

    /// Adds an independent class and configures it through the closure.
    pub fn class(
        mut self,
        name: &str,
        configure: impl FnOnce(ClassBuilder<'_>) -> ClassBuilder<'_>,
    ) -> Self {
        match self.schema.add_class(name) {
            Ok(id) => {
                let cb =
                    ClassBuilder { schema: &mut self.schema, class: id, errors: &mut self.errors };
                let _ = configure(cb);
            }
            Err(e) => self.errors.push(e),
        }
        self
    }

    /// Adds a class whose instances carry values of `domain`.
    pub fn value_class(mut self, name: &str, domain: Domain) -> Self {
        match self.schema.add_class(name) {
            Ok(id) => {
                if let Err(e) = self.schema.set_class_domain(id, Some(domain)) {
                    self.errors.push(e);
                }
            }
            Err(e) => self.errors.push(e),
        }
        self
    }

    /// Adds a binary association with textual cardinalities and configures it.
    #[allow(clippy::too_many_arguments)]
    pub fn association(
        mut self,
        name: &str,
        role_a: &str,
        class_a: &str,
        card_a: &str,
        role_b: &str,
        class_b: &str,
        card_b: &str,
        configure: impl FnOnce(AssociationBuilder<'_>) -> AssociationBuilder<'_>,
    ) -> Self {
        let result = (|| -> SchemaResult<AssociationId> {
            let ca = self.schema.class_id(class_a)?;
            let cb = self.schema.class_id(class_b)?;
            let card_a = Cardinality::parse(card_a)?;
            let card_b = Cardinality::parse(card_b)?;
            self.schema.add_binary_association(
                name,
                (role_a, ca, card_a),
                (role_b, cb, card_b),
                false,
            )
        })();
        match result {
            Ok(id) => {
                let ab = AssociationBuilder {
                    schema: &mut self.schema,
                    assoc: id,
                    errors: &mut self.errors,
                };
                let _ = configure(ab);
            }
            Err(e) => self.errors.push(e),
        }
        self
    }

    /// Declares a class generalization: every name in `subs` becomes a specialization of `super_name`.
    pub fn generalize_classes(mut self, super_name: &str, subs: &[&str], covering: bool) -> Self {
        let result = (|| -> SchemaResult<()> {
            let sup = self.schema.class_id(super_name)?;
            for sub in subs {
                let sub_id = self.schema.class_id(sub)?;
                self.schema.set_superclass(sub_id, sup)?;
            }
            self.schema.set_class_covering(sup, covering)
        })();
        if let Err(e) = result {
            self.errors.push(e);
        }
        self
    }

    /// Declares an association generalization.
    pub fn generalize_associations(
        mut self,
        super_name: &str,
        subs: &[&str],
        covering: bool,
    ) -> Self {
        let result = (|| -> SchemaResult<()> {
            let sup = self.schema.association_id(super_name)?;
            for sub in subs {
                let sub_id = self.schema.association_id(sub)?;
                self.schema.set_superassociation(sub_id, sup)?;
            }
            self.schema.set_association_covering(sup, covering)
        })();
        if let Err(e) = result {
            self.errors.push(e);
        }
        self
    }

    /// Finishes the schema, returning the first construction error if any occurred.
    pub fn build(self) -> SchemaResult<Schema> {
        match self.errors.into_iter().next() {
            Some(e) => Err(e),
            None => Ok(self.schema),
        }
    }
}

impl<'a> ClassBuilder<'a> {
    /// Adds a dependent class (sub-object class) to the class being built.
    pub fn dependent(
        self,
        local_name: &str,
        occurrence: Cardinality,
        domain: Option<Domain>,
    ) -> Self {
        match self.schema.add_dependent_class(self.class, local_name, occurrence, domain) {
            Ok(_) => self,
            Err(e) => {
                self.errors.push(e);
                self
            }
        }
    }

    /// Adds a dependent class and then descends into it to add further dependents.
    pub fn dependent_with(
        self,
        local_name: &str,
        occurrence: Cardinality,
        domain: Option<Domain>,
        configure: impl FnOnce(ClassBuilder<'_>) -> ClassBuilder<'_>,
    ) -> Self {
        match self.schema.add_dependent_class(self.class, local_name, occurrence, domain) {
            Ok(child) => {
                {
                    let cb =
                        ClassBuilder { schema: self.schema, class: child, errors: self.errors };
                    let _ = configure(cb);
                }
                self
            }
            Err(e) => {
                self.errors.push(e);
                self
            }
        }
    }

    /// Gives the class itself a value domain.
    pub fn domain(self, domain: Domain) -> Self {
        if let Err(e) = self.schema.set_class_domain(self.class, Some(domain)) {
            self.errors.push(e);
        }
        self
    }

    /// Attaches a procedure to the class.
    pub fn procedure(self, procedure: AttachedProcedure) -> Self {
        if let Err(e) = self.schema.attach_class_procedure(self.class, procedure) {
            self.errors.push(e);
        }
        self
    }
}

impl<'a> AssociationBuilder<'a> {
    /// Marks the association ACYCLIC.
    pub fn acyclic(self) -> Self {
        if let Err(e) = self.schema.set_association_acyclic(self.assoc, true) {
            self.errors.push(e);
        }
        self
    }

    /// Adds a relationship attribute.
    pub fn attribute(self, name: &str, domain: Domain, required: bool) -> Self {
        if let Err(e) = self.schema.add_relationship_attribute(
            self.assoc,
            RelationshipAttribute::new(name, domain, required),
        ) {
            self.errors.push(e);
        }
        self
    }

    /// Attaches a procedure to the association.
    pub fn procedure(self, procedure: AttachedProcedure) -> Self {
        if let Err(e) = self.schema.attach_association_procedure(self.assoc, procedure) {
            self.errors.push(e);
        }
        self
    }
}

// --------------------------------------------------------------------------------------------
// The paper's schemas
// --------------------------------------------------------------------------------------------

/// Builds the schema of **Figure 2**: the data model of "a primitive specification system where
/// actions, data, and data flow may be represented".
pub fn figure2_schema() -> Schema {
    let c016 = Cardinality::bounded(0, 16).expect("valid");
    SchemaBuilder::new("Figure2")
        .class("Data", |c| {
            c.dependent_with("Text", c016, None, |t| {
                t.dependent_with("Body", Cardinality::optional(), None, |b| {
                    b.dependent("Keywords", Cardinality::any(), Some(Domain::String)).dependent(
                        "Contents",
                        Cardinality::optional(),
                        Some(Domain::Text),
                    )
                })
                .dependent(
                    "Selector",
                    Cardinality::optional(),
                    Some(Domain::String),
                )
            })
        })
        .class("Action", |c| {
            c.dependent("Description", Cardinality::optional(), Some(Domain::String))
        })
        .association("Read", "from", "Data", "1..*", "by", "Action", "0..*", |a| a)
        .association("Write", "to", "Data", "1..*", "by", "Action", "0..*", |a| a)
        .association("Contained", "in", "Action", "0..1", "container", "Action", "0..*", |a| {
            a.acyclic()
        })
        .build()
        .expect("figure 2 schema is statically correct")
}

/// Builds the schema of **Figure 3**: Figure 2 extended with generalizations of classes and
/// associations so that vague information can be stored.
pub fn figure3_schema() -> Schema {
    let c016 = Cardinality::bounded(0, 16).expect("valid");
    SchemaBuilder::new("Figure3")
        .class("Thing", |c| c.dependent("Revised", Cardinality::optional(), Some(Domain::Date)))
        .class("Data", |c| {
            c.dependent_with("Text", c016, None, |t| {
                t.dependent_with("Body", Cardinality::optional(), None, |b| {
                    b.dependent("Keywords", Cardinality::any(), Some(Domain::String)).dependent(
                        "Contents",
                        Cardinality::optional(),
                        Some(Domain::Text),
                    )
                })
                .dependent(
                    "Selector",
                    Cardinality::optional(),
                    Some(Domain::String),
                )
            })
        })
        .class("Action", |c| {
            c.dependent("Description", Cardinality::optional(), Some(Domain::String))
        })
        .class("OutputData", |c| c)
        .class("InputData", |c| c)
        // Vague category: Access generalizes Read and Write; "the cardinality 1..* of 'Access by'
        // means that every object of class 'Action' eventually must access at least one object
        // of class 'Data'", while 'Read by' / 'Write by' are 0..* so either kind satisfies it.
        .association("Access", "from", "Data", "0..*", "by", "Action", "1..*", |a| a)
        .association("Read", "from", "InputData", "1..*", "by", "Action", "0..*", |a| a)
        .association("Write", "to", "OutputData", "1..*", "by", "Action", "0..*", |a| {
            a.attribute("NumberOfWrites", Domain::Integer, true).attribute(
                "ErrorHandling",
                Domain::Enumeration(vec!["abort".to_string(), "repeat".to_string()]),
                false,
            )
        })
        .association("Contained", "in", "Action", "0..1", "container", "Action", "0..*", |a| {
            a.acyclic()
        })
        .generalize_classes("Thing", &["Data", "Action"], true)
        .generalize_classes("Data", &["OutputData", "InputData"], false)
        .generalize_associations("Access", &["Read", "Write"], true)
        .build()
        .expect("figure 3 schema is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_has_expected_elements() {
        let s = figure2_schema();
        assert_eq!(s.name, "Figure2");
        for class in [
            "Data",
            "Action",
            "Data.Text",
            "Data.Text.Body",
            "Data.Text.Selector",
            "Data.Text.Body.Keywords",
            "Action.Description",
        ] {
            assert!(s.class_by_name(class).is_ok(), "missing class {class}");
        }
        for assoc in ["Read", "Write", "Contained"] {
            assert!(s.association_by_name(assoc).is_ok(), "missing association {assoc}");
        }
        let text = s.class_by_name("Data.Text").unwrap();
        assert_eq!(text.occurrence, Cardinality::bounded(0, 16).unwrap());
        let contained = s.association_by_name("Contained").unwrap();
        assert!(contained.acyclic);
        assert_eq!(contained.role("in").unwrap().cardinality, Cardinality::optional());
        let read = s.association_by_name("Read").unwrap();
        assert_eq!(read.role("from").unwrap().cardinality, Cardinality::at_least_one());
        assert_eq!(read.role("by").unwrap().cardinality, Cardinality::any());
    }

    #[test]
    fn figure3_extends_figure2_with_generalizations() {
        let s = figure3_schema();
        let thing = s.class_id("Thing").unwrap();
        let data = s.class_id("Data").unwrap();
        let action = s.class_id("Action").unwrap();
        let output = s.class_id("OutputData").unwrap();
        assert!(s.class_is_a(data, thing));
        assert!(s.class_is_a(action, thing));
        assert!(s.class_is_a(output, data));
        assert!(s.class_is_a(output, thing));
        assert!(s.class(thing).unwrap().covering);

        let access = s.association_id("Access").unwrap();
        let read = s.association_id("Read").unwrap();
        let write = s.association_id("Write").unwrap();
        assert!(s.association_is_a(read, access));
        assert!(s.association_is_a(write, access));
        assert!(s.association(access).unwrap().covering);
        assert_eq!(
            s.association(access).unwrap().role("by").unwrap().cardinality,
            Cardinality::at_least_one()
        );
        let w = s.association(write).unwrap();
        assert!(w.attribute("NumberOfWrites").is_some());
        assert!(w.attribute("ErrorHandling").is_some());
        assert!(w.attribute("ErrorHandling").unwrap().domain.allows_literal("repeat"));
        // Revised is a dependent of Thing with DATE domain.
        let revised = s.class_by_name("Thing.Revised").unwrap();
        assert_eq!(revised.domain, Some(Domain::Date));
    }

    #[test]
    fn builder_reports_unknown_class_in_association() {
        let result = SchemaBuilder::new("Broken")
            .class("Data", |c| c)
            .association("Read", "from", "Data", "1..*", "by", "Ghost", "0..*", |a| a)
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn builder_reports_duplicate_class() {
        let result = SchemaBuilder::new("Broken").class("Data", |c| c).class("Data", |c| c).build();
        assert!(result.is_err());
    }

    #[test]
    fn value_class_sets_domain() {
        let s = SchemaBuilder::new("V").value_class("Note", Domain::Text).build().unwrap();
        assert_eq!(s.class_by_name("Note").unwrap().domain, Some(Domain::Text));
    }
}
