//! SDL — the schema definition language.
//!
//! The paper presents schemas as modified entity-relationship diagrams (Figures 2 and 3).  For a
//! programmable system we provide an equivalent textual form, so that tools built on SEED can
//! ship their specification grammar as a file.  Example (a fragment of Figure 3):
//!
//! ```text
//! schema Figure3 {
//!     class Thing covering {
//!         dependent Revised [0..1] : DATE;
//!     }
//!     class Data : Thing {
//!         dependent Text [0..16] {
//!             dependent Selector [0..1] : STRING;
//!         }
//!     }
//!     class Action : Thing;
//!     association Access covering {
//!         role from : Data [0..*];
//!         role by   : Action [1..*];
//!     }
//!     association Write : Access {
//!         role to : Data [1..*];
//!         role by : Action [0..*];
//!         attribute NumberOfWrites : INTEGER required;
//!         attribute ErrorHandling : ENUM(abort, repeat);
//!     }
//!     association Contained acyclic {
//!         role in        : Action [0..1];
//!         role container : Action [0..*];
//!     }
//! }
//! ```
//!
//! [`parse`] turns SDL text into a [`Schema`](crate::Schema); [`print()`] renders a schema
//! back to SDL.  The two are inverse up to formatting (see the round-trip tests).

mod lexer;
mod parser;
mod printer;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse;
pub use printer::print;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{figure2_schema, figure3_schema};
    use crate::schema::Schema;

    /// Structural equivalence of two schemas by names (ignores internal id assignment details).
    fn assert_equivalent(a: &Schema, b: &Schema) {
        assert_eq!(a.class_count(), b.class_count(), "class counts differ");
        assert_eq!(a.association_count(), b.association_count(), "association counts differ");
        for ca in a.classes() {
            let cb =
                b.class_by_name(&ca.name).unwrap_or_else(|_| panic!("class {} missing", ca.name));
            assert_eq!(ca.occurrence, cb.occurrence, "occurrence of {}", ca.name);
            assert_eq!(ca.domain, cb.domain, "domain of {}", ca.name);
            assert_eq!(ca.covering, cb.covering, "covering of {}", ca.name);
            let sup_a = ca.superclass.map(|s| a.class(s).unwrap().name.clone());
            let sup_b = cb.superclass.map(|s| b.class(s).unwrap().name.clone());
            assert_eq!(sup_a, sup_b, "superclass of {}", ca.name);
            let owner_a = ca.owner.map(|s| a.class(s).unwrap().name.clone());
            let owner_b = cb.owner.map(|s| b.class(s).unwrap().name.clone());
            assert_eq!(owner_a, owner_b, "owner of {}", ca.name);
        }
        for aa in a.associations() {
            let ab = b
                .association_by_name(&aa.name)
                .unwrap_or_else(|_| panic!("association {} missing", aa.name));
            assert_eq!(aa.acyclic, ab.acyclic, "acyclic of {}", aa.name);
            assert_eq!(aa.covering, ab.covering, "covering of {}", aa.name);
            assert_eq!(aa.roles.len(), ab.roles.len(), "role count of {}", aa.name);
            for ra in &aa.roles {
                let rb = ab.role(&ra.name).unwrap_or_else(|| panic!("role {} missing", ra.name));
                assert_eq!(
                    ra.cardinality, rb.cardinality,
                    "cardinality of {}.{}",
                    aa.name, ra.name
                );
                assert_eq!(
                    a.class(ra.class).unwrap().name,
                    b.class(rb.class).unwrap().name,
                    "class of {}.{}",
                    aa.name,
                    ra.name
                );
            }
            assert_eq!(aa.attributes.len(), ab.attributes.len(), "attributes of {}", aa.name);
            for attr in &aa.attributes {
                let other = ab
                    .attribute(&attr.name)
                    .unwrap_or_else(|| panic!("attr {} missing", attr.name));
                assert_eq!(attr.domain, other.domain);
                assert_eq!(attr.required, other.required);
            }
            let sup_a = aa.superassociation.map(|s| a.association(s).unwrap().name.clone());
            let sup_b = ab.superassociation.map(|s| b.association(s).unwrap().name.clone());
            assert_eq!(sup_a, sup_b, "superassociation of {}", aa.name);
        }
    }

    #[test]
    fn figure2_roundtrips_through_sdl() {
        let original = figure2_schema();
        let text = print(&original);
        let reparsed = parse(&text).expect("printed SDL must parse");
        assert_equivalent(&original, &reparsed);
    }

    #[test]
    fn figure3_roundtrips_through_sdl() {
        let original = figure3_schema();
        let text = print(&original);
        let reparsed = parse(&text).expect("printed SDL must parse");
        assert_equivalent(&original, &reparsed);
    }

    #[test]
    fn double_roundtrip_is_stable() {
        let original = figure3_schema();
        let text1 = print(&original);
        let schema2 = parse(&text1).unwrap();
        let text2 = print(&schema2);
        assert_eq!(text1, text2, "printing must be a fixed point after one round trip");
    }
}
