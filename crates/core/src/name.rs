//! Hierarchical object names.
//!
//! "The name of a dependent object is composed of the name of its parent and of its role in the
//! context of the parent object.  Thus, (3) is the object 'Alarms.Text' consisting of objects
//! 'Alarms.Text.Body' and 'Alarms.Text.Selector'. (...) (4) is a dependent object with name
//! 'Alarms.Text.Body.Keywords\[1\]'."  (paper, explanation of Figure 1)

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{SeedError, SeedResult};

/// One segment of a hierarchical name: the role name plus an optional occurrence index used when
/// several dependent objects of the same class exist under one parent (`Keywords[1]`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NameSegment {
    /// The role / class local name, e.g. `"Keywords"`.
    pub name: String,
    /// Occurrence index for repeated dependents, e.g. `Some(1)` in `Keywords[1]`.
    pub index: Option<u32>,
}

impl NameSegment {
    /// Creates an un-indexed segment.
    pub fn plain(name: impl Into<String>) -> Self {
        Self { name: name.into(), index: None }
    }

    /// Creates an indexed segment.
    pub fn indexed(name: impl Into<String>, index: u32) -> Self {
        Self { name: name.into(), index: Some(index) }
    }
}

impl fmt::Display for NameSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{}]", self.name, i),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A full hierarchical object name such as `Alarms.Text.Body.Keywords[1]`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectName {
    segments: Vec<NameSegment>,
}

impl ObjectName {
    /// Creates a top-level (independent object) name.
    pub fn root(name: impl Into<String>) -> Self {
        Self { segments: vec![NameSegment::plain(name)] }
    }

    /// Creates a name from segments; at least one segment is required.
    pub fn from_segments(segments: Vec<NameSegment>) -> SeedResult<Self> {
        if segments.is_empty() {
            return Err(SeedError::Invalid("an object name needs at least one segment".into()));
        }
        Ok(Self { segments })
    }

    /// Parses `"Alarms.Text.Body.Keywords[1]"`.
    pub fn parse(s: &str) -> SeedResult<Self> {
        if s.trim().is_empty() {
            return Err(SeedError::Invalid("empty object name".into()));
        }
        let mut segments = Vec::new();
        for part in s.split('.') {
            let part = part.trim();
            if part.is_empty() {
                return Err(SeedError::Invalid(format!("empty segment in name '{s}'")));
            }
            if let Some(open) = part.find('[') {
                if !part.ends_with(']') {
                    return Err(SeedError::Invalid(format!("unterminated index in '{part}'")));
                }
                let name = &part[..open];
                let idx_str = &part[open + 1..part.len() - 1];
                let index: u32 = idx_str.parse().map_err(|_| {
                    SeedError::Invalid(format!("invalid index '{idx_str}' in '{part}'"))
                })?;
                if name.is_empty() {
                    return Err(SeedError::Invalid(format!("missing segment name in '{part}'")));
                }
                segments.push(NameSegment::indexed(name, index));
            } else {
                segments.push(NameSegment::plain(part));
            }
        }
        Self::from_segments(segments)
    }

    /// The name's segments.
    pub fn segments(&self) -> &[NameSegment] {
        &self.segments
    }

    /// Number of segments (1 for independent objects).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// The last segment (the object's own role name).
    pub fn leaf(&self) -> &NameSegment {
        self.segments.last().expect("names always have at least one segment")
    }

    /// The first segment (the independent ancestor's name).
    pub fn root_segment(&self) -> &NameSegment {
        self.segments.first().expect("names always have at least one segment")
    }

    /// The parent object's name, if this is a dependent object's name.
    pub fn parent(&self) -> Option<ObjectName> {
        if self.segments.len() <= 1 {
            None
        } else {
            Some(ObjectName { segments: self.segments[..self.segments.len() - 1].to_vec() })
        }
    }

    /// Builds the name of a dependent object: this name extended by a segment.
    pub fn child(&self, segment: NameSegment) -> ObjectName {
        let mut segments = self.segments.clone();
        segments.push(segment);
        ObjectName { segments }
    }

    /// Whether this name is a (strict or non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &ObjectName) -> bool {
        other.segments.len() >= self.segments.len()
            && other.segments[..self.segments.len()] == self.segments[..]
    }

    /// Renames the root segment (used when an independent object is renamed: all dependent
    /// object names change with it).
    pub fn with_root_renamed(&self, new_root: impl Into<String>) -> ObjectName {
        let mut segments = self.segments.clone();
        segments[0] = NameSegment::plain(new_root);
        ObjectName { segments }
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure1_names() {
        let n = ObjectName::parse("Alarms.Text.Body.Keywords[1]").unwrap();
        assert_eq!(n.depth(), 4);
        assert_eq!(n.to_string(), "Alarms.Text.Body.Keywords[1]");
        assert_eq!(n.leaf(), &NameSegment::indexed("Keywords", 1));
        assert_eq!(n.root_segment(), &NameSegment::plain("Alarms"));
        assert_eq!(n.parent().unwrap().to_string(), "Alarms.Text.Body");
        let root = ObjectName::root("Alarms");
        assert_eq!(root.parent(), None);
        assert!(root.is_prefix_of(&n));
        assert!(!n.is_prefix_of(&root));
    }

    #[test]
    fn child_builds_dependent_names() {
        let alarms = ObjectName::root("Alarms");
        let text = alarms.child(NameSegment::plain("Text"));
        let kw = text.child(NameSegment::plain("Body")).child(NameSegment::indexed("Keywords", 0));
        assert_eq!(kw.to_string(), "Alarms.Text.Body.Keywords[0]");
        assert_eq!(kw.depth(), 4);
    }

    #[test]
    fn rename_root_propagates() {
        let n = ObjectName::parse("Alarms.Text.Selector").unwrap();
        assert_eq!(n.with_root_renamed("AlarmMatrix").to_string(), "AlarmMatrix.Text.Selector");
    }

    #[test]
    fn parse_rejects_malformed_names() {
        for bad in ["", " ", "A..B", "A.[1]", "A.B[", "A.B[x]", "A.B[1", ".A"] {
            assert!(ObjectName::parse(bad).is_err(), "should reject {bad:?}");
        }
        assert!(ObjectName::from_segments(vec![]).is_err());
    }

    #[test]
    fn ordering_groups_hierarchies() {
        let a = ObjectName::parse("Alarms").unwrap();
        let at = ObjectName::parse("Alarms.Text").unwrap();
        let b = ObjectName::parse("Sensor").unwrap();
        assert!(a < at);
        assert!(at < b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_segment() -> impl Strategy<Value = NameSegment> {
        ("[A-Za-z][A-Za-z0-9_]{0,8}", proptest::option::of(0u32..100))
            .prop_map(|(name, index)| NameSegment { name, index })
    }

    proptest! {
        #[test]
        fn display_parse_roundtrip(segments in proptest::collection::vec(arb_segment(), 1..5)) {
            let name = ObjectName::from_segments(segments).unwrap();
            let parsed = ObjectName::parse(&name.to_string()).unwrap();
            prop_assert_eq!(parsed, name);
        }
    }
}
