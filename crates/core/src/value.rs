//! Values carried by objects and relationship attributes.
//!
//! SEED admits *incomplete* data, so every value slot can also be [`Value::Undefined`].  "The
//! semantics of such objects in database operations is simple: when the database is searched for
//! data that meet certain selection criteria, an undefined object matches nothing."

use std::fmt;

use serde::{Deserialize, Serialize};

use seed_schema::Domain;

/// A concrete value (or the absence of one) stored in the database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A UTF-8 string.
    String(String),
    /// A signed integer.
    Integer(i64),
    /// A floating point number.
    Real(f64),
    /// A boolean.
    Boolean(bool),
    /// A calendar date.
    Date {
        /// Year (e.g. 1986).
        year: i32,
        /// Month 1–12.
        month: u8,
        /// Day 1–31.
        day: u8,
    },
    /// A literal of an enumeration domain, e.g. `repeat` of `(abort, repeat)`.
    Symbol(String),
    /// Multi-line text (behaves like [`Value::String`] but signals intent).
    Text(String),
    /// No value yet — the paper's incomplete-information placeholder.
    Undefined,
}

impl Value {
    /// Convenience constructor for string values.
    pub fn string(s: impl Into<String>) -> Self {
        Value::String(s.into())
    }

    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Convenience constructor for symbols (enumeration literals).
    pub fn symbol(s: impl Into<String>) -> Self {
        Value::Symbol(s.into())
    }

    /// Convenience constructor for dates; returns `None` if the date is not plausible.
    pub fn date(year: i32, month: u8, day: u8) -> Option<Self> {
        let days_in_month = match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
                if leap {
                    29
                } else {
                    28
                }
            }
            _ => return None,
        };
        if day == 0 || day > days_in_month {
            return None;
        }
        Some(Value::Date { year, month, day })
    }

    /// Whether this slot holds no value yet.
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    /// Whether this value conforms to the given domain.  [`Value::Undefined`] conforms to every
    /// domain — incompleteness is not an inconsistency.
    pub fn conforms_to(&self, domain: &Domain) -> bool {
        match (self, domain) {
            (Value::Undefined, _) => true,
            (Value::String(_), Domain::String) => true,
            (Value::String(_), Domain::Text) => true,
            (Value::Text(_), Domain::Text) => true,
            (Value::Text(_), Domain::String) => true,
            (Value::Integer(_), Domain::Integer) => true,
            (Value::Real(_), Domain::Real) => true,
            (Value::Integer(_), Domain::Real) => true,
            (Value::Boolean(_), Domain::Boolean) => true,
            (Value::Date { .. }, Domain::Date) => true,
            (Value::Symbol(s), Domain::Enumeration(lits)) => lits.iter().any(|l| l == s),
            (Value::String(s), Domain::Enumeration(lits)) => lits.iter().any(|l| l == s),
            _ => false,
        }
    }

    /// Short name of this value's own type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::String(_) => "STRING",
            Value::Integer(_) => "INTEGER",
            Value::Real(_) => "REAL",
            Value::Boolean(_) => "BOOLEAN",
            Value::Date { .. } => "DATE",
            Value::Symbol(_) => "SYMBOL",
            Value::Text(_) => "TEXT",
            Value::Undefined => "UNDEFINED",
        }
    }

    /// The string content, if this is a string-like value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) | Value::Text(s) | Value::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if any.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Comparison key for "matches nothing" semantics: undefined values are never equal to
    /// anything, including other undefined values (like SQL `NULL`).
    pub fn matches(&self, other: &Value) -> bool {
        if self.is_undefined() || other.is_undefined() {
            return false;
        }
        self == other
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::String(s) | Value::Text(s) => write!(f, "\"{s}\""),
            Value::Symbol(s) => write!(f, "{s}"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Date { year, month, day } => write!(f, "{year:04}-{month:02}-{day:02}"),
            Value::Undefined => write!(f, "<undefined>"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Integer(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Boolean(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_matrix() {
        assert!(Value::string("Alarms").conforms_to(&Domain::String));
        assert!(Value::text("body").conforms_to(&Domain::String));
        assert!(Value::string("body").conforms_to(&Domain::Text));
        assert!(Value::Integer(2).conforms_to(&Domain::Integer));
        assert!(Value::Integer(2).conforms_to(&Domain::Real));
        assert!(!Value::Real(2.5).conforms_to(&Domain::Integer));
        assert!(Value::Boolean(true).conforms_to(&Domain::Boolean));
        assert!(Value::date(1986, 2, 5).unwrap().conforms_to(&Domain::Date));
        assert!(!Value::string("1986").conforms_to(&Domain::Date));
        let d = Domain::Enumeration(vec!["abort".into(), "repeat".into()]);
        assert!(Value::symbol("repeat").conforms_to(&d));
        assert!(Value::string("abort").conforms_to(&d));
        assert!(!Value::symbol("retry").conforms_to(&d));
    }

    #[test]
    fn undefined_conforms_to_everything_but_matches_nothing() {
        for domain in [Domain::String, Domain::Integer, Domain::Date, Domain::Boolean] {
            assert!(Value::Undefined.conforms_to(&domain));
        }
        assert!(!Value::Undefined.matches(&Value::Undefined));
        assert!(!Value::Undefined.matches(&Value::string("x")));
        assert!(!Value::string("x").matches(&Value::Undefined));
        assert!(Value::string("x").matches(&Value::string("x")));
        assert!(!Value::string("x").matches(&Value::string("y")));
    }

    #[test]
    fn date_validation() {
        assert!(Value::date(1986, 2, 29).is_none(), "1986 is not a leap year");
        assert!(Value::date(1988, 2, 29).is_some());
        assert!(Value::date(2000, 2, 29).is_some());
        assert!(Value::date(1900, 2, 29).is_none(), "1900 is not a leap year");
        assert!(Value::date(1986, 4, 31).is_none());
        assert!(Value::date(1986, 13, 1).is_none());
        assert!(Value::date(1986, 6, 0).is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::string("x").to_string(), "\"x\"");
        assert_eq!(Value::Integer(-3).to_string(), "-3");
        assert_eq!(Value::date(1986, 2, 5).unwrap().to_string(), "1986-02-05");
        assert_eq!(Value::Undefined.to_string(), "<undefined>");
        assert_eq!(Value::symbol("repeat").to_string(), "repeat");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("a"), Value::string("a"));
        assert_eq!(Value::from(5i64), Value::Integer(5));
        assert_eq!(Value::from(true), Value::Boolean(true));
        assert_eq!(Value::string("abc").as_str(), Some("abc"));
        assert_eq!(Value::Integer(7).as_integer(), Some(7));
        assert_eq!(Value::Integer(7).as_str(), None);
    }
}
