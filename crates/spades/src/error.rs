//! SPADES tool errors.

use std::fmt;

/// Result alias for tool operations.
pub type SpadesResult<T> = Result<T, SpadesError>;

/// Errors surfaced by the specification tool.
#[derive(Debug)]
pub enum SpadesError {
    /// The underlying SEED database rejected the operation (consistency violation, unknown
    /// element, ...).
    Seed(seed_core::SeedError),
    /// An element with this name already exists.
    Duplicate(String),
    /// The named element does not exist.
    Unknown(String),
    /// The requested refinement is not possible (e.g. refining an action into data).
    InvalidRefinement(String),
}

impl fmt::Display for SpadesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpadesError::Seed(e) => write!(f, "SEED rejected the operation: {e}"),
            SpadesError::Duplicate(name) => write!(f, "element '{name}' already exists"),
            SpadesError::Unknown(name) => write!(f, "no element named '{name}'"),
            SpadesError::InvalidRefinement(msg) => write!(f, "invalid refinement: {msg}"),
        }
    }
}

impl std::error::Error for SpadesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpadesError::Seed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<seed_core::SeedError> for SpadesError {
    fn from(e: seed_core::SeedError) -> Self {
        SpadesError::Seed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: SpadesError = seed_core::SeedError::NotFound("x".into()).into();
        assert!(e.to_string().contains("SEED"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(SpadesError::Duplicate("Alarms".into()).to_string().contains("Alarms"));
        assert!(std::error::Error::source(&SpadesError::Unknown("x".into())).is_none());
    }
}
