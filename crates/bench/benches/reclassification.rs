//! E5 — re-classification: the cost of making vague information precise, swept over the number
//! of relationships attached to the item being re-classified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seed_core::Database;
use seed_schema::figure3_schema;

fn object_reclassification(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_object_reclassification");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    // An object with `rels` attached relationships: each re-classification must re-validate them.
    for rels in [0usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(rels), &rels, |b, &rels| {
            b.iter_with_setup(
                || {
                    let mut db = Database::new(figure3_schema());
                    let data = db.create_object("Data", "Subject").unwrap();
                    for i in 0..rels {
                        let action = db.create_object("Action", &format!("A{i:03}")).unwrap();
                        db.create_relationship("Access", &[("from", data), ("by", action)])
                            .unwrap();
                    }
                    (db, data)
                },
                |(mut db, data)| {
                    db.reclassify_object(data, "OutputData").unwrap();
                    db
                },
            )
        });
    }
    group.finish();
}

fn relationship_reclassification(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_relationship_reclassification");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let (mut db, objects, rels) = seed_bench::vague_database(n);
                    for id in &objects {
                        db.reclassify_object(*id, "OutputData").unwrap();
                    }
                    (db, rels)
                },
                |(mut db, rels)| {
                    for id in &rels {
                        db.reclassify_relationship(*id, "Write").unwrap();
                    }
                    db
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, object_reclassification, relationship_reclassification);
criterion_main!(benches);
