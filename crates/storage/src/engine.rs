//! The storage engine: a durable, transactional key/value store.
//!
//! `seed-core` persists objects, relationships, version deltas and the schema catalog as
//! key/value pairs with hierarchical keys (`obj/<id>`, `rel/<id>`, `ver/<id>/...`).  The engine
//! provides:
//!
//! * durable `put`/`get`/`delete` with write-ahead logging,
//! * transactions (`begin`/`commit`/`abort`) with **group commit**: effects are buffered and
//!   written to the WAL as one contiguous batch with a single sync at commit time, so a crash
//!   before commit leaves no trace and a transaction's durability cost is O(1) syncs,
//! * ordered prefix and range scans through the B+ tree name index,
//! * checkpointing (flush pages, persist the index, truncate the WAL), either explicit or
//!   automatic once the WAL outgrows [`EngineConfig::checkpoint_wal_bytes`],
//! * recovery on open (replay committed WAL records on top of the last checkpoint).
//!
//! Data layout: each key/value pair is one heap-file record `key_len | key | value`.  The index
//! maps key → packed [`RecordId`].  On checkpoint, the index and the list of heap pages are
//! written to a catalog page (page 0 of the page store).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::btree::BPlusTree;
use crate::buffer::BufferPool;
use crate::codec::{Decoder, Encoder};
use crate::error::{StorageError, StorageResult};
use crate::heapfile::{HeapFile, RecordId};
use crate::page::PageId;
use crate::pagestore::{FilePageStore, MemoryPageStore, PageStore};
use crate::wal::{replay_committed, LogRecord, Lsn, WalConfig, WalTail, WriteAheadLog};

/// Configuration for opening a [`StorageEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of pages the buffer pool may keep resident.
    pub buffer_pool_pages: usize,
    /// Whether every commit forces the WAL to disk (`true` = durability on commit).
    pub sync_on_commit: bool,
    /// Checkpoint automatically once the uncheckpointed WAL grows past this many bytes
    /// (`None` = only on explicit [`StorageEngine::checkpoint`] calls).  Bounding the WAL
    /// bounds recovery time: replay work on open is proportional to the log, not to the
    /// database.
    pub checkpoint_wal_bytes: Option<u64>,
    /// Size cap of one WAL segment file: the log rotates to a fresh segment once the active
    /// one reaches this many frame bytes (see [`WalConfig::segment_max_bytes`]).
    pub segment_max_bytes: u64,
    /// Upper bound on WAL bytes retained past a checkpoint for lagging replication
    /// subscribers (see [`WalConfig::retention_budget_bytes`]).
    pub retention_budget_bytes: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let wal = WalConfig::default();
        Self {
            buffer_pool_pages: 256,
            sync_on_commit: true,
            checkpoint_wal_bytes: Some(4 * 1024 * 1024),
            segment_max_bytes: wal.segment_max_bytes,
            retention_budget_bytes: wal.retention_budget_bytes,
        }
    }
}

/// Identifier of an open transaction.
pub type TxnId = u64;

/// Every committed `(key, value)` pair of an engine, in key order — the shape of a full
/// replication snapshot ([`StorageEngine::snapshot_with_lsn`]).
pub type KeySpaceDump = Vec<(Vec<u8>, Vec<u8>)>;

struct EngineInner {
    index: BPlusTree,
    heap: HeapFile,
    /// Pending (uncommitted) effects per transaction: key -> Some(value) for put, None for delete.
    pending: HashMap<TxnId, Vec<crate::wal::KeyEffect>>,
    closed: bool,
}

/// A durable key/value storage engine with WAL-based recovery.
pub struct StorageEngine {
    pool: Arc<BufferPool>,
    wal: WriteAheadLog,
    inner: Mutex<EngineInner>,
    next_txn: AtomicU64,
    config: EngineConfig,
    /// Path of the database directory (None for in-memory engines).
    path: Option<PathBuf>,
}

impl StorageEngine {
    /// Opens an ephemeral in-memory engine.
    pub fn in_memory() -> StorageResult<Self> {
        Self::build(
            Arc::new(MemoryPageStore::new()),
            WriteAheadLog::in_memory(),
            None,
            EngineConfig::default(),
        )
    }

    /// Opens (or creates) a durable engine in directory `dir` using default configuration.
    pub fn open(dir: impl AsRef<Path>) -> StorageResult<Self> {
        Self::open_with(dir, EngineConfig::default())
    }

    /// Opens (or creates) a durable engine in directory `dir`.
    pub fn open_with(dir: impl AsRef<Path>, config: EngineConfig) -> StorageResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let store = Arc::new(FilePageStore::open(dir.join("pages.db"))?);
        let wal = WriteAheadLog::open_dir(
            &dir,
            WalConfig {
                segment_max_bytes: config.segment_max_bytes,
                retention_budget_bytes: config.retention_budget_bytes,
            },
        )?;
        Self::build(store, wal, Some(dir), config)
    }

    fn build(
        store: Arc<dyn PageStore>,
        wal: WriteAheadLog,
        path: Option<PathBuf>,
        config: EngineConfig,
    ) -> StorageResult<Self> {
        let pool = Arc::new(BufferPool::new(store.clone(), config.buffer_pool_pages)?);
        // Page 0 is reserved for the catalog (index checkpoint).  Allocate it on first open.
        if store.num_pages() == 0 {
            let id = pool.allocate_page()?;
            debug_assert_eq!(id, 0);
            pool.flush_all()?;
        }
        let (index, heap) = Self::load_checkpoint(&pool)?;
        let engine = Self {
            pool,
            wal,
            inner: Mutex::new(EngineInner { index, heap, pending: HashMap::new(), closed: false }),
            next_txn: AtomicU64::new(1),
            config,
            path,
        };
        engine.recover()?;
        Ok(engine)
    }

    /// Directory of a durable engine, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The buffer pool (exposed for benchmarks and statistics).
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    // ----- catalog (checkpoint) persistence ---------------------------------------------------

    /// Serializes the index and the heap page list into page 0.  Large catalogs spill into
    /// continuation records on the same chain of catalog pages.
    fn write_checkpoint(&self, inner: &EngineInner) -> StorageResult<()> {
        let mut enc = Encoder::new();
        let pages = inner.heap.pages();
        enc.put_varint(pages.len() as u64);
        for p in &pages {
            enc.put_u64(*p);
        }
        let entries = inner.index.iter_all();
        enc.put_varint(entries.len() as u64);
        for (k, v) in &entries {
            enc.put_bytes(k);
            enc.put_u64(*v);
        }
        let payload = enc.finish();
        // The catalog is stored outside the slotted-page machinery: it is written to a dedicated
        // side file for durable engines, or kept in page 0's record 0 when it fits.
        match &self.path {
            Some(dir) => {
                // Crash-safe replace: the new catalog reaches disk before the rename makes it
                // visible, and the directory sync makes the rename itself durable — a crash at
                // any point leaves either the old or the new catalog, never a torn one.
                let tmp = dir.join("catalog.tmp");
                let fin = dir.join("catalog.db");
                {
                    let mut file = std::fs::File::create(&tmp)?;
                    use std::io::Write as _;
                    file.write_all(&payload)?;
                    file.sync_data()?;
                }
                std::fs::rename(&tmp, &fin)?;
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_data();
                }
            }
            None => {
                // In-memory engines do not need a durable catalog.
            }
        }
        Ok(())
    }

    fn load_checkpoint(pool: &Arc<BufferPool>) -> StorageResult<(BPlusTree, HeapFile)> {
        // For durable engines the catalog lives in `catalog.db` next to the page file.  We find
        // the path through the page store; in-memory stores start empty.
        // (The pool does not expose the path, so durable catalogs are loaded in `recover` via
        //  `reload_catalog`.)
        Ok((BPlusTree::new(), HeapFile::new(pool.clone())))
    }

    fn reload_catalog(&self) -> StorageResult<()> {
        let Some(dir) = &self.path else { return Ok(()) };
        let catalog_path = dir.join("catalog.db");
        if !catalog_path.exists() {
            return Ok(());
        }
        let payload = std::fs::read(&catalog_path)?;
        let mut dec = Decoder::new(&payload);
        let n_pages = dec.get_varint()? as usize;
        let mut pages: Vec<PageId> = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            pages.push(dec.get_u64()?);
        }
        let n_entries = dec.get_varint()? as usize;
        let mut tree = BPlusTree::new();
        for _ in 0..n_entries {
            let k = dec.get_bytes()?.to_vec();
            let v = dec.get_u64()?;
            tree.insert(&k, v);
        }
        let heap = HeapFile::attach(self.pool.clone(), pages)?;
        let mut inner = self.inner.lock();
        inner.index = tree;
        inner.heap = heap;
        Ok(())
    }

    // ----- recovery ----------------------------------------------------------------------------

    /// Replays committed WAL records over the checkpointed state.  Sealed segments are parsed
    /// in parallel across threads; the replay itself (and the active segment's tail) stays
    /// serial, in LSN order.
    fn recover(&self) -> StorageResult<()> {
        let start = std::time::Instant::now();
        self.reload_catalog()?;
        let records = self.wal.read_all_parallel()?;
        if records.is_empty() {
            return Ok(());
        }
        let effects = replay_committed(&records);
        let mut inner = self.inner.lock();
        for (key, value) in effects {
            match value {
                Some(v) => Self::apply_put(&mut inner, &key, &v)?,
                None => Self::apply_delete(&mut inner, &key)?,
            }
        }
        // Track transaction ids so new transactions do not collide with logged ones.
        let max_txn = records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Begin { txn }
                | LogRecord::Commit { txn }
                | LogRecord::Abort { txn }
                | LogRecord::Put { txn, .. }
                | LogRecord::Delete { txn, .. } => Some(*txn),
                LogRecord::Checkpoint { .. } => None,
            })
            .max()
            .unwrap_or(0);
        self.next_txn.store(max_txn + 1, Ordering::SeqCst);
        seed_obs::global().histogram("wal_recovery_replay_us").observe_duration(start.elapsed());
        Ok(())
    }

    // ----- low-level application of effects ----------------------------------------------------

    fn encode_record(key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut e = Encoder::with_capacity(key.len() + value.len() + 8);
        e.put_bytes(key).put_bytes(value);
        e.finish()
    }

    fn apply_put(inner: &mut EngineInner, key: &[u8], value: &[u8]) -> StorageResult<()> {
        let record = Self::encode_record(key, value);
        match inner.index.get(key) {
            Some(packed) => {
                let rid = RecordId::from_u64(packed);
                let new_rid = inner.heap.update(rid, &record)?;
                if new_rid != rid {
                    inner.index.insert(key, new_rid.to_u64());
                }
            }
            None => {
                let rid = inner.heap.insert(&record)?;
                inner.index.insert(key, rid.to_u64());
            }
        }
        Ok(())
    }

    fn apply_delete(inner: &mut EngineInner, key: &[u8]) -> StorageResult<()> {
        if let Some(packed) = inner.index.remove(key) {
            inner.heap.delete(RecordId::from_u64(packed))?;
        }
        Ok(())
    }

    // ----- public non-transactional API (auto-commit) ------------------------------------------

    /// Stores `value` under `key` in its own transaction.
    pub fn put(&self, key: &[u8], value: &[u8]) -> StorageResult<()> {
        let txn = self.begin()?;
        self.txn_put(txn, key, value)?;
        self.commit(txn)
    }

    /// Deletes `key` in its own transaction.
    pub fn delete(&self, key: &[u8]) -> StorageResult<()> {
        let txn = self.begin()?;
        self.txn_delete(txn, key)?;
        self.commit(txn)
    }

    /// Reads a little-endian `u64` cell stored under `key` — the shape of the durable
    /// single-value bookkeeping keys layered on the engine (a replica's applied-LSN cursor,
    /// a node's topology epoch).  Returns `default` when the key is absent or its value is
    /// not exactly eight bytes (a foreign key reused for a cell is treated as unset, not as
    /// corruption — the callers' recovery paths handle "unset" conservatively).
    pub fn get_u64_cell(&self, key: &[u8], default: u64) -> StorageResult<u64> {
        Ok(self
            .get(key)?
            .and_then(|bytes| <[u8; 8]>::try_from(bytes.as_slice()).ok().map(u64::from_le_bytes))
            .unwrap_or(default))
    }

    /// Reads the value stored under `key`.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        let inner = self.inner.lock();
        if inner.closed {
            return Err(StorageError::Closed);
        }
        let Some(packed) = inner.index.get(key) else { return Ok(None) };
        let record = inner.heap.get(RecordId::from_u64(packed))?;
        let mut dec = Decoder::new(&record);
        let stored_key = dec.get_bytes()?;
        if stored_key != key {
            return Err(StorageError::Corrupt(format!(
                "index points at record with different key ({} vs {})",
                String::from_utf8_lossy(stored_key),
                String::from_utf8_lossy(key)
            )));
        }
        Ok(Some(dec.get_bytes()?.to_vec()))
    }

    /// Whether `key` exists.
    pub fn contains(&self, key: &[u8]) -> StorageResult<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Returns all `(key, value)` pairs whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let inner = self.inner.lock();
        if inner.closed {
            return Err(StorageError::Closed);
        }
        Self::resolve_entries(&inner, inner.index.scan_prefix(prefix))
    }

    /// Returns all `(key, value)` pairs with `low <= key < high`, in key order (the ordered
    /// range scan backing keyed database loads).
    pub fn scan_range(&self, low: &[u8], high: &[u8]) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let inner = self.inner.lock();
        if inner.closed {
            return Err(StorageError::Closed);
        }
        Self::resolve_entries(&inner, inner.index.scan_range(low, high))
    }

    fn resolve_entries(
        inner: &EngineInner,
        entries: Vec<(Vec<u8>, u64)>,
    ) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::with_capacity(entries.len());
        for (key, packed) in entries {
            let record = inner.heap.get(RecordId::from_u64(packed))?;
            let mut dec = Decoder::new(&record);
            let _k = dec.get_bytes()?;
            out.push((key, dec.get_bytes()?.to_vec()));
        }
        Ok(out)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// Whether the engine stores no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ----- transactions -------------------------------------------------------------------------

    /// Begins a transaction.  Nothing reaches the WAL until commit: the transaction's effects
    /// are buffered and logged as one contiguous batch (group commit), so a transaction costs a
    /// single backend write and a single sync regardless of how many keys it touches — and an
    /// abort (or crash) before commit leaves no trace in the log at all.
    pub fn begin(&self) -> StorageResult<TxnId> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(StorageError::Closed);
        }
        let txn = self.next_txn.fetch_add(1, Ordering::SeqCst);
        inner.pending.insert(txn, Vec::new());
        Ok(txn)
    }

    /// Buffers a put inside transaction `txn`.
    pub fn txn_put(&self, txn: TxnId, key: &[u8], value: &[u8]) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(StorageError::Closed);
        }
        inner
            .pending
            .get_mut(&txn)
            .ok_or_else(|| StorageError::InvalidArgument(format!("unknown transaction {txn}")))?
            .push((key.to_vec(), Some(value.to_vec())));
        Ok(())
    }

    /// Buffers a delete inside transaction `txn`.
    pub fn txn_delete(&self, txn: TxnId, key: &[u8]) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(StorageError::Closed);
        }
        inner
            .pending
            .get_mut(&txn)
            .ok_or_else(|| StorageError::InvalidArgument(format!("unknown transaction {txn}")))?
            .push((key.to_vec(), None));
        Ok(())
    }

    /// Reads a key as seen by transaction `txn` (its own writes win over the committed state).
    pub fn txn_get(&self, txn: TxnId, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        {
            let inner = self.inner.lock();
            if let Some(effects) = inner.pending.get(&txn) {
                // The latest buffered effect for this key, if any, wins.
                if let Some((_, v)) = effects.iter().rev().find(|(k, _)| k == key) {
                    return Ok(v.clone());
                }
            }
        }
        self.get(key)
    }

    /// Commits transaction `txn`: writes the transaction's `Begin`/effect/`Commit` frames to the
    /// WAL as one batch, forces the WAL once (if configured), and applies the buffered effects
    /// to the heap and index.  When the WAL has grown past the configured threshold, a
    /// checkpoint runs afterwards to bound recovery time.
    pub fn commit(&self, txn: TxnId) -> StorageResult<()> {
        let wal_bytes = {
            let mut inner = self.inner.lock();
            if inner.closed {
                return Err(StorageError::Closed);
            }
            let effects = inner.pending.remove(&txn).ok_or_else(|| {
                StorageError::InvalidArgument(format!("unknown transaction {txn}"))
            })?;
            let mut records = Vec::with_capacity(effects.len() + 2);
            records.push(LogRecord::Begin { txn });
            for (key, value) in &effects {
                records.push(match value {
                    Some(v) => LogRecord::Put { txn, key: key.clone(), value: v.clone() },
                    None => LogRecord::Delete { txn, key: key.clone() },
                });
            }
            records.push(LogRecord::Commit { txn });
            self.wal.append_batch(&records)?;
            if self.config.sync_on_commit {
                self.wal.sync()?;
            }
            for (key, value) in effects {
                match value {
                    Some(v) => Self::apply_put(&mut inner, &key, &v)?,
                    None => Self::apply_delete(&mut inner, &key)?,
                }
            }
            // The auto-checkpoint policy watches the *uncheckpointed* bytes, not the total:
            // segments retained for replication would otherwise re-trigger a checkpoint on
            // every commit.
            self.wal.uncheckpointed_bytes()?
        };
        if let Some(threshold) = self.config.checkpoint_wal_bytes {
            if wal_bytes >= threshold {
                // Best-effort: the transaction is already durable and applied, so a checkpoint
                // failure here (I/O error, concurrent close) must not be reported as a commit
                // failure — it only delays WAL truncation, and the next commit retries.
                let _ = self.checkpoint();
            }
        }
        Ok(())
    }

    /// Aborts transaction `txn`, discarding its buffered effects.  Nothing of the transaction
    /// was logged, so the abort costs no I/O.
    pub fn abort(&self, txn: TxnId) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(StorageError::Closed);
        }
        inner
            .pending
            .remove(&txn)
            .ok_or_else(|| StorageError::InvalidArgument(format!("unknown transaction {txn}")))?;
        Ok(())
    }

    // ----- checkpoint / close -------------------------------------------------------------------

    /// Bytes currently held by the WAL (recovery replay work is proportional to this).
    pub fn wal_size_bytes(&self) -> StorageResult<u64> {
        self.wal.size_bytes()
    }

    /// Health probe for the write path: fsyncs the active WAL segment and reports whether the
    /// log is currently writable at all (a failing disk or a vanished directory surfaces
    /// here).  No-op `Ok` for in-memory logs.
    pub fn wal_probe(&self) -> StorageResult<()> {
        self.wal.sync()
    }

    // ----- replication feed ---------------------------------------------------------------------

    /// The absolute LSN of the last record in the WAL — the position a fully caught-up
    /// replication subscriber has applied.  Checkpoint-stable: truncation advances the log's
    /// base instead of resetting the numbering.
    pub fn durable_lsn(&self) -> Lsn {
        self.wal.durable_lsn()
    }

    /// The WAL tail from `from` (inclusive): the committed log records a replication subscriber
    /// at position `from - 1` still needs, or [`WalTail::Truncated`] when a checkpoint already
    /// truncated them away and the subscriber must resync from
    /// [`StorageEngine::snapshot_with_lsn`].
    pub fn wal_tail(&self, from: Lsn) -> StorageResult<WalTail> {
        self.wal.read_from(from)
    }

    /// Sets the oldest LSN a replication subscriber still needs (`None` = no subscribers).
    /// Checkpoints keep the sealed WAL segments covering it — within
    /// [`EngineConfig::retention_budget_bytes`] — so a lagging subscriber catches up from the
    /// log instead of a full snapshot.
    pub fn set_replication_retention(&self, floor: Option<Lsn>) {
        self.wal.set_retention_floor(floor);
    }

    /// Number of live WAL segment files (exposed for tests and benchmarks).
    pub fn wal_segment_count(&self) -> usize {
        self.wal.segment_count()
    }

    /// Every committed `(key, value)` pair plus the LSN the snapshot corresponds to, read
    /// atomically (commits hold the same lock while they append to the WAL and apply their
    /// effects, so the pairs and the LSN cannot tear).  This is the full-resync path for
    /// replication subscribers whose cursor fell behind a checkpoint.
    pub fn snapshot_with_lsn(&self) -> StorageResult<(KeySpaceDump, Lsn)> {
        let inner = self.inner.lock();
        if inner.closed {
            return Err(StorageError::Closed);
        }
        let pairs = Self::resolve_entries(&inner, inner.index.scan_prefix(b""))?;
        Ok((pairs, self.wal.durable_lsn()))
    }

    /// Flushes dirty pages, persists the catalog and truncates the WAL.
    pub fn checkpoint(&self) -> StorageResult<()> {
        let start = std::time::Instant::now();
        let inner = self.inner.lock();
        if inner.closed {
            return Err(StorageError::Closed);
        }
        self.pool.flush_all()?;
        self.write_checkpoint(&inner)?;
        self.wal.append(&LogRecord::Checkpoint { up_to: self.wal.next_lsn() })?;
        self.wal.sync()?;
        self.wal.truncate()?;
        let registry = seed_obs::global();
        registry.counter("wal_checkpoints_total").inc();
        registry.histogram("wal_checkpoint_us").observe_duration(start.elapsed());
        Ok(())
    }

    /// Checkpoints and marks the engine closed; further operations fail with
    /// [`StorageError::Closed`].
    pub fn close(&self) -> StorageResult<()> {
        self.checkpoint()?;
        self.inner.lock().closed = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("seed-engine-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_put_get_delete() {
        let engine = StorageEngine::in_memory().unwrap();
        assert!(engine.is_empty());
        engine.put(b"obj/Alarms", b"data object").unwrap();
        engine.put(b"obj/AlarmHandler", b"action object").unwrap();
        assert_eq!(engine.get(b"obj/Alarms").unwrap().unwrap(), b"data object");
        assert_eq!(engine.len(), 2);
        engine.delete(b"obj/Alarms").unwrap();
        assert_eq!(engine.get(b"obj/Alarms").unwrap(), None);
        assert!(!engine.contains(b"obj/Alarms").unwrap());
        assert!(engine.contains(b"obj/AlarmHandler").unwrap());
    }

    #[test]
    fn u64_cell_reads_defaults_and_round_trips() {
        let engine = StorageEngine::in_memory().unwrap();
        assert_eq!(engine.get_u64_cell(b"repl/applied", 0).unwrap(), 0, "absent reads default");
        engine.put(b"repl/applied", &42u64.to_le_bytes()).unwrap();
        assert_eq!(engine.get_u64_cell(b"repl/applied", 0).unwrap(), 42);
        engine.put(b"repl/applied", b"not eight bytes").unwrap();
        assert_eq!(engine.get_u64_cell(b"repl/applied", 7).unwrap(), 7, "bad shape reads default");
    }

    #[test]
    fn overwrite_updates_value() {
        let engine = StorageEngine::in_memory().unwrap();
        engine.put(b"k", b"v1").unwrap();
        engine.put(b"k", b"a much longer value than before so the record grows").unwrap();
        assert_eq!(
            engine.get(b"k").unwrap().unwrap(),
            b"a much longer value than before so the record grows"
        );
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn prefix_scan_orders_keys() {
        let engine = StorageEngine::in_memory().unwrap();
        engine.put(b"rel/2", b"two").unwrap();
        engine.put(b"obj/1", b"one").unwrap();
        engine.put(b"obj/3", b"three").unwrap();
        engine.put(b"obj/2", b"two").unwrap();
        let objs = engine.scan_prefix(b"obj/").unwrap();
        assert_eq!(objs.len(), 3);
        assert_eq!(objs[0].0, b"obj/1".to_vec());
        assert_eq!(objs[2].0, b"obj/3".to_vec());
    }

    #[test]
    fn transaction_isolation_until_commit() {
        let engine = StorageEngine::in_memory().unwrap();
        let txn = engine.begin().unwrap();
        engine.txn_put(txn, b"k", b"pending").unwrap();
        // Not visible to plain reads before commit.
        assert_eq!(engine.get(b"k").unwrap(), None);
        // Visible to the transaction itself.
        assert_eq!(engine.txn_get(txn, b"k").unwrap().unwrap(), b"pending");
        engine.commit(txn).unwrap();
        assert_eq!(engine.get(b"k").unwrap().unwrap(), b"pending");
    }

    #[test]
    fn abort_discards_effects() {
        let engine = StorageEngine::in_memory().unwrap();
        engine.put(b"stable", b"1").unwrap();
        let txn = engine.begin().unwrap();
        engine.txn_put(txn, b"volatile", b"x").unwrap();
        engine.txn_delete(txn, b"stable").unwrap();
        engine.abort(txn).unwrap();
        assert_eq!(engine.get(b"volatile").unwrap(), None);
        assert_eq!(engine.get(b"stable").unwrap().unwrap(), b"1");
        // The aborted transaction can no longer be used.
        assert!(engine.txn_put(txn, b"volatile", b"y").is_err());
    }

    #[test]
    fn durable_engine_recovers_after_reopen() {
        let dir = temp_dir("recover");
        {
            let engine = StorageEngine::open(&dir).unwrap();
            engine.put(b"obj/Alarms", b"alarm data").unwrap();
            engine.put(b"obj/Sensor", b"sensor action").unwrap();
            engine.delete(b"obj/Sensor").unwrap();
            // No checkpoint: recovery must come from the WAL alone.
        }
        {
            let engine = StorageEngine::open(&dir).unwrap();
            assert_eq!(engine.get(b"obj/Alarms").unwrap().unwrap(), b"alarm data");
            assert_eq!(engine.get(b"obj/Sensor").unwrap(), None);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_engine_recovers_from_checkpoint_plus_wal() {
        let dir = temp_dir("checkpoint");
        {
            let engine = StorageEngine::open(&dir).unwrap();
            for i in 0..100u32 {
                engine
                    .put(format!("key/{i:03}").as_bytes(), format!("value {i}").as_bytes())
                    .unwrap();
            }
            engine.checkpoint().unwrap();
            // Post-checkpoint mutations only in the WAL.
            engine.put(b"key/100", b"after checkpoint").unwrap();
            engine.delete(b"key/000").unwrap();
        }
        {
            let engine = StorageEngine::open(&dir).unwrap();
            assert_eq!(engine.get(b"key/001").unwrap().unwrap(), b"value 1");
            assert_eq!(engine.get(b"key/100").unwrap().unwrap(), b"after checkpoint");
            assert_eq!(engine.get(b"key/000").unwrap(), None);
            assert_eq!(engine.len(), 100);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_transaction_is_not_recovered() {
        let dir = temp_dir("uncommitted");
        {
            let engine = StorageEngine::open(&dir).unwrap();
            engine.put(b"committed", b"yes").unwrap();
            let txn = engine.begin().unwrap();
            engine.txn_put(txn, b"uncommitted", b"no").unwrap();
            // Simulated crash: engine dropped without commit.
        }
        {
            let engine = StorageEngine::open(&dir).unwrap();
            assert_eq!(engine.get(b"committed").unwrap().unwrap(), b"yes");
            assert_eq!(engine.get(b"uncommitted").unwrap(), None);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn closed_engine_rejects_operations() {
        let engine = StorageEngine::in_memory().unwrap();
        engine.put(b"a", b"1").unwrap();
        engine.close().unwrap();
        assert!(matches!(engine.put(b"b", b"2"), Err(StorageError::Closed)));
        assert!(matches!(engine.get(b"a"), Err(StorageError::Closed)));
        assert!(matches!(engine.begin(), Err(StorageError::Closed)));
    }

    #[test]
    fn unknown_transaction_rejected() {
        let engine = StorageEngine::in_memory().unwrap();
        assert!(engine.commit(999).is_err());
        assert!(engine.abort(999).is_err());
        assert!(engine.txn_put(999, b"k", b"v").is_err());
    }

    #[test]
    fn scan_range_returns_half_open_interval() {
        let engine = StorageEngine::in_memory().unwrap();
        for key in ["o/1", "o/2", "o/3", "r/1", "v/1"] {
            engine.put(key.as_bytes(), key.as_bytes()).unwrap();
        }
        let hits = engine.scan_range(b"o/", b"o/\xff").unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].0, b"o/1".to_vec());
        assert_eq!(hits[2].0, b"o/3".to_vec());
        let hits = engine.scan_range(b"o/2", b"r/2").unwrap();
        assert_eq!(
            hits.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![b"o/2".to_vec(), b"o/3".to_vec(), b"r/1".to_vec()]
        );
        assert!(engine.scan_range(b"z", b"zz").unwrap().is_empty());
    }

    #[test]
    fn wal_growth_triggers_automatic_checkpoint() {
        let dir = temp_dir("auto-checkpoint");
        {
            let config =
                EngineConfig { checkpoint_wal_bytes: Some(512), ..EngineConfig::default() };
            let engine = StorageEngine::open_with(&dir, config).unwrap();
            for i in 0..32u32 {
                engine.put(format!("k/{i:03}").as_bytes(), &[0xAB; 64]).unwrap();
            }
            // Each put is ~90 bytes of WAL, so the 512-byte threshold has fired several times.
            assert!(
                engine.wal_size_bytes().unwrap() < 512,
                "WAL stays bounded by the checkpoint policy"
            );
            // No explicit checkpoint/close: recovery must come from catalog + short WAL.
        }
        {
            let engine = StorageEngine::open(&dir).unwrap();
            assert_eq!(engine.len(), 32);
            assert_eq!(engine.get(b"k/031").unwrap().unwrap(), vec![0xAB; 64]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_transactions_write_no_wal_frames() {
        let engine = StorageEngine::in_memory().unwrap();
        let txn = engine.begin().unwrap();
        engine.txn_put(txn, b"k", b"v").unwrap();
        engine.abort(txn).unwrap();
        assert_eq!(engine.wal_size_bytes().unwrap(), 0, "abort leaves no trace in the log");
        let txn = engine.begin().unwrap();
        engine.txn_put(txn, b"k", b"v").unwrap();
        assert_eq!(engine.wal_size_bytes().unwrap(), 0, "effects are buffered until commit");
        engine.commit(txn).unwrap();
        assert!(engine.wal_size_bytes().unwrap() > 0);
    }

    #[test]
    fn segmented_wal_rotates_and_recovers_across_reopen() {
        let dir = temp_dir("segmented");
        {
            let config = EngineConfig {
                segment_max_bytes: 256,
                checkpoint_wal_bytes: None,
                ..EngineConfig::default()
            };
            let engine = StorageEngine::open_with(&dir, config).unwrap();
            for i in 0..40u32 {
                engine.put(format!("k/{i:03}").as_bytes(), &[0xCD; 48]).unwrap();
            }
            assert!(engine.wal_segment_count() > 1, "commits rotated into multiple segments");
            // No checkpoint/close: recovery replays all segments (in parallel) on reopen.
        }
        {
            let engine = StorageEngine::open(&dir).unwrap();
            assert_eq!(engine.len(), 40);
            assert_eq!(engine.get(b"k/039").unwrap().unwrap(), vec![0xCD; 48]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_the_wal_tail_for_subscribers_across_a_checkpoint() {
        let engine = StorageEngine::in_memory().unwrap();
        for i in 0..20u32 {
            engine.put(format!("k/{i:02}").as_bytes(), b"v").unwrap();
        }
        let cursor = engine.durable_lsn() - 10; // a lagging subscriber's next LSN
        engine.set_replication_retention(Some(cursor));
        engine.checkpoint().unwrap();
        match engine.wal_tail(cursor).unwrap() {
            WalTail::Records(recs) => {
                assert_eq!(recs.first().map(|(l, _)| *l), Some(cursor));
            }
            other => panic!("retained tail expected, got {other:?}"),
        }
        // Without subscribers the next checkpoint prunes the retained segments.
        engine.set_replication_retention(None);
        engine.checkpoint().unwrap();
        assert!(matches!(engine.wal_tail(cursor).unwrap(), WalTail::Truncated { .. }));
        assert_eq!(engine.wal_size_bytes().unwrap(), 0);
    }

    #[test]
    fn many_keys_round_trip_through_checkpoint() {
        let dir = temp_dir("many");
        {
            let engine = StorageEngine::open(&dir).unwrap();
            for i in 0..2000u32 {
                engine
                    .put(format!("obj/{i:05}").as_bytes(), vec![(i % 251) as u8; 64].as_slice())
                    .unwrap();
            }
            engine.checkpoint().unwrap();
        }
        {
            let engine = StorageEngine::open(&dir).unwrap();
            assert_eq!(engine.len(), 2000);
            assert_eq!(engine.get(b"obj/01999").unwrap().unwrap(), vec![(1999 % 251) as u8; 64]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn engine_matches_btreemap_model(
            ops in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..16),
                 proptest::collection::vec(any::<u8>(), 0..64),
                 any::<bool>()),
                1..120,
            )
        ) {
            let engine = StorageEngine::in_memory().unwrap();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for (key, value, is_delete) in ops {
                if is_delete {
                    engine.delete(&key).unwrap();
                    model.remove(&key);
                } else {
                    engine.put(&key, &value).unwrap();
                    model.insert(key.clone(), value);
                }
            }
            prop_assert_eq!(engine.len(), model.len());
            for (k, v) in &model {
                prop_assert_eq!(engine.get(k).unwrap().unwrap(), v.clone());
            }
            let scanned = engine.scan_prefix(b"").unwrap();
            let expected: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
            prop_assert_eq!(scanned, expected);
        }
    }
}
