//! # seed-net
//!
//! The network frontend of the SEED reproduction — what turns the in-process two-level scheme
//! of `seed-server` into an actual client/server DBMS:
//!
//! * [`wire`] — a versioned, length-prefixed binary frame format with per-frame CRC-32
//!   checksums and a handshake that negotiates the protocol version;
//! * [`codec`] — the binary encoding of the existing [`seed_server::Request`] /
//!   [`seed_server::Response`] protocol (reusing `seed-core`'s record codecs, so records have
//!   one binary shape on disk and on the wire);
//! * [`server`] — [`SeedNetServer`], a readiness-polled event-loop TCP server over a shared
//!   [`seed_server::SeedServer`]: one reactor thread owns every socket and a sharded worker
//!   pool executes requests, so a connection may *pipeline* many request frames and read the
//!   responses back in request order.  Sessions are identity-bound (a connection can only act
//!   for the client id assigned at handshake) and a client's write locks are released on
//!   disconnect or after an idle timeout — the paper's crash-recovery rule for checked-out
//!   data;
//! * [`client`] — [`RemoteClient`], a blocking client exposing the same checkout / check-in /
//!   query surface as the in-process API, so applications (the SPADES tool, the examples) run
//!   unmodified over loopback — plus [`Pipeline`] for batched submission over one connection,
//!   and [`ReadPreferredClient`], which fans reads out across replicas and sends writes to the
//!   primary;
//! * [`replication`] — [`ReplicaNode`], a read-only replica: it subscribes to a primary's WAL
//!   stream (protocol v2 `Subscribe` / `LogBatch` / `Ack` frames), applies batches into its own
//!   durable [`seed_core::ReplicaStore`] and serves the full read surface on its own listener.
//!   `docs/PROTOCOL.md` pins the wire contract; `docs/OPERATIONS.md` is the runbook.
//!
//! ```no_run
//! use seed_core::Database;
//! use seed_net::{RemoteClient, SeedNetServer};
//! use seed_schema::figure3_schema;
//! use seed_server::SeedServer;
//!
//! let server = SeedNetServer::bind(
//!     SeedServer::new(Database::new(figure3_schema())),
//!     "127.0.0.1:0",
//! )
//! .unwrap();
//! let mut client = RemoteClient::connect(server.local_addr()).unwrap();
//! client.checkin(vec![seed_server::Update::CreateObject {
//!     class: "Data".into(),
//!     name: "Alarms".into(),
//! }])
//! .unwrap();
//! assert_eq!(client.retrieve("Alarms").unwrap().name.to_string(), "Alarms");
//! server.shutdown();
//! ```

pub mod client;
pub mod codec;
pub mod error;
pub mod replication;
pub mod server;
pub mod wire;

pub use client::{Pipeline, ReadPreferredClient, RemoteClient};
pub use error::{WireError, WireResult};
pub use replication::{ReplicaConfig, ReplicaNode};
pub use server::{NetServerConfig, SeedNetServer};
pub use wire::{
    Ack, FrameDecoder, FrameKind, HandshakeRole, Hello, LogBatch, Subscribe, Welcome,
    MAX_FRAME_LEN, PROTOCOL_VERSION, PROTOCOL_VERSION_MIN,
};

#[cfg(test)]
mod proptests;
