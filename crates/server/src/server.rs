//! The central server: one database, many clients, write locks, single-transaction check-in.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use seed_core::{Database, ObjectId, ObjectRecord, SeedError, Value, VersionId};

use crate::error::{ServerError, ServerResult};
use crate::lock::LockTable;
use crate::protocol::{
    CheckoutSet, ClientId, PersistenceStatus, QueryAnswer, Request, Response, Update,
};

/// The central SEED server of the two-level multi-user scheme.
pub struct SeedServer {
    db: Mutex<Database>,
    locks: Mutex<LockTable>,
    /// Names each client has checked out (lock bookkeeping by name, since clients address
    /// objects by name).
    checkouts: Mutex<HashMap<ClientId, Vec<String>>>,
    next_client: AtomicU64,
}

impl SeedServer {
    /// Creates a server around an existing database.
    pub fn new(db: Database) -> Self {
        Self {
            db: Mutex::new(db),
            locks: Mutex::new(LockTable::new()),
            checkouts: Mutex::new(HashMap::new()),
            next_client: AtomicU64::new(1),
        }
    }

    /// Opens a server over a **durable** database in `dir` (running restart recovery if the
    /// previous process crashed).  Every check-in commits as exactly one storage transaction:
    /// the per-item records staged by the batch's updates become durable with a single WAL
    /// sync, or not at all.
    pub fn open_durable(dir: impl AsRef<std::path::Path>) -> ServerResult<Self> {
        let db = Database::open_durable(dir).map_err(ServerError::Rejected)?;
        Ok(Self::new(db))
    }

    /// Creates a server over a fresh durable database in `dir`.
    pub fn create_durable(
        dir: impl AsRef<std::path::Path>,
        schema: seed_schema::Schema,
    ) -> ServerResult<Self> {
        let db = Database::create_durable(dir, schema).map_err(ServerError::Rejected)?;
        Ok(Self::new(db))
    }

    /// The durability state of the central database.  After [`SeedServer::open_durable`], the
    /// counts report what restart recovery reconstructed — this is how recovery is observable
    /// over the protocol ([`Request::Persistence`]).
    pub fn persistence_status(&self) -> PersistenceStatus {
        let db = self.db.lock();
        let status = db.durability_status();
        PersistenceStatus {
            durable: status.is_some(),
            path: status.as_ref().map(|s| s.path.display().to_string()),
            wal_bytes: status.as_ref().map(|s| s.wal_bytes).unwrap_or(0),
            objects: db.object_count(),
            relationships: db.relationship_count(),
            versions: db.versions().len(),
        }
    }

    /// Checkpoints the durable storage (errors when the database is in-memory).
    pub fn checkpoint(&self) -> ServerResult<()> {
        self.db.lock().checkpoint().map_err(ServerError::Rejected)
    }

    /// Registers a client and returns its id.
    pub fn connect(&self) -> ClientId {
        self.next_client.fetch_add(1, Ordering::SeqCst)
    }

    /// Runs a read-only closure against the central database (retrieval goes straight to the
    /// server in the paper's sketch).
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db.lock())
    }

    /// Retrieves a copy of an object by name.
    pub fn retrieve(&self, name: &str) -> ServerResult<ObjectRecord> {
        self.db
            .lock()
            .object_by_name(name)
            .map_err(|_| ServerError::Unknown(format!("object '{name}'")))
    }

    /// Number of write locks currently held.
    pub fn locked_count(&self) -> usize {
        self.locks.lock().len()
    }

    /// Evaluates a retrieval-language query (`find` / `count`, or `explain` for the physical
    /// plan) on the central database.  Queries take no locks: retrieval is served directly by
    /// the server, and the planner's indexed access paths keep it cheap under load.
    pub fn query(&self, text: &str) -> ServerResult<QueryAnswer> {
        let db = self.db.lock();
        let outcome = seed_query::run(&db, text).map_err(|e| ServerError::Query(e.to_string()))?;
        Ok(QueryAnswer {
            names: outcome.names(),
            count: outcome.count(),
            plan: outcome.plan().map(str::to_string),
        })
    }

    /// Convenience: the rendered physical plan for a query (prepends `explain` when absent).
    pub fn explain(&self, text: &str) -> ServerResult<String> {
        let text = text.trim();
        let explained =
            if text.starts_with("explain") { text.to_string() } else { format!("explain {text}") };
        self.query(&explained)?.plan.ok_or_else(|| {
            ServerError::Query("explain produced no plan (not a find/count query?)".to_string())
        })
    }

    /// Checks out the named objects for `client`: takes write locks on them (and their dependent
    /// objects) and returns copies of the objects plus the relationships among them.
    pub fn checkout(&self, client: ClientId, names: &[&str]) -> ServerResult<CheckoutSet> {
        let db = self.db.lock();
        let mut locks = self.locks.lock();

        // Resolve every requested root and its dependents first, so a conflict acquires nothing.
        let mut object_ids: Vec<(String, ObjectId)> = Vec::new();
        let mut records: Vec<ObjectRecord> = Vec::new();
        for name in names {
            let root = db
                .object_by_name(name)
                .map_err(|_| ServerError::Unknown(format!("object '{name}'")))?;
            let mut frontier = vec![root.clone()];
            while let Some(record) = frontier.pop() {
                object_ids.push((record.name.to_string(), record.id));
                for child in db.children(record.id) {
                    if child.inherited_from.is_none() {
                        frontier.push(child.record.clone());
                    }
                }
                records.push(record);
            }
        }
        // Conflict check before acquisition.
        for (name, id) in &object_ids {
            if let Some(holder) = locks.holder(*id) {
                if holder != client {
                    return Err(ServerError::Locked { object: name.clone(), holder });
                }
            }
        }
        for (_, id) in &object_ids {
            locks.acquire(*id, client).expect("conflicts were ruled out above");
        }
        self.checkouts
            .lock()
            .entry(client)
            .or_default()
            .extend(object_ids.iter().map(|(n, _)| n.clone()));

        // Relationships among the checked-out objects.
        let id_set: Vec<ObjectId> = object_ids.iter().map(|(_, id)| *id).collect();
        let mut relationships = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for id in &id_set {
            for rel in db.relationships(*id) {
                if rel.inherited_from.is_none() && seen.insert(rel.record.id) {
                    relationships.push(rel.record.clone());
                }
            }
        }
        Ok(CheckoutSet { objects: records, relationships })
    }

    /// Applies a client's updates as **one** transaction on the central database, then releases
    /// the client's locks.  If any update fails (consistency violation, lock discipline breach),
    /// nothing is applied and the locks are kept so the client can fix and retry.
    pub fn checkin(&self, client: ClientId, updates: &[Update]) -> ServerResult<()> {
        let mut db = self.db.lock();
        let locks = self.locks.lock();

        // Lock discipline: every touched existing object must be checked out by this client.
        for update in updates {
            for name in update.touched_objects() {
                if let Ok(obj) = db.object_by_name(name) {
                    if !locks.holds(obj.id, client) {
                        return Err(ServerError::NotCheckedOut(name.to_string()));
                    }
                }
            }
        }
        drop(locks);

        db.begin_transaction().map_err(ServerError::Rejected)?;
        let result = Self::apply_updates(&mut db, updates);
        match result {
            Ok(()) => {
                db.commit_transaction().map_err(ServerError::Rejected)?;
                drop(db);
                self.release(client);
                Ok(())
            }
            Err(e) => {
                db.rollback_transaction().map_err(ServerError::Rejected)?;
                Err(ServerError::Rejected(e))
            }
        }
    }

    fn apply_updates(db: &mut Database, updates: &[Update]) -> Result<(), SeedError> {
        for update in updates {
            match update {
                Update::CreateObject { class, name } => {
                    db.create_object(class, name)?;
                }
                Update::CreateDependent { parent, class_local, value } => {
                    let parent_id = db.object_by_name(parent)?.id;
                    db.create_dependent(parent_id, class_local, value.clone())?;
                }
                Update::SetValue { object, value } => {
                    let id = db.object_by_name(object)?.id;
                    db.set_value(id, value.clone())?;
                }
                Update::Reclassify { object, new_class } => {
                    let id = db.object_by_name(object)?.id;
                    db.reclassify_object(id, new_class)?;
                }
                Update::CreateRelationship { association, bindings } => {
                    let mut resolved: Vec<(&str, seed_core::ObjectId)> = Vec::new();
                    for (role, name) in bindings {
                        resolved.push((role.as_str(), db.object_by_name(name)?.id));
                    }
                    db.create_relationship(association, &resolved)?;
                }
                Update::DeleteObject { object } => {
                    let id = db.object_by_name(object)?.id;
                    db.delete_object(id)?;
                }
            }
        }
        Ok(())
    }

    /// Releases every lock held by `client` (explicit release or after a successful check-in).
    pub fn release(&self, client: ClientId) -> usize {
        self.checkouts.lock().remove(&client);
        self.locks.lock().release_all(client)
    }

    /// Creates a global version snapshot on the central database.
    pub fn create_version(&self, comment: &str) -> ServerResult<VersionId> {
        self.db.lock().create_version(comment).map_err(ServerError::Rejected)
    }

    /// Spawns a server thread servicing requests over a channel; returns a cloneable handle.
    pub fn spawn(self) -> (ServerHandle, JoinHandle<SeedServer>) {
        let server = Arc::new(self);
        let (tx, rx) = unbounded::<(Request, Sender<Response>)>();
        let thread_server = server.clone();
        let join = std::thread::spawn(move || {
            while let Ok((request, reply)) = rx.recv() {
                let response = match request {
                    Request::Connect => Response::Connected(thread_server.connect()),
                    Request::Checkout { client, objects } => {
                        let names: Vec<&str> = objects.iter().map(|s| s.as_str()).collect();
                        Response::Checkout(thread_server.checkout(client, &names))
                    }
                    Request::Checkin { client, updates } => {
                        Response::Ack(thread_server.checkin(client, &updates))
                    }
                    Request::Release { client } => {
                        thread_server.release(client);
                        Response::Ack(Ok(()))
                    }
                    Request::Retrieve { name } => Response::Object(thread_server.retrieve(&name)),
                    Request::Query { text } => Response::Answer(thread_server.query(&text)),
                    Request::CreateVersion { comment } => {
                        Response::Version(thread_server.create_version(&comment))
                    }
                    Request::Persistence => {
                        Response::Persistence(thread_server.persistence_status())
                    }
                    Request::Checkpoint => Response::Ack(thread_server.checkpoint()),
                    Request::Shutdown => {
                        let _ = reply.send(Response::ShuttingDown);
                        break;
                    }
                };
                let _ = reply.send(response);
            }
            // Hand the server back to the caller when the thread finishes.
            Arc::try_unwrap(thread_server).unwrap_or_else(|arc| {
                // A handle still exists; clone the database out so callers can inspect it.
                SeedServer::new(arc.with_database(|db| {
                    // Databases are not `Clone`; rebuild from persistence parts is overkill here,
                    // so return an empty database over the same schema.
                    Database::new(db.schema().clone())
                }))
            })
        });
        (ServerHandle { tx: Some(tx) }, join)
    }
}

/// A handle to a spawned server thread.
#[derive(Clone)]
pub struct ServerHandle {
    tx: Option<Sender<(Request, Sender<Response>)>>,
}

impl ServerHandle {
    /// Sends a request and waits for the response.
    pub fn call(&self, request: Request) -> ServerResult<Response> {
        let tx = self.tx.as_ref().ok_or(ServerError::Disconnected)?;
        let (reply_tx, reply_rx) = unbounded();
        tx.send((request, reply_tx)).map_err(|_| ServerError::Disconnected)?;
        reply_rx.recv().map_err(|_| ServerError::Disconnected)
    }

    /// Convenience: registers a client.
    pub fn connect(&self) -> ServerResult<ClientId> {
        match self.call(Request::Connect)? {
            Response::Connected(id) => Ok(id),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: asks the server thread to stop.
    pub fn shutdown(&self) -> ServerResult<()> {
        match self.call(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: retrieves an object by name.
    pub fn retrieve(&self, name: &str) -> ServerResult<ObjectRecord> {
        match self.call(Request::Retrieve { name: name.to_string() })? {
            Response::Object(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: evaluates a query (or an `explain`) on the central database.
    pub fn query(&self, text: &str) -> ServerResult<QueryAnswer> {
        match self.call(Request::Query { text: text.to_string() })? {
            Response::Answer(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: the durability state of the central database.
    pub fn persistence(&self) -> ServerResult<PersistenceStatus> {
        match self.call(Request::Persistence)? {
            Response::Persistence(status) => Ok(status),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: sets a value through a one-shot checkout/check-in cycle.
    pub fn quick_set_value(
        &self,
        client: ClientId,
        object: &str,
        value: Value,
    ) -> ServerResult<()> {
        match self.call(Request::Checkout { client, objects: vec![object.to_string()] })? {
            Response::Checkout(Ok(_)) => {}
            Response::Checkout(Err(e)) => return Err(e),
            _ => return Err(ServerError::Disconnected),
        }
        match self.call(Request::Checkin {
            client,
            updates: vec![Update::SetValue { object: object.to_string(), value }],
        })? {
            Response::Ack(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_schema::figure3_schema;

    fn server_with_data() -> SeedServer {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        db.create_dependent(handler, "Description", Value::string("Handles alarms")).unwrap();
        SeedServer::new(db)
    }

    #[test]
    fn checkout_copies_objects_and_takes_locks() {
        let server = server_with_data();
        let c1 = server.connect();
        let c2 = server.connect();
        assert_ne!(c1, c2);

        let set = server.checkout(c1, &["AlarmHandler"]).unwrap();
        assert_eq!(set.len(), 2, "root + Description dependent");
        assert!(set.object_names().contains(&"AlarmHandler.Description".to_string()));
        assert!(server.locked_count() >= 2);

        // A second client cannot check the same object out...
        let err = server.checkout(c2, &["AlarmHandler"]).unwrap_err();
        assert!(matches!(err, ServerError::Locked { .. }));
        // ...but can check out something else, and can still retrieve (read) anything.
        assert!(server.checkout(c2, &["Alarms"]).is_ok());
        assert!(server.retrieve("AlarmHandler").is_ok());
        assert!(server.retrieve("Ghost").is_err());
    }

    #[test]
    fn checkin_applies_updates_in_one_transaction() {
        let server = server_with_data();
        let c1 = server.connect();
        server.checkout(c1, &["AlarmHandler"]).unwrap();
        server
            .checkin(
                c1,
                &[
                    Update::SetValue {
                        object: "AlarmHandler.Description".into(),
                        value: Value::string("Generates alarms from process data"),
                    },
                    Update::CreateObject { class: "Data".into(), name: "OperatorAlert".into() },
                ],
            )
            .unwrap();
        assert_eq!(
            server.retrieve("AlarmHandler.Description").unwrap().value,
            Value::string("Generates alarms from process data")
        );
        assert!(server.retrieve("OperatorAlert").is_ok());
        // Locks are released after a successful check-in.
        assert_eq!(server.locked_count(), 0);
    }

    #[test]
    fn failed_checkin_applies_nothing_and_keeps_locks() {
        let server = server_with_data();
        let c1 = server.connect();
        server.checkout(c1, &["AlarmHandler"]).unwrap();
        let held = server.locked_count();
        let err = server
            .checkin(
                c1,
                &[
                    Update::CreateObject { class: "Data".into(), name: "NewData".into() },
                    // Fails: Description has a STRING domain, an integer is rejected.
                    Update::SetValue {
                        object: "AlarmHandler.Description".into(),
                        value: Value::Integer(42),
                    },
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::Rejected(_)));
        // The single transaction means the first update is rolled back too.
        assert!(server.retrieve("NewData").is_err());
        assert_eq!(server.locked_count(), held, "locks kept for retry");
        // Fixing the batch succeeds.
        server
            .checkin(
                c1,
                &[Update::SetValue {
                    object: "AlarmHandler.Description".into(),
                    value: Value::string("fixed"),
                }],
            )
            .unwrap();
    }

    #[test]
    fn checkin_requires_prior_checkout() {
        let server = server_with_data();
        let c1 = server.connect();
        let err = server
            .checkin(
                c1,
                &[Update::SetValue {
                    object: "AlarmHandler.Description".into(),
                    value: Value::string("x"),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::NotCheckedOut(_)));
        // Creating brand-new objects needs no lock.
        server
            .checkin(c1, &[Update::CreateObject { class: "Data".into(), name: "Fresh".into() }])
            .unwrap();
    }

    #[test]
    fn release_frees_locks_without_changes() {
        let server = server_with_data();
        let c1 = server.connect();
        let c2 = server.connect();
        server.checkout(c1, &["Alarms"]).unwrap();
        assert!(server.checkout(c2, &["Alarms"]).is_err());
        assert!(server.release(c1) > 0);
        assert!(server.checkout(c2, &["Alarms"]).is_ok());
    }

    #[test]
    fn server_creates_global_versions() {
        let server = server_with_data();
        let v = server.create_version("global snapshot").unwrap();
        assert_eq!(v.to_string(), "1.0");
        let c1 = server.connect();
        server.checkout(c1, &["Alarms"]).unwrap();
        server
            .checkin(
                c1,
                &[Update::Reclassify { object: "Alarms".into(), new_class: "OutputData".into() }],
            )
            .unwrap();
        let v2 = server.create_version("after reclassification").unwrap();
        assert_eq!(v2.to_string(), "2.0");
        server.with_database(|db| {
            assert_eq!(db.versions().len(), 2);
        });
    }

    #[test]
    fn queries_and_explain_are_served_centrally() {
        let server = server_with_data();
        // Retrieval-language queries run without locks.
        let answer = server.query(r#"find Data where name prefix "Alarm""#).unwrap();
        assert_eq!(answer.names, vec!["Alarms"]);
        assert_eq!(answer.count, 1);
        assert!(answer.plan.is_none());
        let answer = server.query("count Action").unwrap();
        assert_eq!(answer.count, 2);
        assert!(answer.names.is_empty());
        // Explain returns the physical plan, with or without the explicit keyword.
        let plan = server.explain(r#"find Thing where name = "Alarms""#).unwrap();
        assert!(plan.contains("probe name index"), "got: {plan}");
        let answer = server.query("explain count Data").unwrap();
        assert!(answer.plan.unwrap().contains("output  count"));
        // Errors are reported, not panicked.
        assert!(matches!(server.query("bogus"), Err(ServerError::Query(_))));
        assert!(matches!(server.query("find Ghost"), Err(ServerError::Query(_))));

        // The same surface over the threaded protocol.
        let (handle, join) = server.spawn();
        let answer = handle.query(r#"find Data where name prefix "Alarm""#).unwrap();
        assert_eq!(answer.names, vec!["Alarms"]);
        let answer = handle.query(r#"explain find Data where name prefix "Alarm""#).unwrap();
        assert!(answer.plan.is_some());
        assert!(handle.query("bogus").is_err());
        handle.shutdown().unwrap();
        join.join().unwrap();
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("seed-server-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_server_checkin_is_one_storage_transaction_and_recovers() {
        let dir = temp_dir("checkin");
        {
            let server = SeedServer::create_durable(&dir, figure3_schema()).unwrap();
            let status = server.persistence_status();
            assert!(status.durable);
            assert_eq!(status.objects, 0);
            let c1 = server.connect();
            // A successful check-in commits the whole batch as one storage transaction.
            server
                .checkin(
                    c1,
                    &[
                        Update::CreateObject { class: "Data".into(), name: "Alarms".into() },
                        Update::CreateObject { class: "Action".into(), name: "Sensor".into() },
                        Update::CreateRelationship {
                            association: "Access".into(),
                            bindings: vec![
                                ("from".into(), "Alarms".into()),
                                ("by".into(), "Sensor".into()),
                            ],
                        },
                    ],
                )
                .unwrap();
            // A rejected check-in leaves no durable trace (its storage transaction aborts).
            let err = server
                .checkin(
                    c1,
                    &[
                        Update::CreateObject { class: "Data".into(), name: "Ghost".into() },
                        Update::CreateObject { class: "Nonsense".into(), name: "X".into() },
                    ],
                )
                .unwrap_err();
            assert!(matches!(err, ServerError::Rejected(_)));
            server.create_version("global snapshot").unwrap();
            // Crash: server dropped without checkpoint or close.
        }
        // Restart recovery, observable over the protocol.
        let server = SeedServer::open_durable(&dir).unwrap();
        let (handle, join) = server.spawn();
        let status = handle.persistence().unwrap();
        assert!(status.durable);
        assert_eq!(status.objects, 2, "committed check-in recovered");
        assert_eq!(status.relationships, 1);
        assert_eq!(status.versions, 1);
        assert!(handle.retrieve("Alarms").is_ok());
        assert!(handle.retrieve("Ghost").is_err(), "rejected check-in left no trace");
        // Checkpoint over the protocol truncates the WAL.
        match handle.call(Request::Checkpoint).unwrap() {
            Response::Ack(result) => result.unwrap(),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(handle.persistence().unwrap().wal_bytes, 0);
        handle.shutdown().unwrap();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_server_reports_non_durable_and_rejects_checkpoint() {
        let server = server_with_data();
        let status = server.persistence_status();
        assert!(!status.durable);
        assert_eq!(status.path, None);
        assert!(server.checkpoint().is_err());
    }

    #[test]
    fn threaded_server_serves_concurrent_clients() {
        let server = server_with_data();
        let (handle, join) = server.spawn();

        let mut workers = Vec::new();
        for i in 0..4u64 {
            let handle = handle.clone();
            workers.push(std::thread::spawn(move || {
                let client = handle.connect().unwrap();
                // Each worker creates its own object and updates it — no conflicts.
                let name = format!("Worker{i}Data");
                match handle
                    .call(Request::Checkin {
                        client,
                        updates: vec![Update::CreateObject {
                            class: "Data".into(),
                            name: name.clone(),
                        }],
                    })
                    .unwrap()
                {
                    Response::Ack(result) => result.unwrap(),
                    other => panic!("unexpected response {other:?}"),
                }
                handle
                    .quick_set_value(
                        client,
                        "AlarmHandler.Description",
                        Value::string(format!("by {i}")),
                    )
                    .ok(); // may conflict with another worker holding the lock; that's fine
                handle.retrieve(&name).unwrap();
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        // All four objects exist centrally.
        for i in 0..4u64 {
            assert!(handle.retrieve(&format!("Worker{i}Data")).is_ok());
        }
        handle.shutdown().unwrap();
        let _server_back = join.join().unwrap();
    }
}
