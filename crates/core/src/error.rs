//! Error types of the SEED core DBMS.

use std::fmt;

use crate::consistency::ConsistencyViolation;

/// Result alias used throughout `seed-core`.
pub type SeedResult<T> = Result<T, SeedError>;

/// Errors raised by database operations.
#[derive(Debug)]
pub enum SeedError {
    /// The schema rejected the operation (unknown class, bad cardinality string, ...).
    Schema(seed_schema::SchemaError),
    /// The storage layer failed while persisting or loading the database.
    Storage(seed_storage::StorageError),
    /// The operation would make the database inconsistent.  SEED "permanently ensures database
    /// consistency", so such operations are rejected rather than applied.
    Inconsistent(Vec<ConsistencyViolation>),
    /// An object id, relationship id or name did not refer to a live item.
    NotFound(String),
    /// An object with this name already exists.
    DuplicateName(String),
    /// A value did not conform to the expected domain.
    DomainMismatch { expected: String, found: String },
    /// A version id was unknown, already taken, or structurally invalid.
    Version(String),
    /// A history-sensitive consistency rule rejected the version transition.
    TransitionRejected(String),
    /// Attempt to update inherited pattern information in the context of an inheritor, or
    /// another violation of the pattern rules.
    Pattern(String),
    /// An operation requires an active transaction, or a transaction is already active.
    Transaction(String),
    /// Re-classification was not possible (classes in unrelated hierarchies, invalid target...).
    Reclassification(String),
    /// Historical versions are read-only.
    ReadOnlyVersion(String),
    /// Catch-all for invalid arguments.
    Invalid(String),
}

impl fmt::Display for SeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeedError::Schema(e) => write!(f, "schema error: {e}"),
            SeedError::Storage(e) => write!(f, "storage error: {e}"),
            SeedError::Inconsistent(violations) => {
                write!(f, "operation rejected, it would violate consistency: ")?;
                for (i, v) in violations.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            SeedError::NotFound(what) => write!(f, "not found: {what}"),
            SeedError::DuplicateName(name) => write!(f, "an object named '{name}' already exists"),
            SeedError::DomainMismatch { expected, found } => {
                write!(f, "value of type {found} does not conform to domain {expected}")
            }
            SeedError::Version(msg) => write!(f, "version error: {msg}"),
            SeedError::TransitionRejected(msg) => {
                write!(f, "version transition rejected: {msg}")
            }
            SeedError::Pattern(msg) => write!(f, "pattern error: {msg}"),
            SeedError::Transaction(msg) => write!(f, "transaction error: {msg}"),
            SeedError::Reclassification(msg) => write!(f, "re-classification error: {msg}"),
            SeedError::ReadOnlyVersion(msg) => write!(f, "read-only version: {msg}"),
            SeedError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for SeedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeedError::Schema(e) => Some(e),
            SeedError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<seed_schema::SchemaError> for SeedError {
    fn from(e: seed_schema::SchemaError) -> Self {
        SeedError::Schema(e)
    }
}

impl From<seed_storage::StorageError> for SeedError {
    fn from(e: seed_storage::StorageError) -> Self {
        SeedError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: SeedError = seed_schema::SchemaError::UnknownClass("X".into()).into();
        assert!(matches!(e, SeedError::Schema(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: SeedError = seed_storage::StorageError::KeyNotFound.into();
        assert!(matches!(e, SeedError::Storage(_)));
        assert!(std::error::Error::source(&SeedError::NotFound("x".into())).is_none());
    }

    #[test]
    fn display_is_informative() {
        assert!(SeedError::NotFound("object 'Alarms'".into()).to_string().contains("Alarms"));
        assert!(SeedError::DomainMismatch { expected: "STRING".into(), found: "INTEGER".into() }
            .to_string()
            .contains("STRING"));
    }
}
