//! Umbrella crate re-exporting the SEED workspace (see individual crates).
pub use seed_core as core;
pub use seed_query as query;
pub use seed_schema as schema;
pub use seed_server as server;
pub use seed_storage as storage;
pub use spades;

