//! E1 — the paper's qualitative claim: SPADES on SEED is "considerably slower" than the direct
//! implementation (but more flexible).  Measures the same editing workload on both backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_spades_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for scale in [40usize, 80] {
        let workload = seed_bench::spades_workload(scale);
        group.bench_with_input(BenchmarkId::new("direct", scale), &workload, |b, w| {
            b.iter(|| seed_bench::run_on_direct(w))
        });
        group.bench_with_input(BenchmarkId::new("seed", scale), &workload, |b, w| {
            b.iter(|| seed_bench::run_on_seed(w, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
