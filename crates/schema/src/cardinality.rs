//! Cardinality ranges (`min .. max`, `*` = unlimited).
//!
//! Cardinalities appear in two places in a SEED schema: on dependent classes ("any object of
//! class `Data` may have from zero up to 16 objects of class `Data.Text`") and on association
//! roles ("every object of class `Data` must eventually have at least one `Read` relationship").
//!
//! Following the paper's partition of schema information, the **maximum** is *consistency*
//! information (checked on every update) while the **minimum** is *completeness* information
//! (checked only by explicit completeness analysis).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{SchemaError, SchemaResult};

/// A `min..max` occurrence range; `max == None` means unlimited (`*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cardinality {
    /// Minimum number of occurrences required for *complete* data.
    pub min: u32,
    /// Maximum number of occurrences allowed for *consistent* data (`None` = unlimited).
    pub max: Option<u32>,
}

impl Cardinality {
    /// Creates a cardinality, validating `min <= max`.
    pub fn new(min: u32, max: Option<u32>) -> SchemaResult<Self> {
        if let Some(m) = max {
            if min > m {
                return Err(SchemaError::InvalidCardinality(format!("{min}..{m}")));
            }
        }
        Ok(Self { min, max })
    }

    /// `0..*` — anything goes.
    pub fn any() -> Self {
        Self { min: 0, max: None }
    }

    /// `1..*` — at least one required eventually.
    pub fn at_least_one() -> Self {
        Self { min: 1, max: None }
    }

    /// `0..1` — optional, at most one.
    pub fn optional() -> Self {
        Self { min: 0, max: Some(1) }
    }

    /// `1..1` — exactly one.
    pub fn exactly_one() -> Self {
        Self { min: 1, max: Some(1) }
    }

    /// `min..max` with a bounded maximum.
    pub fn bounded(min: u32, max: u32) -> SchemaResult<Self> {
        Self::new(min, Some(max))
    }

    /// Whether `count` occurrences satisfy the **maximum** (consistency check).
    pub fn allows(&self, count: u32) -> bool {
        match self.max {
            Some(m) => count <= m,
            None => true,
        }
    }

    /// Whether `count` occurrences satisfy the **minimum** (completeness check).
    pub fn satisfied_by(&self, count: u32) -> bool {
        count >= self.min
    }

    /// Whether `count` satisfies both bounds.
    pub fn contains(&self, count: u32) -> bool {
        self.allows(count) && self.satisfied_by(count)
    }

    /// Parses the textual form used in the paper's diagrams and our SDL: `"0..16"`, `"1..*"`,
    /// `"0..1"`, `"*"` (shorthand for `0..*`) or a single number `n` (shorthand for `n..n`).
    pub fn parse(s: &str) -> SchemaResult<Self> {
        let s = s.trim();
        if s == "*" {
            return Ok(Self::any());
        }
        if let Some((lo, hi)) = s.split_once("..") {
            let min: u32 =
                lo.trim().parse().map_err(|_| SchemaError::InvalidCardinality(s.to_string()))?;
            let hi = hi.trim();
            let max = if hi == "*" {
                None
            } else {
                Some(
                    hi.parse::<u32>()
                        .map_err(|_| SchemaError::InvalidCardinality(s.to_string()))?,
                )
            };
            Self::new(min, max)
        } else {
            let n: u32 = s.parse().map_err(|_| SchemaError::InvalidCardinality(s.to_string()))?;
            Self::new(n, Some(n))
        }
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(m) => write!(f, "{}..{}", self.min, m),
            None => write!(f, "{}..*", self.min),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_bounds() {
        assert_eq!(Cardinality::any(), Cardinality { min: 0, max: None });
        assert_eq!(Cardinality::at_least_one(), Cardinality { min: 1, max: None });
        assert_eq!(Cardinality::optional(), Cardinality { min: 0, max: Some(1) });
        assert_eq!(Cardinality::exactly_one(), Cardinality { min: 1, max: Some(1) });
        assert_eq!(Cardinality::bounded(0, 16).unwrap(), Cardinality { min: 0, max: Some(16) });
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(Cardinality::new(5, Some(2)).is_err());
        assert!(Cardinality::bounded(3, 1).is_err());
    }

    #[test]
    fn allows_checks_only_maximum() {
        let c = Cardinality::bounded(1, 3).unwrap();
        assert!(c.allows(0), "minimum is completeness information, not consistency");
        assert!(c.allows(3));
        assert!(!c.allows(4));
        assert!(Cardinality::at_least_one().allows(1_000_000));
    }

    #[test]
    fn satisfied_by_checks_only_minimum() {
        let c = Cardinality::bounded(2, 5).unwrap();
        assert!(!c.satisfied_by(1));
        assert!(c.satisfied_by(2));
        assert!(c.satisfied_by(100), "satisfied_by ignores the maximum");
        assert!(c.contains(3));
        assert!(!c.contains(6));
        assert!(!c.contains(1));
    }

    #[test]
    fn parse_paper_notations() {
        assert_eq!(Cardinality::parse("0..16").unwrap(), Cardinality::bounded(0, 16).unwrap());
        assert_eq!(Cardinality::parse("1..*").unwrap(), Cardinality::at_least_one());
        assert_eq!(Cardinality::parse("0..*").unwrap(), Cardinality::any());
        assert_eq!(Cardinality::parse("*").unwrap(), Cardinality::any());
        assert_eq!(Cardinality::parse("1..1").unwrap(), Cardinality::exactly_one());
        assert_eq!(Cardinality::parse("3").unwrap(), Cardinality::bounded(3, 3).unwrap());
        assert_eq!(Cardinality::parse(" 0 .. 1 ").unwrap(), Cardinality::optional());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "a..b", "1..", "-1..2", "2..1", "1...3"] {
            assert!(Cardinality::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for c in [
            Cardinality::any(),
            Cardinality::at_least_one(),
            Cardinality::optional(),
            Cardinality::exactly_one(),
            Cardinality::bounded(0, 16).unwrap(),
            Cardinality::bounded(2, 7).unwrap(),
        ] {
            assert_eq!(Cardinality::parse(&c.to_string()).unwrap(), c);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn display_parse_roundtrip(min in 0u32..1000, extra in proptest::option::of(0u32..1000)) {
            let c = Cardinality::new(min, extra.map(|e| min + e)).unwrap();
            prop_assert_eq!(Cardinality::parse(&c.to_string()).unwrap(), c);
        }

        #[test]
        fn contains_is_conjunction(min in 0u32..50, extra in proptest::option::of(0u32..50), n in 0u32..200) {
            let c = Cardinality::new(min, extra.map(|e| min + e)).unwrap();
            prop_assert_eq!(c.contains(n), c.allows(n) && c.satisfied_by(n));
        }
    }
}
