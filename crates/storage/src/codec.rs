//! Binary encoding/decoding primitives used for records, WAL frames and index persistence.
//!
//! The format is deliberately simple and self-describing at the call-site (callers must decode
//! fields in the order they were encoded): fixed-width little-endian integers, LEB128-style
//! variable-length unsigned integers for lengths, and length-prefixed byte strings.

use bytes::{Buf, BufMut, BytesMut};

use crate::error::{StorageError, StorageResult};

/// Incrementally builds a binary buffer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self { buf: BytesMut::new() }
    }

    /// Creates an encoder with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: BytesMut::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16_le(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.put_i64_le(v);
        self
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.buf.put_u8(u8::from(v));
        self
    }

    /// Appends an unsigned integer in LEB128 variable-length encoding.
    pub fn put_varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                break;
            }
            self.buf.put_u8(byte | 0x80);
        }
        self
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Appends an `Option<u64>` as a presence byte followed by the value when present.
    pub fn put_opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x)
            }
            None => self.put_bool(false),
        }
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Returns a view of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads values back out of a byte slice in the order they were encoded.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the decoder has consumed every byte.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt(format!(
                "unexpected end of input: wanted {n} bytes, {} remaining",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> StorageResult<u16> {
        let mut b = self.take(2)?;
        Ok(b.get_u16_le())
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> StorageResult<u32> {
        let mut b = self.take(4)?;
        Ok(b.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> StorageResult<u64> {
        let mut b = self.take(8)?;
        Ok(b.get_u64_le())
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> StorageResult<i64> {
        let mut b = self.take(8)?;
        Ok(b.get_i64_le())
    }

    /// Reads a little-endian `f64`.
    pub fn get_f64(&mut self) -> StorageResult<f64> {
        let mut b = self.take(8)?;
        Ok(b.get_f64_le())
    }

    /// Reads a boolean encoded as one byte.
    pub fn get_bool(&mut self) -> StorageResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::Corrupt(format!("invalid boolean byte {other}"))),
        }
    }

    /// Reads a LEB128 variable-length unsigned integer.
    pub fn get_varint(&mut self) -> StorageResult<u64> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(StorageError::Corrupt("varint overflow".to_string()));
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> StorageResult<&'a [u8]> {
        let len = self.get_varint()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> StorageResult<&'a str> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes)
            .map_err(|e| StorageError::Corrupt(format!("invalid utf-8 string: {e}")))
    }

    /// Reads an optional `u64` written by [`Encoder::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> StorageResult<Option<u64>> {
        if self.get_bool()? {
            Ok(Some(self.get_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads `n` raw bytes without a length prefix.
    pub fn get_raw(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        self.take(n)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) used to protect WAL frames and page headers.
///
/// Implemented locally to stay within the allowed dependency set.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fixed_width() {
        let mut e = Encoder::new();
        e.put_u8(0xAB)
            .put_u16(0xBEEF)
            .put_u32(0xDEAD_BEEF)
            .put_u64(0x0123_4567_89AB_CDEF)
            .put_i64(-42)
            .put_f64(3.25)
            .put_bool(true)
            .put_bool(false);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_u16().unwrap(), 0xBEEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap(), 3.25);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        assert!(d.is_exhausted());
    }

    #[test]
    fn roundtrip_varint_boundaries() {
        let values = [0u64, 1, 127, 128, 255, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let mut e = Encoder::new();
            e.put_varint(v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.get_varint().unwrap(), v, "value {v}");
            assert!(d.is_exhausted());
        }
    }

    #[test]
    fn roundtrip_strings_and_bytes() {
        let mut e = Encoder::new();
        e.put_str("AlarmHandler")
            .put_bytes(b"\x00\x01\x02")
            .put_str("")
            .put_opt_u64(Some(9))
            .put_opt_u64(None);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str().unwrap(), "AlarmHandler");
        assert_eq!(d.get_bytes().unwrap(), b"\x00\x01\x02");
        assert_eq!(d.get_str().unwrap(), "");
        assert_eq!(d.get_opt_u64().unwrap(), Some(9));
        assert_eq!(d.get_opt_u64().unwrap(), None);
    }

    #[test]
    fn decoding_past_end_is_an_error() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(d.get_u32().is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut d = Decoder::new(&[7]);
        assert!(d.get_bool().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_str().is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the ASCII string "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"SEED"), crc32(b"SEEE"));
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes cannot encode a u64.
        let bytes = [0x80u8; 11];
        let mut d = Decoder::new(&bytes);
        assert!(d.get_varint().is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn varint_roundtrips(v in any::<u64>()) {
            let mut e = Encoder::new();
            e.put_varint(v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.get_varint().unwrap(), v);
            prop_assert!(d.is_exhausted());
        }

        #[test]
        fn mixed_sequence_roundtrips(
            a in any::<u64>(),
            s in ".*",
            b in proptest::collection::vec(any::<u8>(), 0..256),
            flag in any::<bool>(),
        ) {
            let mut e = Encoder::new();
            e.put_u64(a).put_str(&s).put_bytes(&b).put_bool(flag);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.get_u64().unwrap(), a);
            prop_assert_eq!(d.get_str().unwrap(), s.as_str());
            prop_assert_eq!(d.get_bytes().unwrap(), b.as_slice());
            prop_assert_eq!(d.get_bool().unwrap(), flag);
        }

        #[test]
        fn crc_detects_single_byte_flips(data in proptest::collection::vec(any::<u8>(), 1..128), idx in any::<usize>(), bit in 0u8..8) {
            let idx = idx % data.len();
            let mut flipped = data.clone();
            flipped[idx] ^= 1 << bit;
            prop_assert_ne!(crc32(&data), crc32(&flipped));
        }
    }
}
