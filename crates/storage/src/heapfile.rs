//! Record-level heap storage over the buffer pool.
//!
//! A [`HeapFile`] stores variable-length records and hands out stable [`RecordId`]s
//! (`page`, `slot`).  A simple in-memory free-space map steers inserts towards pages with room.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, MAX_RECORD_SIZE};

/// Stable address of a record inside a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Creates a record id from its parts.
    pub fn new(page: PageId, slot: u16) -> Self {
        Self { page, slot }
    }

    /// Packs the record id into a `u64` (page in the high 48 bits, slot in the low 16).
    pub fn to_u64(self) -> u64 {
        (self.page << 16) | u64::from(self.slot)
    }

    /// Reverses [`RecordId::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        Self { page: v >> 16, slot: (v & 0xFFFF) as u16 }
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// A heap file of variable-length records.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    /// Pages owned by this heap file together with their last known free space.
    free_space: Mutex<BTreeMap<PageId, usize>>,
}

impl HeapFile {
    /// Creates an empty heap file on top of `pool`.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        Self { pool, free_space: Mutex::new(BTreeMap::new()) }
    }

    /// Re-attaches a heap file to pages that already exist (used after recovery): the caller
    /// supplies the page ids that belong to this file.
    pub fn attach(
        pool: Arc<BufferPool>,
        pages: impl IntoIterator<Item = PageId>,
    ) -> StorageResult<Self> {
        let file = Self::new(pool);
        {
            let mut fs = file.free_space.lock();
            for id in pages {
                let free = file.pool.with_page(id, |p| p.free_space())?;
                fs.insert(id, free);
            }
        }
        Ok(file)
    }

    /// The buffer pool this heap file uses.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Pages currently owned by the heap file, in allocation order.
    pub fn pages(&self) -> Vec<PageId> {
        self.free_space.lock().keys().copied().collect()
    }

    /// Inserts a record and returns its id.
    pub fn insert(&self, record: &[u8]) -> StorageResult<RecordId> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge { size: record.len(), max: MAX_RECORD_SIZE });
        }
        // Find a page with enough room (slot + record), otherwise allocate a new one.
        let candidate = {
            let fs = self.free_space.lock();
            fs.iter()
                .find(|(_, &free)| free >= record.len() + crate::page::SLOT_SIZE)
                .map(|(&id, _)| id)
        };
        let page_id = match candidate {
            Some(id) => id,
            None => {
                let id = self.pool.allocate_page()?;
                self.free_space
                    .lock()
                    .insert(id, crate::page::PAGE_SIZE - crate::page::PAGE_HEADER_SIZE);
                id
            }
        };
        let (slot, free) = self.pool.with_page_mut(page_id, |page| {
            let slot = page.insert(record)?;
            Ok::<_, StorageError>((slot, page.free_space()))
        })??;
        self.free_space.lock().insert(page_id, free);
        Ok(RecordId::new(page_id, slot))
    }

    /// Reads the record at `id`.
    pub fn get(&self, id: RecordId) -> StorageResult<Vec<u8>> {
        self.pool.with_page(id.page, |page| page.get(id.slot).map(|r| r.to_vec()))?
    }

    /// Updates the record at `id` in place.  If the new value no longer fits in its page the
    /// record is deleted and re-inserted, and the **new** record id is returned; otherwise the
    /// original id is returned unchanged.
    pub fn update(&self, id: RecordId, record: &[u8]) -> StorageResult<RecordId> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge { size: record.len(), max: MAX_RECORD_SIZE });
        }
        let result = self.pool.with_page_mut(id.page, |page| {
            let r = page.update(id.slot, record);
            (r, page.free_space())
        })?;
        match result {
            (Ok(()), free) => {
                self.free_space.lock().insert(id.page, free);
                Ok(id)
            }
            (Err(StorageError::PageFull { .. }), _) => {
                // Move the record to another page.
                self.delete(id)?;
                self.insert(record)
            }
            (Err(e), _) => Err(e),
        }
    }

    /// Deletes the record at `id`.
    pub fn delete(&self, id: RecordId) -> StorageResult<()> {
        let free = self.pool.with_page_mut(id.page, |page| {
            page.delete(id.slot)?;
            Ok::<_, StorageError>(page.free_space() + page.reclaimable_space())
        })??;
        self.free_space.lock().insert(id.page, free);
        Ok(())
    }

    /// Returns every `(RecordId, record)` pair in the heap file.
    pub fn scan(&self) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        let pages = self.pages();
        let mut out = Vec::new();
        for page_id in pages {
            let mut page_records = self.pool.with_page(page_id, |page| {
                page.records()
                    .map(|(slot, rec)| (RecordId::new(page_id, slot), rec.to_vec()))
                    .collect::<Vec<_>>()
            })?;
            out.append(&mut page_records);
        }
        Ok(out)
    }

    /// Number of live records across all pages.
    pub fn record_count(&self) -> StorageResult<usize> {
        let pages = self.pages();
        let mut n = 0;
        for page_id in pages {
            n += self.pool.with_page(page_id, |page| page.live_record_count())?;
        }
        Ok(n)
    }

    /// Flushes all pages of the heap file through the buffer pool.
    pub fn flush(&self) -> StorageResult<()> {
        self.pool.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::pagestore::MemoryPageStore;

    fn heap() -> HeapFile {
        let pool = Arc::new(BufferPool::new(Arc::new(MemoryPageStore::new()), 8).unwrap());
        HeapFile::new(pool)
    }

    #[test]
    fn record_id_u64_roundtrip() {
        let id = RecordId::new(123_456, 789);
        assert_eq!(RecordId::from_u64(id.to_u64()), id);
        assert_eq!(id.to_string(), "123456:789");
    }

    #[test]
    fn insert_get_update_delete() {
        let heap = heap();
        let id = heap.insert(b"first").unwrap();
        assert_eq!(heap.get(id).unwrap(), b"first");

        let id2 = heap.update(id, b"second").unwrap();
        assert_eq!(id2, id, "in-place update keeps the record id");
        assert_eq!(heap.get(id).unwrap(), b"second");

        heap.delete(id).unwrap();
        assert!(heap.get(id).is_err());
        assert_eq!(heap.record_count().unwrap(), 0);
    }

    #[test]
    fn records_spill_to_new_pages() {
        let heap = heap();
        let rec = vec![1u8; 3000];
        let mut ids = Vec::new();
        for _ in 0..10 {
            ids.push(heap.insert(&rec).unwrap());
        }
        assert!(heap.pages().len() >= 4, "3000-byte records should span multiple pages");
        for id in &ids {
            assert_eq!(heap.get(*id).unwrap().len(), 3000);
        }
        assert_eq!(heap.record_count().unwrap(), 10);
    }

    #[test]
    fn growing_update_moves_record_when_page_is_full() {
        let heap = heap();
        // Fill a page almost completely.
        let big = vec![0u8; 3900];
        let a = heap.insert(&big).unwrap();
        let b = heap.insert(&big).unwrap();
        assert_eq!(a.page, b.page);
        // Growing `a` beyond the remaining space forces a move.
        let bigger = vec![1u8; 5000];
        let a2 = heap.update(a, &bigger).unwrap();
        assert_eq!(heap.get(a2).unwrap(), bigger);
        assert_ne!(a2.page, a.page);
        // The other record is untouched.
        assert_eq!(heap.get(b).unwrap(), big);
    }

    #[test]
    fn scan_returns_everything() {
        let heap = heap();
        let mut expected = Vec::new();
        for i in 0..50u32 {
            let rec = i.to_le_bytes().to_vec();
            let id = heap.insert(&rec).unwrap();
            expected.push((id, rec));
        }
        let mut scanned = heap.scan().unwrap();
        scanned.sort();
        expected.sort();
        assert_eq!(scanned, expected);
    }

    #[test]
    fn oversized_record_rejected() {
        let heap = heap();
        assert!(heap.insert(&vec![0u8; MAX_RECORD_SIZE + 1]).is_err());
        let id = heap.insert(b"small").unwrap();
        assert!(heap.update(id, &vec![0u8; MAX_RECORD_SIZE + 1]).is_err());
    }

    #[test]
    fn attach_recovers_free_space_map() {
        let store = Arc::new(MemoryPageStore::new());
        let pool = Arc::new(BufferPool::new(store.clone(), 8).unwrap());
        let heap = HeapFile::new(pool.clone());
        let id = heap.insert(b"persisted record").unwrap();
        heap.flush().unwrap();
        let pages = heap.pages();
        drop(heap);

        let heap2 = HeapFile::attach(pool, pages).unwrap();
        assert_eq!(heap2.get(id).unwrap(), b"persisted record");
        // And we can keep inserting into the recovered file.
        let id2 = heap2.insert(b"post-recovery").unwrap();
        assert_eq!(heap2.get(id2).unwrap(), b"post-recovery");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::pagestore::MemoryPageStore;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Update(usize, Vec<u8>),
        Delete(usize),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..512).prop_map(Op::Insert),
            (any::<usize>(), proptest::collection::vec(any::<u8>(), 0..512))
                .prop_map(|(i, d)| Op::Update(i, d)),
            any::<usize>().prop_map(Op::Delete),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn heapfile_matches_model(ops in proptest::collection::vec(op(), 1..80)) {
            let pool = Arc::new(BufferPool::new(Arc::new(MemoryPageStore::new()), 4).unwrap());
            let heap = HeapFile::new(pool);
            let mut model: HashMap<RecordId, Vec<u8>> = HashMap::new();
            let mut live: Vec<RecordId> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(data) => {
                        let id = heap.insert(&data).unwrap();
                        model.insert(id, data);
                        live.push(id);
                    }
                    Op::Update(i, data) => {
                        if live.is_empty() { continue; }
                        let id = live[i % live.len()];
                        if model.contains_key(&id) {
                            let new_id = heap.update(id, &data).unwrap();
                            model.remove(&id);
                            model.insert(new_id, data);
                            if new_id != id { live.push(new_id); }
                        }
                    }
                    Op::Delete(i) => {
                        if live.is_empty() { continue; }
                        let id = live[i % live.len()];
                        if model.remove(&id).is_some() {
                            heap.delete(id).unwrap();
                        }
                    }
                }
            }
            // Final state must agree record-by-record and in total count.
            for (id, data) in &model {
                prop_assert_eq!(heap.get(*id).unwrap(), data.clone());
            }
            prop_assert_eq!(heap.record_count().unwrap(), model.len());
        }
    }
}
