//! Value domains for leaf object classes.
//!
//! In the paper's figures, leaf classes such as `Data.Text.Selector` carry `STRING` instances
//! and `Thing.Revised` carries `DATE` instances.  A domain constrains the values that objects of
//! such a class may hold; domain conformance is *consistency* information and is checked on
//! every update.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The value domain of a leaf object class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// Arbitrary UTF-8 text (the paper's `STRING`).
    String,
    /// Signed integers (the paper's `NumberOfWrites` attribute).
    Integer,
    /// Floating point numbers.
    Real,
    /// Booleans.
    Boolean,
    /// Calendar dates, stored as `(year, month, day)` (the paper's `DATE`, e.g. `Revised`).
    Date,
    /// One value out of a fixed set of symbolic literals (the paper's `ErrorHandling
    /// (abort, repeat)` attribute).
    Enumeration(Vec<String>),
    /// Free multi-line text bodies; behaves like [`Domain::String`] but signals intent.
    Text,
}

impl Domain {
    /// A short, stable keyword for the domain, as used by the schema definition language.
    pub fn keyword(&self) -> String {
        match self {
            Domain::String => "STRING".to_string(),
            Domain::Integer => "INTEGER".to_string(),
            Domain::Real => "REAL".to_string(),
            Domain::Boolean => "BOOLEAN".to_string(),
            Domain::Date => "DATE".to_string(),
            Domain::Text => "TEXT".to_string(),
            Domain::Enumeration(literals) => format!("ENUM({})", literals.join(", ")),
        }
    }

    /// Parses a domain keyword (the inverse of [`Domain::keyword`] for non-enumeration domains).
    pub fn from_keyword(kw: &str) -> Option<Domain> {
        match kw.to_ascii_uppercase().as_str() {
            "STRING" => Some(Domain::String),
            "INTEGER" | "INT" => Some(Domain::Integer),
            "REAL" | "FLOAT" => Some(Domain::Real),
            "BOOLEAN" | "BOOL" => Some(Domain::Boolean),
            "DATE" => Some(Domain::Date),
            "TEXT" => Some(Domain::Text),
            _ => None,
        }
    }

    /// Whether the enumeration contains the literal (only meaningful for enumerations).
    pub fn allows_literal(&self, literal: &str) -> bool {
        match self {
            Domain::Enumeration(lits) => lits.iter().any(|l| l == literal),
            _ => false,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip_for_simple_domains() {
        for d in [
            Domain::String,
            Domain::Integer,
            Domain::Real,
            Domain::Boolean,
            Domain::Date,
            Domain::Text,
        ] {
            assert_eq!(Domain::from_keyword(&d.keyword()), Some(d.clone()), "{d}");
        }
    }

    #[test]
    fn keyword_aliases() {
        assert_eq!(Domain::from_keyword("int"), Some(Domain::Integer));
        assert_eq!(Domain::from_keyword("bool"), Some(Domain::Boolean));
        assert_eq!(Domain::from_keyword("float"), Some(Domain::Real));
        assert_eq!(Domain::from_keyword("nonsense"), None);
    }

    #[test]
    fn enumeration_membership() {
        let d = Domain::Enumeration(vec!["abort".into(), "repeat".into()]);
        assert!(d.allows_literal("abort"));
        assert!(d.allows_literal("repeat"));
        assert!(!d.allows_literal("retry"));
        assert!(!Domain::String.allows_literal("abort"));
        assert_eq!(d.keyword(), "ENUM(abort, repeat)");
    }
}
