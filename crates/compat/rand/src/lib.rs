//! Offline stand-in for `rand`, providing the seeded-generator API the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — statistically solid for workload generation, deterministic for
//! a given seed (the property `spades::Workload` relies on), and emphatically not
//! cryptographic.  Note that the real `rand` `StdRng` draws a different stream for the same
//! seed; within this workspace only *reproducibility* matters, not the specific stream.

use std::ops::Range;

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draws a value in `[range.start, range.end)` using `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = range.end.abs_diff(range.start) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 and irrelevant here.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + draw) as $ty
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p={p}");
        // 53 random bits give a uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs`.

    use super::{Rng, SeedableRng};

    /// A deterministic, seedable generator (SplitMix64 in this stand-in).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(1986);
        let mut b = StdRng::seed_from_u64(1986);
        let mut c = StdRng::seed_from_u64(7);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let v: u32 = rng.gen_range(0..100);
            assert!(v < 100);
            seen.insert(v);
        }
        assert!(seen.len() > 80, "coverage too thin: {}", seen.len());
        for _ in 0..200 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
        let v: usize = rng.gen_range(3..4);
        assert_eq!(v, 3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 produced {hits}/10000 hits");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
