//! E2 — cost of checking every update against the consistency information, both on the SPADES
//! workload (checks on vs. off) and as a function of schema complexity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seed_core::Database;

fn workload_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_consistency_workload");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let workload = seed_bench::spades_workload(60);
    group.bench_function("checks_on", |b| b.iter(|| seed_bench::run_on_seed(&workload, true)));
    group.bench_function("checks_off", |b| b.iter(|| seed_bench::run_on_seed(&workload, false)));
    group.finish();
}

fn schema_width_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_schema_width");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for width in [1usize, 4, 16] {
        let schema = seed_bench::wide_schema(width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &schema, |b, schema| {
            b.iter(|| {
                let mut db = Database::new(schema.clone());
                let hub = db.create_object("Hub", "Hub").unwrap();
                for i in 0..50 {
                    let node = db.create_object("Node", &format!("Node{i:03}")).unwrap();
                    db.create_relationship("Link0", &[("node", node), ("hub", hub)]).unwrap();
                }
                db.object_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, workload_checking, schema_width_sweep);
criterion_main!(benches);
