//! The replica side of WAL-shipping replication over `seed-net`.
//!
//! A [`ReplicaNode`] is a complete read-only SEED node: it opens (or resumes) a durable
//! [`ReplicaStore`] in its own directory, subscribes to a primary's replication stream
//! (handshake with [`crate::wire::HandshakeRole::Replica`], one [`Subscribe`] frame), applies
//! every [`LogBatch`] through the PR 3 recovery path, and serves the **full
//! read surface** (`Query`, `Schema`, `Children`, `Prefix`, `ObjectsOfClass`, `Completeness`,
//! `Retrieve`, …) on its own TCP listener — while checkouts, check-ins and version creation
//! answer `ServerError::ReadOnlyReplica` carrying the primary's address.
//!
//! Lifecycle:
//!
//! 1. **Initial sync** — `start` blocks until the first batch is applied (the primary answers a
//!    subscribe immediately, with a snapshot reset batch when the replica's cursor fell behind
//!    the primary's WAL), so the node never listens before it has a database to serve.
//! 2. **Streaming** — a background thread applies batches and patches the serving database
//!    **in place, O(delta)** with the batch's committed key effects (reset batches reload
//!    wholesale), publishing a fresh read snapshot keyed to the applied LSN — a read sees
//!    whole batches, never halves — and acknowledges each batch once it is durable locally.
//! 3. **Reconnect** — a dropped primary connection is retried with a fixed backoff, resuming
//!    from the replica's durable cursor; a crash mid-batch loses that batch atomically and it
//!    is simply shipped again.
//!
//! `docs/OPERATIONS.md` is the runbook for running these in production.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use seed_core::ReplicaStore;
use seed_server::{PromotionReceipt, SeedServer, ServerError, ServerResult};

use crate::client::RemoteClient;
use crate::server::{NetServerConfig, SeedNetServer};
use crate::wire::{read_frame, write_frame, Ack, FrameKind, Hello, LogBatch, Subscribe, Welcome};

/// Tuning knobs of a replica node.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Free-form agent string sent to the primary in the handshake.
    pub agent: String,
    /// Delay between reconnection attempts after the primary connection drops.
    pub reconnect_backoff: Duration,
    /// Upper bound on connect + handshake + first batch; a primary that accepts the TCP
    /// connection but never answers fails `ReplicaNode::start` instead of hanging it.
    pub connect_timeout: Duration,
    /// How many consecutive failed reconnection attempts the stream tolerates before it stops
    /// hammering the primary's address and idles — still serving reads from the last applied
    /// state, still stoppable, still promotable.  Each attempt bumps `repl_reconnect_total`;
    /// hitting the cap emits one `Warn` event.  A promotion order resets the count (the cap is
    /// per topology epoch).
    pub max_reconnect_attempts: u32,
    /// The topology epoch this replica was (re-)pointed at its primary under.  When this is
    /// newer than the epoch recorded in the replica's own store, the local cursor belongs to a
    /// superseded primary's log and the node forces a full-snapshot resync instead of resuming
    /// it.  Leave at 0 when no failover ever happened.
    pub epoch: u64,
    /// Configuration of the replica's own read-serving TCP frontend.
    pub net: NetServerConfig,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            agent: format!("seed-replica/{}", env!("CARGO_PKG_VERSION")),
            reconnect_backoff: Duration::from_millis(200),
            connect_timeout: Duration::from_secs(10),
            max_reconnect_attempts: 120,
            epoch: 0,
            net: NetServerConfig::default(),
        }
    }
}

/// Progress counters shared between the apply thread and the node handle.
struct Progress {
    applied: AtomicU64,
    primary_lsn: AtomicU64,
    /// Reset (full-snapshot) batches applied since this node started — a replica that catches
    /// up from the primary's retained log keeps this at zero.
    resets: AtomicU64,
    /// Cumulative per-item records patched onto the serving database by incremental batches —
    /// grows with the shipped deltas, not with batches × database size.
    items_applied: AtomicU64,
}

/// One connection to the primary's replication stream.
struct Feed {
    stream: TcpStream,
    /// Armed during connect/handshake/initial batch so a peer that accepts the TCP connection
    /// but never answers cannot block forever; cleared once the stream is live.
    deadline: Option<std::time::Instant>,
}

/// How often a blocked feed read wakes up to check the stop flag.
const FEED_POLL: Duration = Duration::from_millis(50);

/// Replica-side replication metric handles, registered once on first use.  `repl_ack_lag` is
/// the records-behind gauge (`primary_lsn − applied_lsn`) — the one number a health check or a
/// dashboard should watch instead of polling `PersistenceStatus` in a loop.
struct ReplMetrics {
    batches_applied: seed_obs::Counter,
    resets: seed_obs::Counter,
    reconnects: seed_obs::Counter,
    ack_lag: seed_obs::Gauge,
}

fn repl_metrics() -> &'static ReplMetrics {
    static METRICS: std::sync::OnceLock<ReplMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = seed_obs::global();
        ReplMetrics {
            batches_applied: r.counter("repl_batches_applied_total"),
            resets: r.counter("repl_resets_total"),
            reconnects: r.counter("repl_reconnect_total"),
            ack_lag: r.gauge("repl_ack_lag"),
        }
    })
}

impl Feed {
    /// Connects, handshakes as a replica and subscribes from `from_lsn`.  Everything up to
    /// (and including) the first frame read is bounded by `timeout`.
    fn open(
        primary: SocketAddr,
        agent: &str,
        from_lsn: u64,
        timeout: Duration,
    ) -> ServerResult<Self> {
        let transport = |e: std::io::Error| ServerError::Transport(e.to_string());
        let stream = TcpStream::connect_timeout(&primary, timeout).map_err(transport)?;
        stream.set_nodelay(true).map_err(transport)?;
        stream.set_read_timeout(Some(FEED_POLL)).map_err(transport)?;
        let mut feed = Self { stream, deadline: Some(std::time::Instant::now() + timeout) };
        write_frame(&mut feed.stream, FrameKind::Hello, &Hello::replica(agent).encode())?;
        let never = AtomicBool::new(false);
        let frame = feed.read_frame_blocking(&never, &never)?;
        match frame.kind {
            FrameKind::Welcome => {
                Welcome::decode(&frame.payload)?;
            }
            FrameKind::Reject => {
                return Err(ServerError::Protocol(
                    String::from_utf8_lossy(&frame.payload).into_owned(),
                ));
            }
            other => {
                return Err(ServerError::Protocol(format!(
                    "replica handshake expected welcome or reject, got {other:?}"
                )));
            }
        }
        write_frame(&mut feed.stream, FrameKind::Subscribe, &Subscribe { from_lsn }.encode())?;
        Ok(feed)
    }

    /// Reads one frame, turning read timeouts into stop-flag polls (a mid-frame timeout keeps
    /// accumulating bytes; see the server-side `PollRead` for the same idea).  `abort` is the
    /// promotion pre-empt: a pending promotion order must not wait behind a blocked read.
    fn read_frame_blocking(
        &mut self,
        stop: &AtomicBool,
        abort: &AtomicBool,
    ) -> ServerResult<crate::wire::Frame> {
        struct PollStream<'a> {
            inner: &'a TcpStream,
            stop: &'a AtomicBool,
            abort: &'a AtomicBool,
            deadline: Option<std::time::Instant>,
        }
        impl std::io::Read for PollStream<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                loop {
                    match std::io::Read::read(&mut self.inner, buf) {
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            if self.stop.load(Ordering::SeqCst) {
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::ConnectionAborted,
                                    "replica shutting down",
                                ));
                            }
                            if self.abort.load(Ordering::SeqCst) {
                                // NOT `Interrupted`: `read_exact` retries that kind forever.
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::ConnectionAborted,
                                    "a promotion order pre-empted the stream",
                                ));
                            }
                            if self.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::TimedOut,
                                    "primary did not answer within the connect timeout",
                                ));
                            }
                        }
                        other => return other,
                    }
                }
            }
        }
        read_frame(&mut PollStream { inner: &self.stream, stop, abort, deadline: self.deadline })
            .map_err(ServerError::from)
    }

    /// Waits for the next log batch (Reject ends the stream with its reason).
    fn next_batch(&mut self, stop: &AtomicBool, abort: &AtomicBool) -> ServerResult<LogBatch> {
        let frame = self.read_frame_blocking(stop, abort)?;
        match frame.kind {
            FrameKind::LogBatch => Ok(LogBatch::decode(&frame.payload)?),
            FrameKind::Reject => {
                Err(ServerError::Protocol(String::from_utf8_lossy(&frame.payload).into_owned()))
            }
            other => Err(ServerError::Protocol(format!("expected a log batch, got {other:?}"))),
        }
    }

    /// Acknowledges local durability up to `applied_lsn`.
    fn ack(&mut self, applied_lsn: u64) -> ServerResult<()> {
        write_frame(&mut self.stream, FrameKind::Ack, &Ack { applied_lsn }.encode())?;
        Ok(())
    }
}

/// How long a `Promote` request blocks waiting for the apply thread to execute the order.
const PROMOTE_TIMEOUT: Duration = Duration::from_secs(60);

/// The life of one promotion order inside the [`PromoteCell`] mailbox.
enum PromoteState {
    /// No order outstanding; a `Promote` request may submit one.
    Idle,
    /// An order is waiting for the apply thread to claim it.
    Requested { epoch: u64, new_primary: String },
    /// The apply thread claimed the order and is fencing/draining/flipping.
    Executing,
    /// The outcome, waiting for the requester to consume it.
    Done(ServerResult<PromotionReceipt>),
}

/// The promotion mailbox between a request-serving worker (submits an order and waits for the
/// outcome) and the apply thread (owns the [`ReplicaStore`], so only it can execute the order).
struct PromoteCell {
    state: Mutex<PromoteState>,
    cond: Condvar,
    /// Mirrors "an order is waiting" so the feed's poll loop can abort a blocked read without
    /// taking the mutex on every tick.
    pending: AtomicBool,
}

impl PromoteCell {
    fn new() -> Self {
        Self {
            state: Mutex::new(PromoteState::Idle),
            cond: Condvar::new(),
            pending: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PromoteState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Apply-thread side: claims a waiting order, if any.
    fn take_order(&self) -> Option<(u64, String)> {
        if !self.pending.swap(false, Ordering::SeqCst) {
            return None;
        }
        let mut state = self.lock();
        match std::mem::replace(&mut *state, PromoteState::Executing) {
            PromoteState::Requested { epoch, new_primary } => Some((epoch, new_primary)),
            other => {
                *state = other;
                None
            }
        }
    }

    /// Apply-thread side: reports the outcome of a claimed order.  If the requester already
    /// gave up waiting (timeout), the outcome has no consumer and the mailbox just resets.
    fn finish(&self, outcome: ServerResult<PromotionReceipt>) {
        let mut state = self.lock();
        *state = match *state {
            PromoteState::Executing => PromoteState::Done(outcome),
            _ => PromoteState::Idle,
        };
        self.cond.notify_all();
    }

    /// Apply-thread side: parks until an order arrives (or the timeout passes) — the idle wait
    /// of a stream that gave up reconnecting.
    fn wait_for_order(&self, timeout: Duration) {
        let state = self.lock();
        if matches!(*state, PromoteState::Requested { .. }) {
            return;
        }
        let _ = self.cond.wait_timeout(state, timeout).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Bridges [`SeedServer`]'s promotion dispatch to the apply thread: a [`Request::Promote`]
/// landing on a replica is handed to the thread that owns the store, and the requester blocks
/// until that thread reports the outcome.
///
/// [`Request::Promote`]: seed_server::Request::Promote
struct PromotionDriver {
    cell: Arc<PromoteCell>,
}

impl seed_server::Promoter for PromotionDriver {
    fn promote(&self, epoch: u64, new_primary: &str) -> ServerResult<PromotionReceipt> {
        let mut state = self.cell.lock();
        if !matches!(*state, PromoteState::Idle) {
            return Err(ServerError::Protocol(
                "another promotion is already in progress on this replica".into(),
            ));
        }
        *state = PromoteState::Requested { epoch, new_primary: new_primary.to_string() };
        self.cell.pending.store(true, Ordering::SeqCst);
        self.cell.cond.notify_all();
        let deadline = std::time::Instant::now() + PROMOTE_TIMEOUT;
        loop {
            if matches!(*state, PromoteState::Done(_)) {
                let PromoteState::Done(outcome) =
                    std::mem::replace(&mut *state, PromoteState::Idle)
                else {
                    unreachable!("matched Done above");
                };
                return outcome;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                // Give up; `finish` sees a non-Executing state and resets the mailbox.
                *state = PromoteState::Idle;
                self.cell.pending.store(false, Ordering::SeqCst);
                return Err(ServerError::Transport(
                    "the promotion order timed out waiting for the replica's apply thread".into(),
                ));
            }
            state = self
                .cell
                .cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// Everything fallible that must happen *before* the store flip of a promotion: the epoch
/// freshness check, fencing the old primary, draining the shipped tail up to the fenced
/// primary's final LSN.  Leaves the store consistent on failure so the node resumes its
/// replica role.
fn prepare_promotion(
    store: &mut ReplicaStore,
    primary: SocketAddr,
    agent: &str,
    connect_timeout: Duration,
    epoch: u64,
    new_primary: &str,
) -> ServerResult<()> {
    let current = store.topology_epoch().map_err(ServerError::Rejected)?;
    if epoch <= current {
        return Err(ServerError::Protocol(format!(
            "stale promotion epoch {epoch}: this replica is already at epoch {current}"
        )));
    }
    // Fence the old primary.  Three outcomes:
    //  - a `Promoted` receipt: this promotion won the compare-and-swap on the primary; its
    //    `last_lsn` is the final write the old log will ever hold — drain up to it.
    //  - `Fenced` (or any other rejection): a concurrent promotion won first; abort, stay a
    //    replica.
    //  - unreachable: a dead primary cannot be fenced, and whatever it committed beyond the
    //    shipped tail is lost with it — the documented failover data-loss boundary.
    let drain_to = match RemoteClient::connect_as(primary, "seed-replica promotion fence") {
        Ok(mut fencer) => match fencer.promote(epoch, new_primary) {
            Ok(receipt) => Some(receipt.last_lsn),
            Err(ServerError::Transport(_)) | Err(ServerError::Disconnected) => None,
            Err(e) => return Err(e),
        },
        Err(_) => None,
    };
    if let Some(target) = drain_to {
        // The fence succeeded, so the old primary was alive a moment ago and fencing does not
        // block its replication feed — drain the tail so no write it acknowledged is lost.
        let never = AtomicBool::new(false);
        let deadline = std::time::Instant::now() + connect_timeout;
        'drain: while store.applied_lsn() < target && std::time::Instant::now() < deadline {
            let Ok(mut feed) = Feed::open(primary, agent, store.applied_lsn() + 1, connect_timeout)
            else {
                break;
            };
            while store.applied_lsn() < target {
                let Ok(batch) = feed.next_batch(&never, &never) else { continue 'drain };
                if batch.records.is_empty() && !batch.reset && batch.last_lsn <= store.applied_lsn()
                {
                    if feed.ack(store.applied_lsn()).is_err() {
                        continue 'drain;
                    }
                    continue;
                }
                store
                    .apply(&batch.records, batch.last_lsn, batch.reset)
                    .map_err(ServerError::Rejected)?;
                let _ = feed.ack(store.applied_lsn());
            }
        }
        if store.applied_lsn() < target {
            // The primary died between the fence and the drain.  Refusing here is the safe
            // default: the old primary is fenced but its acknowledged tail is unreachable, and
            // the operator must re-issue the promotion (a retry against a now-dead primary
            // skips the drain and accepts the loss explicitly).
            return Err(ServerError::Transport(format!(
                "fenced the primary at epoch {epoch} but lost it before draining its tail: \
                 applied {} of {}",
                store.applied_lsn(),
                target
            )));
        }
    }
    Ok(())
}

/// What one read-locked look at the primary's log decided to ship to a subscriber at `next`.
enum Shipment {
    /// The database has no WAL at all — replication is impossible, reject the session.
    InMemory,
    /// Nothing new past the cursor; heartbeat (or the immediate subscribe answer).
    CaughtUp { durable: u64 },
    /// Log records covering the cursor onwards.
    Records { records: Vec<(u64, seed_storage::LogRecord)>, durable: u64 },
    /// The log no longer reaches the cursor; a full keyed snapshot with reset semantics.
    Snapshot { pairs: seed_storage::engine::KeySpaceDump, lsn: u64 },
    /// A storage error reading the tail or cutting the snapshot; end the session.
    Failed,
}

/// What a primary-side replication session should do at this poll tick, as planned by
/// [`cut_shipment`] on a worker shard.  The event loop in [`crate::server`] owns the framing
/// (the [`Subscribe`] opener, [`Ack`] consumption, the one-batch-in-flight flow control); this
/// is the database side of one tick.
pub(crate) enum ShipmentPlan {
    /// Reject the session with this reason and close it.
    Reject(&'static str),
    /// A storage error reading the tail or cutting the snapshot; end the session.
    End,
    /// Caught up, the prompt answer already went out and no heartbeat is due: send nothing.
    Idle,
    /// Ship this batch and await the replica's ack.
    Batch(LogBatch),
}

/// Cuts what a replication session at cursor `next` should ship, under **one** database read
/// lock — the primary side of the Subscribe/LogBatch/Ack session, shared by the event-loop
/// server's worker shards.
///
/// The cursor is driven by the **acks** (`next = acked + 1`), so a batch the replica never made
/// durable is simply cut again.  `answer_now` is set for the first tick after the subscribe —
/// the opener deserves a position sync even when there is nothing to ship — and idle periods
/// are bridged by heartbeat batches (`heartbeat_due`, paced by
/// [`NetServerConfig::replication_heartbeat`]).  A cursor the WAL no longer covers (the replica
/// outslept the retention budget, or its store belongs to a different log) is answered with a
/// full-snapshot reset batch.
///
/// Two guarantees keep checkpoints from racing a session into a spurious resync:
///
/// - The cursor is registered as an ack **at subscribe time** (before the first batch ships),
///   so segment retention covers the tail this session is about to read.
/// - The caught-up check, the tail read and the snapshot cut all happen under **one** database
///   read lock per poll tick ([`Shipment`]); a checkpoint can never truncate the log between
///   the durable-LSN read and the tail read and turn an idle heartbeat into a snapshot.
pub(crate) fn cut_shipment(
    core: &SeedServer,
    next: u64,
    answer_now: bool,
    heartbeat_due: bool,
) -> ShipmentPlan {
    let shipment = core.with_database(|db| {
        // Caught-up check first: the durable LSN is a counter read, so an idle poll tick
        // never touches the WAL files (reading the tail re-parses segments from disk).
        let Some(durable) = db.durable_lsn() else { return Shipment::InMemory };
        if durable + 1 == next {
            return Shipment::CaughtUp { durable };
        }
        match db.wal_tail(next) {
            Err(_) => Shipment::Failed,
            Ok(seed_storage::WalTail::Records(records)) => Shipment::Records { records, durable },
            Ok(seed_storage::WalTail::Truncated { .. }) => match db.replication_snapshot() {
                Ok((pairs, lsn)) => Shipment::Snapshot { pairs, lsn },
                Err(_) => Shipment::Failed,
            },
        }
    });
    match shipment {
        Shipment::InMemory => {
            ShipmentPlan::Reject("this primary serves an in-memory database; nothing to replicate")
        }
        Shipment::Failed => ShipmentPlan::End,
        Shipment::CaughtUp { durable } => {
            if !answer_now && !heartbeat_due {
                return ShipmentPlan::Idle;
            }
            // Heartbeat (or the immediate answer to the subscribe): nothing to ship, just
            // the primary's position.
            ShipmentPlan::Batch(LogBatch {
                reset: false,
                first_lsn: 0,
                last_lsn: next - 1,
                primary_lsn: durable,
                records: Vec::new(),
            })
        }
        Shipment::Records { records, durable } => {
            let first = records.first().map(|(lsn, _)| *lsn).unwrap_or(0);
            let last = records.last().map(|(lsn, _)| *lsn).unwrap_or(next - 1);
            ShipmentPlan::Batch(LogBatch {
                reset: false,
                first_lsn: first,
                last_lsn: last,
                primary_lsn: durable.max(last),
                records: records.into_iter().map(|(_, record)| record).collect(),
            })
        }
        Shipment::Snapshot { pairs, lsn } => ShipmentPlan::Batch(LogBatch {
            reset: true,
            first_lsn: 0,
            last_lsn: lsn,
            primary_lsn: lsn,
            records: seed_core::replica::snapshot_records(pairs),
        }),
    }
}

/// A running read-only replica: replication stream in, read-serving TCP listener out.
pub struct ReplicaNode {
    net: Option<SeedNetServer>,
    core: Arc<SeedServer>,
    stop: Arc<AtomicBool>,
    progress: Arc<Progress>,
    apply_thread: Option<JoinHandle<()>>,
}

impl ReplicaNode {
    /// Starts a replica with default configuration: store in `dir`, stream from `primary`,
    /// reads served on `listen` (use `"127.0.0.1:0"` to let the OS pick a port).  Blocks until
    /// the initial sync is applied — when this returns, the node answers reads.
    pub fn start(
        dir: impl AsRef<std::path::Path>,
        primary: impl ToSocketAddrs,
        listen: impl ToSocketAddrs,
    ) -> ServerResult<Self> {
        Self::with_config(dir, primary, listen, ReplicaConfig::default())
    }

    /// Like [`ReplicaNode::start`], with explicit tuning.
    pub fn with_config(
        dir: impl AsRef<std::path::Path>,
        primary: impl ToSocketAddrs,
        listen: impl ToSocketAddrs,
        config: ReplicaConfig,
    ) -> ServerResult<Self> {
        let transport = |e: std::io::Error| ServerError::Transport(e.to_string());
        let primary =
            primary.to_socket_addrs().map_err(transport)?.next().ok_or_else(|| {
                ServerError::Transport("primary address resolves to nothing".into())
            })?;
        let mut store = ReplicaStore::open(dir).map_err(ServerError::Rejected)?;

        // A store that once was a primary (meta but no replication cursor: an old primary
        // rejoining after a failover, or a promoted replica being re-pointed) — or one the
        // operator re-pointed under a promotion epoch — must NOT resume its cursor: its
        // LSNs belong to a superseded log.  Subscribing from a cursor no log can cover forces
        // the full-snapshot reset path, which rebinds the cursor downwards.
        //
        // The epoch comparison is `>=`, not `>`: the winner's fence record replicates, so a
        // replica that stayed subscribed to the fenced primary may already carry the promotion
        // epoch in its meta — but its cursor still belongs to the OLD log, and resuming it
        // against the new primary would read a foreign LSN space.  Any configured epoch at or
        // past the store's therefore forces the resync; plain restarts (default `epoch: 0`
        // against an un-promoted topology) keep the cheap cursor resume.
        let demoted =
            store.is_initialized().map_err(ServerError::Rejected)? && store.applied_lsn() == 0;
        let repointed = config.epoch > 0
            && config.epoch >= store.topology_epoch().map_err(ServerError::Rejected)?;
        let from_lsn = if demoted || repointed { u64::MAX } else { store.applied_lsn() + 1 };

        // Initial sync: subscribe and apply the first batch — the primary answers immediately
        // (snapshot reset when our cursor fell behind its WAL, or when resync was forced).
        let never_stop = AtomicBool::new(false);
        let mut feed = Feed::open(primary, &config.agent, from_lsn, config.connect_timeout)?;
        let batch = feed.next_batch(&never_stop, &never_stop)?;
        feed.deadline = None; // the stream is live; only shutdown unblocks it from here on
        store.apply(&batch.records, batch.last_lsn, batch.reset).map_err(ServerError::Rejected)?;
        feed.ack(store.applied_lsn())?;
        let db = store.load().map_err(ServerError::Rejected)?;

        let server = SeedServer::new(db);
        server.set_read_only(primary.to_string());
        let promote = Arc::new(PromoteCell::new());
        server.set_promoter(Arc::new(PromotionDriver { cell: promote.clone() }));
        server.set_replica_progress(store.applied_lsn(), batch.primary_lsn);
        repl_metrics().batches_applied.inc();
        if batch.reset {
            repl_metrics().resets.inc();
        }
        repl_metrics().ack_lag.set(batch.primary_lsn.saturating_sub(store.applied_lsn()) as i64);
        // Key the serving snapshot to the synced cursor (the loaded database is plain
        // in-memory state and cannot derive the primary's LSN itself).
        server.with_database_mut_at(store.applied_lsn(), |_| ());
        let net = SeedNetServer::with_config(server, listen, config.net.clone())
            .map_err(|e| ServerError::Transport(e.to_string()))?;
        let core = net.core();
        let stop = Arc::new(AtomicBool::new(false));
        let progress = Arc::new(Progress {
            applied: AtomicU64::new(store.applied_lsn()),
            primary_lsn: AtomicU64::new(batch.primary_lsn),
            resets: AtomicU64::new(u64::from(batch.reset)),
            items_applied: AtomicU64::new(0),
        });

        let apply_thread = {
            let core = core.clone();
            let stop = stop.clone();
            let progress = progress.clone();
            let promote = promote.clone();
            let agent = config.agent.clone();
            let backoff = config.reconnect_backoff;
            let connect_timeout = config.connect_timeout;
            let max_attempts = config.max_reconnect_attempts.max(1);
            std::thread::spawn(move || {
                let mut feed = Some(feed);
                // Set when the serving database may be torn (a failed incremental patch whose
                // wholesale-reload fallback also failed): nothing was published, and only a
                // successful wholesale swap may publish again.
                let mut serving_stale = false;
                // Consecutive failed reconnects; `gave_up` parks the stream once the per-epoch
                // cap is hit.
                let mut failed_attempts: u32 = 0;
                let mut gave_up = false;
                while !stop.load(Ordering::SeqCst) {
                    // A promotion order pre-empts everything, including a given-up stream.
                    if let Some((epoch, new_primary)) = promote.take_order() {
                        failed_attempts = 0;
                        gave_up = false;
                        feed = None; // whatever stream existed is moot after a role change
                        match prepare_promotion(
                            &mut store,
                            primary,
                            &agent,
                            connect_timeout,
                            epoch,
                            &new_primary,
                        ) {
                            Ok(()) => {
                                // Point of no return: flip the durable store in place and swap
                                // the serving core to a writable primary.  `into_primary`
                                // consumes the engine, so both arms end this thread — as a
                                // primary the node has nothing left to stream, and a node that
                                // failed the flip has no store left to stream into.
                                let flipped = store.into_primary(epoch);
                                match flipped {
                                    Ok(db) => {
                                        let receipt = PromotionReceipt {
                                            epoch,
                                            last_lsn: db.durable_lsn().unwrap_or(0),
                                        };
                                        core.install_primary(db);
                                        repl_metrics().ack_lag.set(0);
                                        seed_obs::global().events().emit(
                                            seed_obs::Level::Info,
                                            "repl",
                                            "promoted to primary",
                                            &[("epoch", epoch.to_string())],
                                        );
                                        promote.finish(Ok(receipt));
                                    }
                                    Err(e) => promote.finish(Err(ServerError::Rejected(e))),
                                }
                                return;
                            }
                            Err(e) => {
                                // Lost the race, or could not fence/drain: stay a replica.
                                promote.finish(Err(e));
                                continue;
                            }
                        }
                    }
                    if gave_up {
                        promote.wait_for_order(FEED_POLL);
                        continue;
                    }
                    // (Re-)establish the stream from the durable cursor.
                    let mut live = match feed.take() {
                        Some(live) => live,
                        None => match Feed::open(
                            primary,
                            &agent,
                            store.applied_lsn() + 1,
                            connect_timeout,
                        ) {
                            Ok(live) => {
                                failed_attempts = 0;
                                live
                            }
                            Err(_) => {
                                failed_attempts += 1;
                                repl_metrics().reconnects.inc();
                                if failed_attempts >= max_attempts {
                                    gave_up = true;
                                    seed_obs::global().events().emit(
                                        seed_obs::Level::Warn,
                                        "repl",
                                        "giving up reconnecting to the primary; \
                                         idling until stopped or promoted",
                                        &[
                                            ("primary", primary.to_string()),
                                            ("attempts", failed_attempts.to_string()),
                                        ],
                                    );
                                    continue;
                                }
                                std::thread::sleep(backoff);
                                continue;
                            }
                        },
                    };
                    // Drain batches until the connection drops or the node stops.
                    while let Ok(batch) = live.next_batch(&stop, &promote.pending) {
                        live.deadline = None;
                        // Heartbeats (no records, nothing new) only refresh the observed
                        // primary position — no cursor write, no fsync, no database rebuild.
                        if batch.records.is_empty()
                            && !batch.reset
                            && batch.last_lsn <= store.applied_lsn()
                        {
                            core.set_replica_progress(store.applied_lsn(), batch.primary_lsn);
                            progress.primary_lsn.store(batch.primary_lsn, Ordering::SeqCst);
                            repl_metrics()
                                .ack_lag
                                .set(batch.primary_lsn.saturating_sub(store.applied_lsn()) as i64);
                            if live.ack(store.applied_lsn()).is_err() {
                                break;
                            }
                            continue;
                        }
                        let effects = match store.apply(&batch.records, batch.last_lsn, batch.reset)
                        {
                            Ok(effects) => effects,
                            Err(_) => break,
                        };
                        if live.ack(store.applied_lsn()).is_err() {
                            break;
                        }
                        if batch.reset || serving_stale {
                            // Reset semantics replace the whole key space — and a torn serving
                            // database (earlier failed patch) likewise only recovers by a
                            // wholesale swap: reload and swap, keyed to the new cursor.
                            if batch.reset {
                                progress.resets.fetch_add(1, Ordering::SeqCst);
                                repl_metrics().resets.inc();
                            }
                            match store.load() {
                                Ok(db) => {
                                    core.replace_database_at(db, store.applied_lsn());
                                    serving_stale = false;
                                }
                                Err(_) => {
                                    serving_stale = true;
                                    break;
                                }
                            }
                        } else {
                            // Incremental batch: patch the serving database in place — O(delta)
                            // per batch — and publish the snapshot at the applied LSN.  The
                            // patch and its decode-error fallback (a wholesale reload,
                            // correctness over speed) both run inside ONE publication closure,
                            // so only the final consistent state is ever published: readers
                            // see whole batches, never halves.
                            let patched = core.try_with_database_mut_at(
                                store.applied_lsn(),
                                |db| match store.apply_to_database(db, &effects) {
                                    Ok(touched) => Ok(Some(touched)),
                                    Err(_) => match store.load() {
                                        Ok(fresh) => {
                                            *db = fresh;
                                            Ok(None)
                                        }
                                        Err(_) => Err(()),
                                    },
                                },
                            );
                            match patched {
                                Ok(Some(touched)) => {
                                    progress
                                        .items_applied
                                        .fetch_add(touched as u64, Ordering::SeqCst);
                                }
                                Ok(None) => {}
                                // Patch AND reload failed: nothing was published, but the
                                // serving database may be torn — reconnect, and make the next
                                // applied batch swap wholesale before publishing again.
                                Err(()) => {
                                    serving_stale = true;
                                    break;
                                }
                            }
                        }
                        core.set_replica_progress(store.applied_lsn(), batch.primary_lsn);
                        progress.applied.store(store.applied_lsn(), Ordering::SeqCst);
                        progress.primary_lsn.store(batch.primary_lsn, Ordering::SeqCst);
                        repl_metrics().batches_applied.inc();
                        repl_metrics()
                            .ack_lag
                            .set(batch.primary_lsn.saturating_sub(store.applied_lsn()) as i64);
                    }
                    if !stop.load(Ordering::SeqCst) && !promote.pending.load(Ordering::SeqCst) {
                        std::thread::sleep(backoff);
                    }
                }
            })
        };

        Ok(Self { net: Some(net), core, stop, progress, apply_thread: Some(apply_thread) })
    }

    /// The address this replica serves reads on.
    pub fn local_addr(&self) -> SocketAddr {
        self.net.as_ref().expect("listener lives until shutdown").local_addr()
    }

    /// The replica's serving core (for in-process inspection and tests).
    pub fn core(&self) -> Arc<SeedServer> {
        self.core.clone()
    }

    /// Last primary LSN applied durably on this replica.
    pub fn applied_lsn(&self) -> u64 {
        self.progress.applied.load(Ordering::SeqCst)
    }

    /// The primary's end of log as last observed (heartbeats keep this fresh when idle).
    pub fn primary_lsn(&self) -> u64 {
        self.progress.primary_lsn.load(Ordering::SeqCst)
    }

    /// Reset (full-snapshot) batches this node has applied since it started — zero means every
    /// batch so far was an incremental log catch-up.
    pub fn resets_applied(&self) -> u64 {
        self.progress.resets.load(Ordering::SeqCst)
    }

    /// Cumulative count of per-item records patched onto the serving database by incremental
    /// batches.  Proportional to the shipped deltas (what the primary actually committed), not
    /// to batches × database size — the observable that replica apply is O(delta) per batch.
    pub fn items_applied(&self) -> u64 {
        self.progress.items_applied.load(Ordering::SeqCst)
    }

    /// Orders this node to take over as primary under topology epoch `epoch` — the in-process
    /// equivalent of sending `Request::Promote` to its listener.  `new_primary` is the address
    /// clients should be told to write to from now on (normally this node's own
    /// [`local_addr`](Self::local_addr)).  Blocks until the role change completes: the old
    /// primary is fenced (when reachable), the shipped tail drained, the store flipped.  On
    /// success the node serves writes and its own replication feed.
    pub fn promote(&self, epoch: u64, new_primary: &str) -> ServerResult<PromotionReceipt> {
        self.core.promote(epoch, new_primary)
    }

    /// Polls until this replica has applied at least `lsn` (true) or `timeout` passes (false).
    pub fn wait_for_lsn(&self, lsn: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.applied_lsn() < lsn {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// Stops the stream and the read listener, waiting for both threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(handle) = self.apply_thread.take() {
            let _ = handle.join();
        }
        if let Some(net) = self.net.take() {
            net.shutdown();
        }
    }
}

impl Drop for ReplicaNode {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RemoteClient;
    use crate::wire::Subscribe;
    use seed_core::Database;
    use seed_schema::figure3_schema;
    use seed_server::{ReplicationRole, Update};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64;

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(name: &str) -> PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir()
            .join(format!("seed-net-replication-{}-{name}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_primary(dir: &std::path::Path) -> SeedNetServer {
        let db = Database::create_durable(dir, figure3_schema()).unwrap();
        SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap()
    }

    fn primary_lsn(net: &SeedNetServer) -> u64 {
        net.core().with_database(|db| db.durable_lsn().unwrap())
    }

    #[test]
    fn replicas_converge_serve_reads_and_redirect_writes() {
        let primary_dir = temp_dir("conv-primary");
        let replica_dirs = [temp_dir("conv-r1"), temp_dir("conv-r2")];
        let primary = durable_primary(&primary_dir);
        let addr = primary.local_addr();

        // Writes land on the primary before and after the replicas subscribe.
        let mut writer = RemoteClient::connect(addr).unwrap();
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "Early".into() }])
            .unwrap();
        let replicas: Vec<ReplicaNode> = replica_dirs
            .iter()
            .map(|dir| ReplicaNode::start(dir, addr, "127.0.0.1:0").unwrap())
            .collect();
        writer
            .checkin(vec![
                Update::CreateObject { class: "Data".into(), name: "Alarms".into() },
                Update::CreateObject { class: "Action".into(), name: "Sensor".into() },
                Update::CreateRelationship {
                    association: "Access".into(),
                    bindings: vec![
                        ("from".into(), "Alarms".into()),
                        ("by".into(), "Sensor".into()),
                    ],
                },
            ])
            .unwrap();
        let target = primary_lsn(&primary);
        for replica in &replicas {
            assert!(replica.wait_for_lsn(target, Duration::from_secs(10)), "replica lagged out");
        }

        // Every replica answers the read surface with the primary's answers.
        let mut primary_client = RemoteClient::connect(addr).unwrap();
        let expected = primary_client.query("find Data").unwrap();
        for replica in &replicas {
            let mut client = RemoteClient::connect(replica.local_addr()).unwrap();
            assert_eq!(client.query("find Data").unwrap(), expected);
            assert_eq!(client.retrieve("Early").unwrap().name.to_string(), "Early");
            assert_eq!(client.objects_of_class("Action", true).unwrap().len(), 1);
            assert_eq!(client.relationship_count("Access", true).unwrap(), 1);
            assert!(client.schema().unwrap().class_id("Data").is_some());
            // Writes are redirected to the primary, with its address in the error.
            match client.checkout(&["Alarms"]).unwrap_err() {
                ServerError::ReadOnlyReplica { primary } => {
                    assert_eq!(primary, addr.to_string());
                }
                other => panic!("expected a redirect, got {other:?}"),
            }
            // Replication progress is observable over the wire.
            let status = client.persistence().unwrap().replication.expect("replica status");
            assert_eq!(status.role, ReplicationRole::Replica);
            assert_eq!(status.lag(), 0, "caught-up replica reports zero lag");
            assert_eq!(
                status.snapshot_lsn, status.applied_lsn,
                "the serving snapshot is keyed to the applied cursor (protocol v3)"
            );
        }
        // The primary reports its subscribers.
        let status = primary_client.persistence().unwrap().replication.expect("primary status");
        assert_eq!(status.role, ReplicationRole::Primary);
        assert_eq!(status.subscribers, 2);

        // The read-preferred client fans reads across replicas and writes to the primary.
        let replica_addrs: Vec<_> = replicas.iter().map(|r| r.local_addr()).collect();
        let mut fanout = RemoteClient::connect_read_preferred(addr, &replica_addrs).unwrap();
        assert_eq!(fanout.replica_count(), 2);
        fanout
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "ViaFanout".into() }])
            .unwrap();
        let target = primary_lsn(&primary);
        for replica in &replicas {
            assert!(replica.wait_for_lsn(target, Duration::from_secs(10)));
        }
        for _ in 0..4 {
            assert_eq!(fanout.retrieve("ViaFanout").unwrap().name.to_string(), "ViaFanout");
        }
        fanout.close().unwrap();

        for replica in replicas {
            replica.shutdown();
        }
        primary.shutdown();
        let _ = std::fs::remove_dir_all(&primary_dir);
        for dir in replica_dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn replica_restart_within_retention_budget_catches_up_from_the_log() {
        let primary_dir = temp_dir("retain-primary");
        let replica_dir = temp_dir("retain-replica");
        let primary = durable_primary(&primary_dir);
        let addr = primary.local_addr();
        let mut writer = RemoteClient::connect(addr).unwrap();
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "First".into() }])
            .unwrap();

        // A replica syncs, then goes away.  Its session retires with an ack on record, so the
        // checkpoint below retains the segments past its cursor (the outage fits the default
        // retention budget).
        let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
        assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(10)));
        let stale_cursor = replica.applied_lsn();
        replica.shutdown();

        // While it is away, the primary commits more and checkpoints past the replica's
        // cursor.
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "WhileAway".into() }])
            .unwrap();
        writer.checkpoint().unwrap();
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "AfterCkpt".into() }])
            .unwrap();

        // The restarted replica catches up from the retained log — LogBatch frames, not a
        // full-snapshot reset.
        let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
        assert!(replica.applied_lsn() > stale_cursor);
        assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(10)));
        assert_eq!(
            replica.resets_applied(),
            0,
            "an outage within the retention budget must not force a snapshot resync"
        );
        let mut client = RemoteClient::connect(replica.local_addr()).unwrap();
        for name in ["First", "WhileAway", "AfterCkpt"] {
            assert_eq!(client.retrieve(name).unwrap().name.to_string(), name);
        }
        assert_eq!(client.query("count Data").unwrap().count, 3);
        replica.shutdown();
        primary.shutdown();
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    #[test]
    fn replica_past_the_retention_budget_resyncs_from_snapshot() {
        // A zero retention budget means checkpoints keep nothing for absent replicas — the
        // reconnecting replica's cursor predates the WAL base and the primary must fall back
        // to the full-snapshot reset path (and still converge).
        let primary_dir = temp_dir("ckpt-primary");
        let replica_dir = temp_dir("ckpt-replica");
        let config = seed_storage::EngineConfig {
            retention_budget_bytes: 0,
            ..seed_storage::EngineConfig::default()
        };
        let db = Database::create_durable_with(&primary_dir, figure3_schema(), config).unwrap();
        let primary = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap();
        let addr = primary.local_addr();
        let mut writer = RemoteClient::connect(addr).unwrap();
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "First".into() }])
            .unwrap();

        let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
        assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(10)));
        let stale_cursor = replica.applied_lsn();
        replica.shutdown();

        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "WhileAway".into() }])
            .unwrap();
        writer.checkpoint().unwrap();
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "AfterCkpt".into() }])
            .unwrap();

        let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
        assert!(replica.applied_lsn() > stale_cursor);
        assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(10)));
        assert!(
            replica.resets_applied() >= 1,
            "a cursor past the retention budget must resync via a reset snapshot"
        );
        let mut client = RemoteClient::connect(replica.local_addr()).unwrap();
        for name in ["First", "WhileAway", "AfterCkpt"] {
            assert_eq!(client.retrieve(name).unwrap().name.to_string(), name);
        }
        assert_eq!(client.query("count Data").unwrap().count, 3);
        replica.shutdown();
        primary.shutdown();
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    #[test]
    fn replica_reconnects_after_losing_the_primary() {
        let primary_dir = temp_dir("reconnect-primary");
        let replica_dir = temp_dir("reconnect-replica");
        let primary = durable_primary(&primary_dir);
        let addr = primary.local_addr();
        let mut writer = RemoteClient::connect(addr).unwrap();
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "BeforeLoss".into() }])
            .unwrap();
        let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
        assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(10)));

        // The primary restarts on the same durable directory and the same port.
        primary.shutdown();
        let db = Database::open_durable(&primary_dir).unwrap();
        let primary = SeedNetServer::bind(SeedServer::new(db), addr).unwrap();
        let mut writer = RemoteClient::connect(addr).unwrap();
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "AfterLoss".into() }])
            .unwrap();

        // The replica's reconnect loop picks the stream back up from its durable cursor.
        assert!(
            replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(10)),
            "replica must reconnect and catch up"
        );
        let mut client = RemoteClient::connect(replica.local_addr()).unwrap();
        assert!(client.retrieve("BeforeLoss").is_ok());
        assert!(client.retrieve("AfterLoss").is_ok());
        replica.shutdown();
        primary.shutdown();
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    #[test]
    fn replica_ahead_of_a_shorter_log_rebinds_downwards_instead_of_looping() {
        // A replica synced far into primary A must be able to follow a primary whose log is
        // *shorter* (restored from backup / recreated): the reset snapshot rebinds the cursor
        // downwards via the ack, and the stream converges instead of re-shipping the snapshot
        // forever.
        let old_primary_dir = temp_dir("rebind-old-primary");
        let new_primary_dir = temp_dir("rebind-new-primary");
        let replica_dir = temp_dir("rebind-replica");
        let primary = durable_primary(&old_primary_dir);
        let addr = primary.local_addr();
        let mut writer = RemoteClient::connect(addr).unwrap();
        for i in 0..10 {
            writer
                .checkin(vec![Update::CreateObject {
                    class: "Data".into(),
                    name: format!("Old{i}"),
                }])
                .unwrap();
        }
        let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
        assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(10)));
        let high_cursor = replica.applied_lsn();
        replica.shutdown();
        primary.shutdown();

        // A brand-new primary on the same address, with a much shorter log.
        let db = Database::create_durable(&new_primary_dir, figure3_schema()).unwrap();
        let primary = SeedNetServer::bind(SeedServer::new(db), addr).unwrap();
        let mut writer = RemoteClient::connect(addr).unwrap();
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "Fresh".into() }])
            .unwrap();
        let target = primary_lsn(&primary);
        assert!(target < high_cursor, "the new log must really be shorter");

        let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
        assert!(replica.applied_lsn() <= target, "the cursor rebound downwards");
        let mut reader = RemoteClient::connect(replica.local_addr()).unwrap();
        assert!(reader.retrieve("Fresh").is_ok());
        assert!(reader.retrieve("Old0").is_err(), "old-log state was reset away");
        // And the stream keeps converging afterwards (it is not stuck in a snapshot loop).
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "After".into() }])
            .unwrap();
        assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(10)));
        assert!(reader.retrieve("After").is_ok());
        replica.shutdown();
        primary.shutdown();
        for dir in [&old_primary_dir, &new_primary_dir, &replica_dir] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn reconnects_are_capped_and_a_given_up_replica_is_still_promotable() {
        let primary_dir = temp_dir("cap-primary");
        let replica_dir = temp_dir("cap-replica");
        let primary = durable_primary(&primary_dir);
        let addr = primary.local_addr();
        let mut writer = RemoteClient::connect(addr).unwrap();
        writer
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "Kept".into() }])
            .unwrap();
        let config = ReplicaConfig {
            reconnect_backoff: Duration::from_millis(5),
            max_reconnect_attempts: 3,
            ..ReplicaConfig::default()
        };
        let replica = ReplicaNode::with_config(&replica_dir, addr, "127.0.0.1:0", config).unwrap();
        assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(10)));

        // The primary dies for good.  The replica burns through its capped attempts, warns
        // once, and idles instead of hammering the dead address forever.
        primary.shutdown();
        let reconnects_before =
            seed_obs::global().snapshot().counter("repl_reconnect_total").unwrap_or(0);
        if seed_obs::recording_compiled_in() {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                let warned = seed_obs::global().events().recent().iter().any(|e| {
                    e.level == seed_obs::Level::Warn && e.message.contains("giving up reconnecting")
                });
                if warned {
                    break;
                }
                assert!(std::time::Instant::now() < deadline, "the give-up warning never came");
                std::thread::sleep(Duration::from_millis(10));
            }
            assert!(
                seed_obs::global().snapshot().counter("repl_reconnect_total").unwrap_or(0)
                    >= reconnects_before + 3,
                "each failed attempt must bump repl_reconnect_total"
            );
        } else {
            // Recording is compiled out; give the capped attempts time to burn through.
            std::thread::sleep(Duration::from_millis(500));
        }
        // Still serving reads from the last applied state.
        let mut reader = RemoteClient::connect(replica.local_addr()).unwrap();
        assert_eq!(reader.retrieve("Kept").unwrap().name.to_string(), "Kept");

        // And still promotable: the dead primary cannot be fenced, so the promotion proceeds
        // with the shipped tail, and the node starts taking writes.
        let receipt = replica.promote(1, &replica.local_addr().to_string()).unwrap();
        assert_eq!(receipt.epoch, 1);
        let mut client = RemoteClient::connect(replica.local_addr()).unwrap();
        client
            .checkin(vec![Update::CreateObject { class: "Data".into(), name: "PostPromo".into() }])
            .unwrap();
        assert_eq!(client.query("count Data").unwrap().count, 2);
        let health = client.health().unwrap();
        assert_eq!(health.role, ReplicationRole::Primary);
        assert!(health.ready);
        replica.shutdown();
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    #[test]
    fn subscribing_to_an_in_memory_primary_is_rejected() {
        let primary =
            SeedNetServer::bind(SeedServer::new(Database::new(figure3_schema())), "127.0.0.1:0")
                .unwrap();
        let err = Feed::open(primary.local_addr(), "test", 1, Duration::from_secs(5))
            .and_then(|mut feed| feed.next_batch(&AtomicBool::new(false), &AtomicBool::new(false)))
            .unwrap_err();
        assert!(
            err.to_string().contains("in-memory"),
            "expected the in-memory rejection, got: {err}"
        );
        primary.shutdown();
    }

    #[test]
    fn a_plain_client_may_not_send_replication_frames() {
        let dir = temp_dir("plain-client");
        let primary = durable_primary(&dir);
        let stream = TcpStream::connect(primary.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        write_frame(&mut writer, FrameKind::Hello, &Hello::current("raw").encode()).unwrap();
        assert_eq!(read_frame(&mut reader).unwrap().kind, FrameKind::Welcome);
        // A client-role session sending Subscribe gets a protocol error, not a stream.
        write_frame(&mut writer, FrameKind::Subscribe, &Subscribe { from_lsn: 1 }.encode())
            .unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert_eq!(reply.kind, FrameKind::Response);
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            seed_server::Response::Error(ServerError::Protocol(_))
        ));
        primary.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
