//! Offline stand-in for `bytes`: a growable [`BytesMut`] buffer plus the [`Buf`]/[`BufMut`]
//! trait methods the `seed-storage` codec uses.
//!
//! The real crate's zero-copy reference counting is not reproduced — `BytesMut` here is a thin
//! wrapper around `Vec<u8>` — but every method signature matches, so the codec compiles
//! unchanged against either implementation.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer with the `bytes::BytesMut` API surface used by the workspace.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self { inner: Vec::with_capacity(cap) }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, returning the underlying vector without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

/// Write-side buffer operations (little- and big-endian fixed-width integers, raw slices).
pub trait BufMut {
    /// Appends a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_le {
    ($self:ident, $ty:ty) => {{
        let n = std::mem::size_of::<$ty>();
        let (head, rest) = $self.split_at(n);
        let value = <$ty>::from_le_bytes(head.try_into().expect("split_at returned n bytes"));
        *$self = rest;
        value
    }};
}

/// Read-side buffer operations over an advancing cursor.
///
/// Implemented for `&[u8]`: each `get_*` consumes bytes from the front of the slice.  Like the
/// real `bytes` crate, reading past the end panics — `seed-storage`'s `Decoder`
/// (`crates/storage/src/codec.rs`) checks lengths before calling these.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        get_le!(self, u8)
    }

    fn get_u16_le(&mut self) -> u16 {
        get_le!(self, u16)
    }

    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }

    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }

    fn get_i64_le(&mut self) -> i64 {
        get_le!(self, i64)
    }

    fn get_f64_le(&mut self) -> f64 {
        get_le!(self, f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xy");
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_i64_le(), -42);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert_eq!(cursor, b"xy");
        assert_eq!(Buf::remaining(&cursor), 2);
    }

    #[test]
    fn vec_and_bytesmut_agree() {
        let mut a = BytesMut::with_capacity(8);
        let mut b: Vec<u8> = Vec::new();
        a.put_u32_le(99);
        b.put_u32_le(99);
        assert_eq!(a.to_vec(), b);
        assert_eq!(a.into_vec(), b);
    }
}
