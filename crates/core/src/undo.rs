//! Undo log for single-user transactions.
//!
//! SEED is a single-user system; the database layer applies every operation immediately (after
//! consistency checking) and, when a transaction is open, records the inverse operation here.
//! Rolling back replays the inverses in reverse order.  The undo log is also what the client
//! side of the multi-user extension (`seed-server`) uses to discard a rejected check-in.

use crate::ident::{ObjectId, RelationshipId};
use crate::object::ObjectRecord;
use crate::relationship::RelationshipRecord;
use crate::store::DataStore;

/// One recorded inverse operation.
#[derive(Debug, Clone, PartialEq)]
pub enum UndoEntry {
    /// An object was created; undo removes it physically (it never existed).
    ObjectCreated(ObjectId),
    /// An object was mutated (value, class, name, tombstone, pattern flag); undo restores the
    /// full previous record.
    ObjectChanged(Box<ObjectRecord>),
    /// A relationship was created; undo removes it physically.
    RelationshipCreated(RelationshipId),
    /// A relationship was mutated; undo restores the previous record.
    RelationshipChanged(Box<RelationshipRecord>),
    /// An inherits-link was added; undo removes it.
    InheritsAdded {
        /// The inheriting object.
        inheritor: ObjectId,
        /// The inherited pattern.
        pattern: ObjectId,
    },
    /// An inherits-link was removed; undo re-adds it.
    InheritsRemoved {
        /// The inheriting object.
        inheritor: ObjectId,
        /// The inherited pattern.
        pattern: ObjectId,
    },
}

/// A log of inverse operations for one open transaction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UndoLog {
    entries: Vec<UndoEntry>,
}

impl UndoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an inverse operation.
    pub fn push(&mut self, entry: UndoEntry) {
        self.entries.push(entry);
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies all inverses in reverse order, restoring the store to its state at the start of
    /// the transaction.
    pub fn rollback(self, store: &mut DataStore) {
        for entry in self.entries.into_iter().rev() {
            match entry {
                UndoEntry::ObjectCreated(id) => {
                    store.remove_object(id);
                }
                UndoEntry::ObjectChanged(previous) => {
                    let id = previous.id;
                    store.update_object(id, |o| *o = *previous);
                }
                UndoEntry::RelationshipCreated(id) => {
                    store.remove_relationship(id);
                }
                UndoEntry::RelationshipChanged(previous) => {
                    let id = previous.id;
                    store.update_relationship(id, |r| *r = *previous);
                }
                UndoEntry::InheritsAdded { inheritor, pattern } => {
                    store.remove_inherits(inheritor, pattern);
                }
                UndoEntry::InheritsRemoved { inheritor, pattern } => {
                    store.add_inherits(inheritor, pattern);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ObjectName;
    use crate::value::Value;
    use seed_schema::{AssociationId, ClassId};

    #[test]
    fn rollback_restores_previous_state() {
        let mut store = DataStore::new();
        let mut log = UndoLog::new();
        assert!(log.is_empty());

        // Pre-existing object whose value the transaction changes.
        let existing = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(
            existing,
            ClassId(0),
            ObjectName::root("Kept"),
            None,
        ));
        let before = store.object(existing).unwrap().clone();
        log.push(UndoEntry::ObjectChanged(Box::new(before)));
        store.update_object(existing, |o| o.value = Value::string("modified"));

        // Object created inside the transaction.
        let created = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(created, ClassId(0), ObjectName::root("New"), None));
        log.push(UndoEntry::ObjectCreated(created));

        // Relationship created inside the transaction.
        let rel = store.allocate_relationship_id();
        store.insert_relationship(RelationshipRecord::new(
            rel,
            AssociationId(0),
            vec![("a".into(), existing), ("b".into(), created)],
        ));
        log.push(UndoEntry::RelationshipCreated(rel));

        // Inherits link added inside the transaction.
        store.add_inherits(created, existing);
        log.push(UndoEntry::InheritsAdded { inheritor: created, pattern: existing });

        assert_eq!(log.len(), 4);
        log.rollback(&mut store);

        assert_eq!(store.object(existing).unwrap().value, Value::Undefined);
        assert!(store.object(created).is_none());
        assert!(store.relationship(rel).is_none());
        assert!(store.object_by_name("New").is_none());
        assert!(store.inherited_patterns(created).is_empty());
        assert_eq!(store.live_object_count(), 1);
    }

    #[test]
    fn rollback_restores_removed_inherits_and_changed_relationships() {
        let mut store = DataStore::new();
        let a = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(a, ClassId(0), ObjectName::root("A"), None));
        let p = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(p, ClassId(0), ObjectName::root("P"), None));
        store.add_inherits(a, p);
        let rel = store.allocate_relationship_id();
        store.insert_relationship(RelationshipRecord::new(
            rel,
            AssociationId(0),
            vec![("a".into(), a), ("b".into(), p)],
        ));

        let mut log = UndoLog::new();
        // Transaction removes the inherits link and re-classifies the relationship.
        let before = store.relationship(rel).unwrap().clone();
        log.push(UndoEntry::RelationshipChanged(Box::new(before)));
        store.update_relationship(rel, |r| r.association = AssociationId(5));
        store.remove_inherits(a, p);
        log.push(UndoEntry::InheritsRemoved { inheritor: a, pattern: p });

        log.rollback(&mut store);
        assert_eq!(store.relationship(rel).unwrap().association, AssociationId(0));
        assert_eq!(store.inherited_patterns(a), vec![p]);
    }
}
