//! Write-ahead log.
//!
//! Every engine mutation is appended to the log before the corresponding page is allowed to be
//! written back.  Frames are CRC-protected; recovery replays committed transactions in order and
//! stops at the first corrupt or torn frame (everything after a torn write is, by definition,
//! not yet durable).
//!
//! Frame layout: `len: u32 | crc: u32 | payload: len bytes`.
//!
//! ## Checkpoint-stable LSNs
//!
//! LSNs are **absolute**: they number every record ever appended, and a checkpoint truncation
//! does not reset them.  The log keeps a *base* — the number of records truncated away — so the
//! first physical record in the file always carries LSN `base + 1`.  For file-backed logs the
//! base survives restarts in a sidecar (`<log>.base`, written *before* the truncation: a crash
//! between the two leaves records labelled with too-high LSNs, which replication subscribers
//! re-apply idempotently, instead of re-using already-consumed LSNs for different content).
//! This is what lets a replication subscriber hold a durable cursor into the primary's log
//! ([`WriteAheadLog::read_from`]) across checkpoints and restarts on either side.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::codec::{crc32, Decoder, Encoder};
use crate::error::{StorageError, StorageResult};

/// Log sequence number: the absolute, checkpoint-stable index of a record in the log (1-based;
/// 0 means "none").  Truncation advances the log's base instead of resetting the numbering.
pub type Lsn = u64;

/// The answer to a tail read ([`WriteAheadLog::read_from`]): either the records from the asked
/// position to the durable end, or the news that the position has been truncated away and the
/// subscriber must resynchronize from a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// Every record with `lsn >= from`, in order (possibly empty when the caller is caught up).
    Records(Vec<(Lsn, LogRecord)>),
    /// The asked position is no longer in the log — either a checkpoint truncated it away, or
    /// the caller's cursor is ahead of this log (a different or reset log).  `oldest` is the
    /// first LSN still available.
    Truncated {
        /// The first LSN the log can still serve.
        oldest: Lsn,
    },
}

/// A logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A transaction began.
    Begin { txn: u64 },
    /// A transaction committed; its effects must survive recovery.
    Commit { txn: u64 },
    /// A transaction aborted; its effects must be discarded by recovery.
    Abort { txn: u64 },
    /// A key was set to a value within a transaction.
    Put { txn: u64, key: Vec<u8>, value: Vec<u8> },
    /// A key was removed within a transaction.
    Delete { txn: u64, key: Vec<u8> },
    /// A checkpoint: all effects of LSNs up to and including `up_to` are in the page store.
    Checkpoint { up_to: Lsn },
}

impl LogRecord {
    const TAG_BEGIN: u8 = 1;
    const TAG_COMMIT: u8 = 2;
    const TAG_ABORT: u8 = 3;
    const TAG_PUT: u8 = 4;
    const TAG_DELETE: u8 = 5;
    const TAG_CHECKPOINT: u8 = 6;

    /// Serializes the record to bytes (without the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            LogRecord::Begin { txn } => {
                e.put_u8(Self::TAG_BEGIN).put_u64(*txn);
            }
            LogRecord::Commit { txn } => {
                e.put_u8(Self::TAG_COMMIT).put_u64(*txn);
            }
            LogRecord::Abort { txn } => {
                e.put_u8(Self::TAG_ABORT).put_u64(*txn);
            }
            LogRecord::Put { txn, key, value } => {
                e.put_u8(Self::TAG_PUT).put_u64(*txn).put_bytes(key).put_bytes(value);
            }
            LogRecord::Delete { txn, key } => {
                e.put_u8(Self::TAG_DELETE).put_u64(*txn).put_bytes(key);
            }
            LogRecord::Checkpoint { up_to } => {
                e.put_u8(Self::TAG_CHECKPOINT).put_u64(*up_to);
            }
        }
        e.finish()
    }

    /// Deserializes a record produced by [`LogRecord::encode`].
    pub fn decode(bytes: &[u8]) -> StorageResult<Self> {
        let mut d = Decoder::new(bytes);
        let tag = d.get_u8()?;
        let rec = match tag {
            Self::TAG_BEGIN => LogRecord::Begin { txn: d.get_u64()? },
            Self::TAG_COMMIT => LogRecord::Commit { txn: d.get_u64()? },
            Self::TAG_ABORT => LogRecord::Abort { txn: d.get_u64()? },
            Self::TAG_PUT => LogRecord::Put {
                txn: d.get_u64()?,
                key: d.get_bytes()?.to_vec(),
                value: d.get_bytes()?.to_vec(),
            },
            Self::TAG_DELETE => {
                LogRecord::Delete { txn: d.get_u64()?, key: d.get_bytes()?.to_vec() }
            }
            Self::TAG_CHECKPOINT => LogRecord::Checkpoint { up_to: d.get_u64()? },
            other => return Err(StorageError::Corrupt(format!("unknown WAL record tag {other}"))),
        };
        Ok(rec)
    }
}

enum WalBackend {
    Memory(Vec<u8>),
    File { file: File, path: PathBuf },
}

/// An append-only write-ahead log.
///
/// Lock order: `backend` before `base` before `next_lsn` (never the other way around), so that
/// readers holding the backend lock observe a base consistent with the bytes they read.
pub struct WriteAheadLog {
    backend: Mutex<WalBackend>,
    /// Number of records truncated away; the first physical record carries LSN `base + 1`.
    base: Mutex<Lsn>,
    next_lsn: Mutex<Lsn>,
}

impl WriteAheadLog {
    /// Creates an in-memory log (used for ephemeral databases and tests).
    pub fn in_memory() -> Self {
        Self {
            backend: Mutex::new(WalBackend::Memory(Vec::new())),
            base: Mutex::new(0),
            next_lsn: Mutex::new(1),
        }
    }

    /// Sidecar path holding the base LSN of a file-backed log.
    fn base_path(path: &Path) -> PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".base");
        PathBuf::from(p)
    }

    fn read_base(path: &Path) -> Lsn {
        std::fs::read(Self::base_path(path))
            .ok()
            .and_then(|bytes| bytes.try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0)
    }

    fn write_base(path: &Path, base: Lsn) -> StorageResult<()> {
        let fin = Self::base_path(path);
        let tmp = fin.with_extension("base.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&base.to_le_bytes())?;
            // The truncation ordering argument only holds if the base really reaches disk
            // first: sync the bytes, then the rename (via the directory), before the caller
            // shrinks the log.
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &fin)?;
        if let Some(dir) = fin.parent() {
            if let Ok(dir) = File::open(dir) {
                let _ = dir.sync_data();
            }
        }
        Ok(())
    }

    /// Opens (or creates) a log file at `path`.
    ///
    /// A torn frame at the tail (a write interrupted by a crash) is physically truncated away,
    /// so that subsequent appends continue the valid prefix instead of landing behind garbage
    /// that every later recovery would stop at.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let base = Self::read_base(&path);
        let file = OpenOptions::new().read(true).append(true).create(true).open(&path)?;
        let wal = Self {
            backend: Mutex::new(WalBackend::File { file, path }),
            base: Mutex::new(base),
            next_lsn: Mutex::new(base + 1),
        };
        let (existing, valid_len) = {
            let mut backend = wal.backend.lock();
            let WalBackend::File { file, .. } = &mut *backend else { unreachable!() };
            file.seek(SeekFrom::Start(0))?;
            let mut raw = Vec::new();
            file.read_to_end(&mut raw)?;
            let (records, valid_len) = Self::parse_frames(&raw, base)?;
            if (valid_len as u64) < raw.len() as u64 {
                file.set_len(valid_len as u64)?;
                file.sync_data()?;
            }
            file.seek(SeekFrom::End(0))?;
            (records, valid_len)
        };
        let _ = valid_len;
        *wal.next_lsn.lock() = base + existing.len() as Lsn + 1;
        Ok(wal)
    }

    fn frame_bytes(record: &LogRecord) -> Vec<u8> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Appends a record, returning its LSN.  The append is buffered; call [`WriteAheadLog::sync`]
    /// to make it durable.
    pub fn append(&self, record: &LogRecord) -> StorageResult<Lsn> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Appends a batch of records with **one** backend write (the group-commit primitive: a
    /// committing transaction hands its `Begin`/`Put`/`Delete`/`Commit` frames over in a single
    /// contiguous write, then syncs once).  Returns the LSN of the first record.
    pub fn append_batch(&self, records: &[LogRecord]) -> StorageResult<Lsn> {
        let mut frames = Vec::new();
        for record in records {
            frames.extend_from_slice(&Self::frame_bytes(record));
        }
        let mut backend = self.backend.lock();
        match &mut *backend {
            WalBackend::Memory(buf) => buf.extend_from_slice(&frames),
            WalBackend::File { file, .. } => file.write_all(&frames)?,
        }
        let mut lsn = self.next_lsn.lock();
        let first = *lsn;
        *lsn += records.len() as Lsn;
        Ok(first)
    }

    /// Forces appended records to durable storage.
    pub fn sync(&self) -> StorageResult<()> {
        let backend = self.backend.lock();
        if let WalBackend::File { file, .. } = &*backend {
            file.sync_data()?;
        }
        Ok(())
    }

    /// LSN that will be assigned to the next appended record.
    pub fn next_lsn(&self) -> Lsn {
        *self.next_lsn.lock()
    }

    /// LSN of the last appended record (0 when nothing was ever appended).
    pub fn durable_lsn(&self) -> Lsn {
        *self.next_lsn.lock() - 1
    }

    /// Number of records truncated away; the log still holds LSNs `base_lsn() + 1 ..`.
    pub fn base_lsn(&self) -> Lsn {
        *self.base.lock()
    }

    /// Reads every valid record from the beginning of the log.
    ///
    /// Stops silently at the first truncated or checksum-failing frame — the standard WAL
    /// recovery rule.  A crash can tear the final (multi-frame, multi-sector) group-commit
    /// batch anywhere, including out of order: a frame in the middle of the batch may be torn
    /// while bytes of later frames exist after it.  Any frame past the first invalid one was
    /// therefore never acknowledged (its batch's sync cannot have returned), so recovery keeps
    /// the valid prefix and discards the rest instead of refusing to open.
    pub fn read_all(&self) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        let (_, (records, _, _)) = self.read_consistent(0)?;
        Ok(records)
    }

    /// Reads the base and the records from `min_lsn` on under one backend lock, so truncation
    /// cannot interleave between the two.  Also returns the total record count (frames before
    /// `min_lsn` are walked for framing but not decoded — the tail-poll path pays header
    /// parsing, not record decoding, for the part it will not ship).
    fn read_consistent(&self, min_lsn: Lsn) -> StorageResult<(Lsn, ParsedTail)> {
        let mut backend = self.backend.lock();
        let base = *self.base.lock();
        let raw = match &mut *backend {
            WalBackend::Memory(buf) => buf.clone(),
            WalBackend::File { file, .. } => {
                file.seek(SeekFrom::Start(0))?;
                let mut buf = Vec::new();
                file.read_to_end(&mut buf)?;
                file.seek(SeekFrom::End(0))?;
                buf
            }
        };
        Ok((base, Self::parse_frames_from(&raw, base, min_lsn)?))
    }

    /// The tail of the log from LSN `from` (inclusive) to the durable end — the replication
    /// cursor primitive.  Returns [`WalTail::Truncated`] when `from` is no longer in the log
    /// (a checkpoint truncated it away) **or** lies beyond it (the caller's cursor belongs to a
    /// different or reset log); in both cases the caller must resynchronize from a snapshot.
    pub fn read_from(&self, from: Lsn) -> StorageResult<WalTail> {
        let (base, (records, end, _)) = self.read_consistent(from)?;
        if from <= base || from > end + 1 {
            return Ok(WalTail::Truncated { oldest: base + 1 });
        }
        Ok(WalTail::Records(records))
    }

    /// Parses raw log bytes into records (numbered from `base + 1`) plus the byte length of the
    /// valid prefix (everything after that offset is a torn tail the caller may truncate away).
    fn parse_frames(raw: &[u8], base: Lsn) -> StorageResult<(Vec<(Lsn, LogRecord)>, usize)> {
        let (records, _, valid_len) = Self::parse_frames_from(raw, base, 0)?;
        Ok((records, valid_len))
    }

    /// Like [`WriteAheadLog::parse_frames`], but only records with `lsn >= min_lsn` are decoded
    /// and returned — frames below the cursor are CRC-checked and skipped, which is what keeps
    /// a replication tail read O(file bytes + tail records), not O(all records).  Also returns
    /// the LSN of the last valid frame and the valid byte length.
    fn parse_frames_from(raw: &[u8], base: Lsn, min_lsn: Lsn) -> StorageResult<ParsedTail> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut lsn: Lsn = base + 1;
        while pos + 8 <= raw.len() {
            let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if pos + 8 + len > raw.len() {
                // Torn write at the tail: everything before it is still valid.
                break;
            }
            let payload = &raw[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                // Invalid frame: the tail of a torn (possibly out-of-order) batch write.
                // Everything from here on was never acknowledged; stop cleanly.
                break;
            }
            if lsn >= min_lsn {
                out.push((lsn, LogRecord::decode(payload)?));
            }
            pos += 8 + len;
            lsn += 1;
        }
        Ok((out, lsn - 1, pos))
    }

    /// Truncates the log (used after a checkpoint has made its contents redundant).  The LSN
    /// numbering is **not** reset: the base advances to the last truncated LSN, so the next
    /// append continues the absolute sequence ([`WriteAheadLog::read_from`] cursors stay valid
    /// or report [`WalTail::Truncated`], never silently re-bind to different records).
    pub fn truncate(&self) -> StorageResult<()> {
        let mut backend = self.backend.lock();
        let new_base = *self.next_lsn.lock() - 1;
        match &mut *backend {
            WalBackend::Memory(buf) => buf.clear(),
            WalBackend::File { file, path } => {
                file.sync_data()?;
                // The base sidecar is written before the log shrinks: if we crash in between,
                // the surviving records re-parse under too-HIGH LSNs, which subscribers
                // re-apply idempotently — never under already-consumed LSNs with new content.
                Self::write_base(path, new_base)?;
                let new_file =
                    OpenOptions::new().read(true).write(true).truncate(true).open(&*path)?;
                new_file.sync_data()?;
                // Re-open in append mode to keep the invariant that writes go to the end.
                *file = OpenOptions::new().read(true).append(true).open(&*path)?;
            }
        }
        *self.base.lock() = new_base;
        Ok(())
    }

    /// Bytes currently held by the log.
    pub fn size_bytes(&self) -> StorageResult<u64> {
        let backend = self.backend.lock();
        match &*backend {
            WalBackend::Memory(buf) => Ok(buf.len() as u64),
            WalBackend::File { file, .. } => Ok(file.metadata()?.len()),
        }
    }
}

/// One decoded stretch of the log: the records kept, the LSN of the last valid frame, and the
/// byte length of the valid prefix (private parsing plumbing).
type ParsedTail = (Vec<(Lsn, LogRecord)>, Lsn, usize);

/// One logged effect on a key: `Some(value)` for a put, `None` for a delete.
pub type KeyEffect = (Vec<u8>, Option<Vec<u8>>);

/// Replays a log into the set of committed key/value effects.
///
/// Effects of transactions without a `Commit` record are discarded, matching the paper's
/// requirement that the database "permanently ensures consistency": only complete, checked
/// transactions become visible.
pub fn replay_committed(records: &[(Lsn, LogRecord)]) -> Vec<KeyEffect> {
    use std::collections::HashMap;
    let mut pending: HashMap<u64, Vec<KeyEffect>> = HashMap::new();
    let mut committed: Vec<KeyEffect> = Vec::new();
    for (_, rec) in records {
        match rec {
            LogRecord::Begin { txn } => {
                pending.entry(*txn).or_default();
            }
            LogRecord::Put { txn, key, value } => {
                pending.entry(*txn).or_default().push((key.clone(), Some(value.clone())));
            }
            LogRecord::Delete { txn, key } => {
                pending.entry(*txn).or_default().push((key.clone(), None));
            }
            LogRecord::Commit { txn } => {
                if let Some(effects) = pending.remove(txn) {
                    committed.extend(effects);
                }
            }
            LogRecord::Abort { txn } => {
                pending.remove(txn);
            }
            LogRecord::Checkpoint { .. } => {}
        }
    }
    committed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seed-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        let records = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Put { txn: 1, key: b"obj/Alarms".to_vec(), value: b"data".to_vec() },
            LogRecord::Delete { txn: 1, key: b"obj/Old".to_vec() },
            LogRecord::Commit { txn: 1 },
            LogRecord::Abort { txn: 2 },
            LogRecord::Checkpoint { up_to: 42 },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(LogRecord::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn decode_unknown_tag_errors() {
        assert!(LogRecord::decode(&[99, 0, 0]).is_err());
    }

    #[test]
    fn memory_log_appends_and_reads_back() {
        let wal = WriteAheadLog::in_memory();
        let l1 = wal.append(&LogRecord::Begin { txn: 7 }).unwrap();
        let l2 = wal.append(&LogRecord::Commit { txn: 7 }).unwrap();
        assert_eq!(l1, 1);
        assert_eq!(l2, 2);
        let all = wal.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, LogRecord::Begin { txn: 7 });
        assert_eq!(all[1].1, LogRecord::Commit { txn: 7 });
    }

    #[test]
    fn file_log_survives_reopen() {
        let path = temp_path("reopen.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = WriteAheadLog::open(&path).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Put { txn: 1, key: b"k".to_vec(), value: b"v".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = WriteAheadLog::open(&path).unwrap();
            let all = wal.read_all().unwrap();
            assert_eq!(all.len(), 3);
            assert_eq!(wal.next_lsn(), 4);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = temp_path("torn.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = WriteAheadLog::open(&path).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn write: append garbage that looks like the start of a frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let wal = WriteAheadLog::open(&path).unwrap();
        let all = wal.read_all().unwrap();
        assert_eq!(all.len(), 2, "torn frame must be dropped, durable prefix kept");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_mid_frame_recovers_committed_prefix() {
        let path = temp_path("midframe.wal");
        let _ = std::fs::remove_file(&path);
        let committed_len;
        {
            let wal = WriteAheadLog::open(&path).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Put { txn: 1, key: b"a".to_vec(), value: b"1".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
            committed_len = wal.size_bytes().unwrap();
            // A second transaction whose frames the crash will cut in half.
            wal.append(&LogRecord::Begin { txn: 2 }).unwrap();
            wal.append(&LogRecord::Put { txn: 2, key: b"b".to_vec(), value: b"2".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 2 }).unwrap();
            wal.sync().unwrap();
        }
        // Crash mid-frame: cut the file a few bytes into the torn region.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..(committed_len as usize + 5)]).unwrap();

        let wal = WriteAheadLog::open(&path).unwrap();
        let records: Vec<LogRecord> = wal.read_all().unwrap().into_iter().map(|(_, r)| r).collect();
        assert_eq!(
            records,
            vec![
                LogRecord::Begin { txn: 1 },
                LogRecord::Put { txn: 1, key: b"a".to_vec(), value: b"1".to_vec() },
                LogRecord::Commit { txn: 1 },
            ],
            "recovery stops at the last valid committed frame"
        );
        let effects = replay_committed(&wal.read_all().unwrap());
        assert_eq!(effects, vec![(b"a".to_vec(), Some(b"1".to_vec()))]);
        // The torn bytes were physically truncated, so new appends extend the valid prefix.
        assert_eq!(wal.size_bytes().unwrap(), committed_len);
        wal.append(&LogRecord::Begin { txn: 3 }).unwrap();
        wal.append(&LogRecord::Commit { txn: 3 }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let wal = WriteAheadLog::open(&path).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 5, "appends after a torn tail stay readable");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_inside_uncommitted_transaction_is_dropped() {
        let path = temp_path("torn-uncommitted.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = WriteAheadLog::open(&path).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Put { txn: 1, key: b"k".to_vec(), value: b"v".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            // Uncommitted transaction, then the crash tears its last frame.
            wal.append(&LogRecord::Begin { txn: 2 }).unwrap();
            wal.append(&LogRecord::Put { txn: 2, key: b"x".to_vec(), value: b"y".to_vec() })
                .unwrap();
            wal.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let wal = WriteAheadLog::open(&path).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records.len(), 4, "only the torn frame is dropped");
        let effects = replay_committed(&records);
        assert_eq!(effects, vec![(b"k".to_vec(), Some(b"v".to_vec()))]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partially_overwritten_final_frame_is_treated_as_torn() {
        let path = temp_path("partial-final.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = WriteAheadLog::open(&path).unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.append(&LogRecord::Put { txn: 2, key: b"k".to_vec(), value: b"v".to_vec() })
                .unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte inside the LAST frame's payload: a torn (partially written) tail frame,
        // not interior corruption — recovery must stop cleanly before it.
        {
            let mut bytes = std::fs::read(&path).unwrap();
            let n = bytes.len();
            bytes[n - 2] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        }
        let wal = WriteAheadLog::open(&path).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1, LogRecord::Commit { txn: 1 });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_batch_is_one_contiguous_write() {
        let wal = WriteAheadLog::in_memory();
        let first = wal
            .append_batch(&[
                LogRecord::Begin { txn: 9 },
                LogRecord::Put { txn: 9, key: b"k".to_vec(), value: b"v".to_vec() },
                LogRecord::Commit { txn: 9 },
            ])
            .unwrap();
        assert_eq!(first, 1);
        assert_eq!(wal.next_lsn(), 4);
        let records: Vec<LogRecord> = wal.read_all().unwrap().into_iter().map(|(_, r)| r).collect();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], LogRecord::Commit { txn: 9 });
    }

    #[test]
    fn invalid_frame_truncates_log_from_there() {
        // Standard WAL recovery rule: everything past the first invalid frame was never
        // acknowledged (its batch's sync cannot have returned), so recovery keeps the valid
        // prefix and discards the rest rather than refusing to open.
        let path = temp_path("corrupt.wal");
        let _ = std::fs::remove_file(&path);
        let first_frame_len;
        {
            let wal = WriteAheadLog::open(&path).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            first_frame_len = wal.size_bytes().unwrap();
            wal.append(&LogRecord::Put { txn: 1, key: b"key".to_vec(), value: b"value".to_vec() })
                .unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
        }
        // Tear the middle frame (out-of-order batch persistence): bytes of the final frame
        // still exist after the invalid one.
        {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[first_frame_len as usize + 10] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        }
        let wal = WriteAheadLog::open(&path).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records.len(), 1, "valid prefix kept, torn batch discarded");
        assert_eq!(records[0].1, LogRecord::Begin { txn: 1 });
        assert_eq!(wal.size_bytes().unwrap(), first_frame_len, "torn bytes truncated on open");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_clears_bytes_but_keeps_the_lsn_sequence() {
        let wal = WriteAheadLog::in_memory();
        wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 0);
        assert_eq!(wal.next_lsn(), 2, "absolute LSNs survive truncation");
        assert_eq!(wal.base_lsn(), 1);
        assert_eq!(wal.size_bytes().unwrap(), 0);
        // The next append continues the sequence.
        assert_eq!(wal.append(&LogRecord::Commit { txn: 1 }).unwrap(), 2);
        assert_eq!(wal.read_all().unwrap(), vec![(2, LogRecord::Commit { txn: 1 })]);
    }

    #[test]
    fn read_from_serves_the_tail_and_reports_truncation() {
        let wal = WriteAheadLog::in_memory();
        for txn in 1..=3 {
            wal.append(&LogRecord::Begin { txn }).unwrap();
            wal.append(&LogRecord::Commit { txn }).unwrap();
        }
        // Mid-log cursor: records 4..=6.
        match wal.read_from(4).unwrap() {
            WalTail::Records(recs) => {
                assert_eq!(recs.len(), 3);
                assert_eq!(recs[0], (4, LogRecord::Commit { txn: 2 }));
            }
            other => panic!("expected records, got {other:?}"),
        }
        // Caught up: empty, not an error.
        assert_eq!(wal.read_from(7).unwrap(), WalTail::Records(vec![]));
        // Ahead of the log: a foreign cursor, must resync.
        assert!(matches!(wal.read_from(8).unwrap(), WalTail::Truncated { oldest: 1 }));
        // After truncation, old cursors learn they were cut off; new ones still work.
        wal.truncate().unwrap();
        assert!(matches!(wal.read_from(3).unwrap(), WalTail::Truncated { oldest: 7 }));
        assert_eq!(wal.read_from(7).unwrap(), WalTail::Records(vec![]));
        wal.append(&LogRecord::Begin { txn: 9 }).unwrap();
        match wal.read_from(7).unwrap() {
            WalTail::Records(recs) => assert_eq!(recs, vec![(7, LogRecord::Begin { txn: 9 })]),
            other => panic!("expected records, got {other:?}"),
        }
    }

    #[test]
    fn base_lsn_survives_reopen_of_a_file_log() {
        let path = temp_path("base-reopen.wal");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(WriteAheadLog::base_path(&path));
        {
            let wal = WriteAheadLog::open(&path).unwrap();
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
            wal.truncate().unwrap();
            wal.append(&LogRecord::Begin { txn: 2 }).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = WriteAheadLog::open(&path).unwrap();
            assert_eq!(wal.base_lsn(), 2, "base restored from the sidecar");
            assert_eq!(wal.next_lsn(), 4);
            assert_eq!(wal.read_all().unwrap(), vec![(3, LogRecord::Begin { txn: 2 })]);
            assert!(matches!(wal.read_from(1).unwrap(), WalTail::Truncated { oldest: 3 }));
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(WriteAheadLog::base_path(&path));
    }

    #[test]
    fn replay_skips_uncommitted_and_aborted() {
        let records = vec![
            (1, LogRecord::Begin { txn: 1 }),
            (2, LogRecord::Put { txn: 1, key: b"a".to_vec(), value: b"1".to_vec() }),
            (3, LogRecord::Begin { txn: 2 }),
            (4, LogRecord::Put { txn: 2, key: b"b".to_vec(), value: b"2".to_vec() }),
            (5, LogRecord::Commit { txn: 1 }),
            (6, LogRecord::Abort { txn: 2 }),
            (7, LogRecord::Begin { txn: 3 }),
            (8, LogRecord::Put { txn: 3, key: b"c".to_vec(), value: b"3".to_vec() }),
            // txn 3 never commits (crash), must not appear.
        ];
        let effects = replay_committed(&records);
        assert_eq!(effects, vec![(b"a".to_vec(), Some(b"1".to_vec()))]);
    }

    #[test]
    fn replay_preserves_delete_effects() {
        let records = vec![
            (1, LogRecord::Begin { txn: 1 }),
            (2, LogRecord::Put { txn: 1, key: b"x".to_vec(), value: b"1".to_vec() }),
            (3, LogRecord::Delete { txn: 1, key: b"x".to_vec() }),
            (4, LogRecord::Commit { txn: 1 }),
        ];
        let effects = replay_committed(&records);
        assert_eq!(effects.len(), 2);
        assert_eq!(effects[1], (b"x".to_vec(), None));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_record() -> impl Strategy<Value = LogRecord> {
        prop_oneof![
            any::<u64>().prop_map(|txn| LogRecord::Begin { txn }),
            any::<u64>().prop_map(|txn| LogRecord::Commit { txn }),
            any::<u64>().prop_map(|txn| LogRecord::Abort { txn }),
            (
                any::<u64>(),
                proptest::collection::vec(any::<u8>(), 0..64),
                proptest::collection::vec(any::<u8>(), 0..64)
            )
                .prop_map(|(txn, key, value)| LogRecord::Put { txn, key, value }),
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(txn, key)| LogRecord::Delete { txn, key }),
            any::<u64>().prop_map(|up_to| LogRecord::Checkpoint { up_to }),
        ]
    }

    proptest! {
        #[test]
        fn any_record_roundtrips(rec in arb_record()) {
            prop_assert_eq!(LogRecord::decode(&rec.encode()).unwrap(), rec);
        }

        #[test]
        fn log_preserves_order(records in proptest::collection::vec(arb_record(), 0..50)) {
            let wal = WriteAheadLog::in_memory();
            for r in &records {
                wal.append(r).unwrap();
            }
            let read: Vec<LogRecord> = wal.read_all().unwrap().into_iter().map(|(_, r)| r).collect();
            prop_assert_eq!(read, records);
        }
    }
}
