//! The quick evaluation report: one row per experiment of `EXPERIMENTS.md`, measured with plain
//! timers (run `cargo run -p seed-bench --release`).  The Criterion benches in `benches/`
//! measure the same scenarios with proper statistics.
//!
//! Next to the human-readable table, [`run_report_mode`] writes **`BENCH.json`** — a
//! machine-readable map of experiment id → named metrics — so the performance trajectory can be
//! tracked across PRs (CI uploads the file as an artifact from the `--smoke` run).

use std::time::{Duration, Instant};

use seed_core::{Database, Value, VersionId};
use seed_schema::figure3_schema;
use seed_server::{SeedServer, Update};
use seed_storage::StorageEngine;
use spades::{DirectBackend, SpecBackend};

use crate::scenarios;

/// Machine-readable result of one experiment: its stable id and named numeric metrics.
pub struct ExperimentMetrics {
    /// Stable experiment id (`E1` … `E17`).
    pub id: &'static str,
    /// Named metrics, in presentation order.  Times are microseconds unless the name says
    /// otherwise; `*_x` values are ratios.
    pub metrics: Vec<(String, f64)>,
    /// Flattened copy of the process-global observability registry, captured right after the
    /// experiment finished (cumulative across the report run).  Empty until
    /// [`run_report_mode`] attaches it; rendered as a nested `"obs"` object in `BENCH.json`.
    pub obs: Vec<(String, f64)>,
}

impl ExperimentMetrics {
    fn new(id: &'static str, metrics: &[(&str, f64)]) -> Self {
        Self {
            id,
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            obs: Vec::new(),
        }
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

/// Flattens the process-global registry into `(name, value)` pairs: counters and gauges as-is,
/// histograms as `_count`/`_p50`/`_p99` triples — the shape `BENCH.json` embeds per experiment.
pub fn registry_flat() -> Vec<(String, f64)> {
    let snap = seed_obs::global().snapshot();
    let mut out = Vec::new();
    for (name, v) in &snap.counters {
        out.push((name.clone(), *v as f64));
    }
    for (name, v) in &snap.gauges {
        out.push((name.clone(), *v as f64));
    }
    for h in &snap.histograms {
        out.push((format!("{}_count", h.name), h.count as f64));
        out.push((format!("{}_p50", h.name), h.p50() as f64));
        out.push((format!("{}_p99", h.name), h.p99() as f64));
    }
    out
}

fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

fn row(id: &str, what: &str, measurement: String) {
    println!("{id:<4} {what:<58} {measurement}");
}

/// The `p`-quantile of a latency sample, in microseconds (sorts in place).
fn percentile(latencies: &mut [Duration], p: f64) -> f64 {
    latencies.sort();
    if latencies.is_empty() {
        return 0.0;
    }
    let idx = ((latencies.len() as f64 * p) as usize).min(latencies.len() - 1);
    latencies[idx].as_secs_f64() * 1e6
}

/// E1 — SPADES on SEED vs. the direct pre-SEED implementation.
pub fn e1_spades_overhead(scale: usize) -> ExperimentMetrics {
    let workload = scenarios::spades_workload(scale);
    let (direct_time, _) = time(|| scenarios::run_on_direct(&workload));
    let (seed_time, _) = time(|| scenarios::run_on_seed(&workload, true));
    let slowdown = seed_time.as_secs_f64() / direct_time.as_secs_f64().max(f64::EPSILON);
    row(
        "E1",
        &format!("SPADES workload ({} ops): SEED vs direct", workload.len()),
        format!("direct {:>8.2?}  seed {:>8.2?}  slowdown {slowdown:.1}x", direct_time, seed_time),
    );
    // Flexibility half of the claim: only SEED can analyse incompleteness.
    let mut seed = spades::SeedBackend::new();
    workload.apply(&mut seed);
    let mut direct = DirectBackend::new();
    workload.apply(&mut direct);
    row(
        "E1b",
        "  flexibility: incompleteness findings (SEED vs direct)",
        format!("{} vs {}", seed.incompleteness_findings(), direct.incompleteness_findings()),
    );
    ExperimentMetrics::new(
        "E1",
        &[
            ("direct_us", direct_time.as_secs_f64() * 1e6),
            ("seed_us", seed_time.as_secs_f64() * 1e6),
            ("slowdown_x", slowdown),
            ("seed_findings", seed.incompleteness_findings() as f64),
            ("direct_findings", direct.incompleteness_findings() as f64),
        ],
    )
}

/// E2 — cost of consistency checking on every update.
pub fn e2_consistency_overhead(scale: usize) -> ExperimentMetrics {
    let workload = scenarios::spades_workload(scale);
    let (with_checks, _) = time(|| scenarios::run_on_seed(&workload, true));
    let (without_checks, _) = time(|| scenarios::run_on_seed(&workload, false));
    let factor = with_checks.as_secs_f64() / without_checks.as_secs_f64().max(f64::EPSILON);
    row(
        "E2",
        &format!("consistency checking on vs off ({} ops)", workload.len()),
        format!("on {with_checks:>8.2?}  off {without_checks:>8.2?}  overhead {factor:.2}x"),
    );
    ExperimentMetrics::new(
        "E2",
        &[
            ("on_us", with_checks.as_secs_f64() * 1e6),
            ("off_us", without_checks.as_secs_f64() * 1e6),
            ("overhead_x", factor),
        ],
    )
}

/// E3 — delta-based version storage vs. full copies.
pub fn e3_version_storage(
    objects: usize,
    versions: usize,
    changes_per_version: usize,
) -> ExperimentMetrics {
    let db = scenarios::versioned_database(objects, versions, changes_per_version);
    let delta_snapshots = db.version_manager().stored_snapshot_count();
    let full_copy_items = (0..versions)
        .map(|v| {
            db.object_count() + db.relationship_count() - (versions - 1 - v) * changes_per_version
        })
        .sum::<usize>();
    let (view_time, _) = time(|| db.version_manager().view(&VersionId::initial()).unwrap());
    row(
        "E3",
        &format!("version storage, {objects} objects x {versions} versions ({changes_per_version} changes each)"),
        format!(
            "delta stores {delta_snapshots} item snapshots vs ~{full_copy_items} for full copies; view(1.0) in {view_time:.2?}"
        ),
    );
    ExperimentMetrics::new(
        "E3",
        &[
            ("delta_snapshots", delta_snapshots as f64),
            ("full_copy_items", full_copy_items as f64),
            ("view_us", view_time.as_secs_f64() * 1e6),
        ],
    )
}

/// E4 — pattern update propagation cost vs. number of inheritors.
pub fn e4_pattern_propagation(inheritors: usize) -> ExperimentMetrics {
    let (mut db, pattern, members) = scenarios::pattern_with_inheritors(inheritors);
    let (update_time, _) = time(|| {
        db.mark_pattern(pattern).unwrap(); // no-op update touching the pattern
    });
    let (read_time, total) = time(|| {
        let mut total = 0usize;
        for m in &members {
            total += db.relationships(*m).len();
        }
        total
    });
    row(
        "E4",
        &format!("pattern update + materialized read across {inheritors} inheritors"),
        format!(
            "update {update_time:.2?}; read {read_time:.2?} ({total} inherited relationships seen)"
        ),
    );
    ExperimentMetrics::new(
        "E4",
        &[
            ("update_us", update_time.as_secs_f64() * 1e6),
            ("read_us", read_time.as_secs_f64() * 1e6),
            ("inherited_seen", total as f64),
        ],
    )
}

/// E5 — re-classification latency (the vague-to-precise step).
pub fn e5_reclassification(n: usize) -> ExperimentMetrics {
    let (mut db, objects, rels) = scenarios::vague_database(n);
    let (object_time, _) = time(|| {
        for id in &objects {
            db.reclassify_object(*id, "OutputData").unwrap();
        }
    });
    let (rel_time, _) = time(|| {
        for id in &rels {
            db.reclassify_relationship(*id, "Write").unwrap();
        }
    });
    row(
        "E5",
        &format!("re-classification of {n} objects and {n} relationships"),
        format!(
            "objects {:.2?} ({:.1} µs each); relationships {:.2?} ({:.1} µs each)",
            object_time,
            object_time.as_micros() as f64 / n as f64,
            rel_time,
            rel_time.as_micros() as f64 / n as f64
        ),
    );
    ExperimentMetrics::new(
        "E5",
        &[
            ("object_each_us", object_time.as_micros() as f64 / n as f64),
            ("relationship_each_us", rel_time.as_micros() as f64 / n as f64),
        ],
    )
}

/// E6 — retrieval by name vs. database size.
pub fn e6_retrieval(n: usize) -> ExperimentMetrics {
    let db = scenarios::populated_database(n);
    let lookups = 10_000usize;
    let (by_name, _) = time(|| {
        for i in 0..lookups {
            let name = format!("Data{:05}", i % n);
            db.object_by_name(&name).unwrap();
        }
    });
    let (by_prefix, hits) = time(|| db.objects_with_name_prefix("Data0").len());
    row(
        "E6",
        &format!("retrieval by name in a database of {n} data objects"),
        format!(
            "{lookups} lookups in {by_name:.2?} ({:.1} µs each); prefix scan {by_prefix:.2?} ({hits} hits)",
            by_name.as_micros() as f64 / lookups as f64
        ),
    );
    ExperimentMetrics::new(
        "E6",
        &[
            ("lookup_each_us", by_name.as_micros() as f64 / lookups as f64),
            ("prefix_scan_us", by_prefix.as_secs_f64() * 1e6),
            ("prefix_hits", hits as f64),
        ],
    )
}

/// E7 — storage engine micro-benchmarks.
pub fn e7_storage_engine(n: usize) -> ExperimentMetrics {
    let engine = StorageEngine::in_memory().unwrap();
    let value = vec![0xA5u8; 256];
    let (write_time, _) = time(|| {
        for i in 0..n {
            engine.put(format!("obj/{i:06}").as_bytes(), &value).unwrap();
        }
    });
    let (read_time, _) = time(|| {
        for i in 0..n {
            engine.get(format!("obj/{i:06}").as_bytes()).unwrap().unwrap();
        }
    });
    let dir = std::env::temp_dir().join(format!("seed-bench-e7-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = StorageEngine::open(&dir).unwrap();
    let (durable_write, _) = time(|| {
        let txn = durable.begin().unwrap();
        for i in 0..n {
            durable.txn_put(txn, format!("obj/{i:06}").as_bytes(), &value).unwrap();
        }
        durable.commit(txn).unwrap();
        durable.checkpoint().unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);
    row(
        "E7",
        &format!("storage engine, {n} x 256-byte records"),
        format!(
            "memory put {write_time:.2?}, get {read_time:.2?}; durable txn+checkpoint {durable_write:.2?}"
        ),
    );
    ExperimentMetrics::new(
        "E7",
        &[
            ("mem_put_us", write_time.as_secs_f64() * 1e6),
            ("mem_get_us", read_time.as_secs_f64() * 1e6),
            ("durable_txn_checkpoint_us", durable_write.as_secs_f64() * 1e6),
        ],
    )
}

/// E8 — multi-user check-out / check-in throughput.
pub fn e8_multiuser(clients: usize, rounds: usize) -> ExperimentMetrics {
    let mut db = Database::new(figure3_schema());
    for i in 0..clients {
        db.create_object("Data", &format!("Shared{i:03}")).unwrap();
    }
    let server = SeedServer::new(db);
    let (elapsed, conflicts) = time(|| {
        let mut conflicts = 0usize;
        for round in 0..rounds {
            for c in 0..clients {
                let client = (c + 1) as u64;
                let target = format!("Shared{:03}", (c + round) % clients);
                match server.checkout(client, &[&target]) {
                    Ok(_) => {
                        server
                            .checkin(
                                client,
                                &[Update::SetValue {
                                    object: target.to_string(),
                                    value: Value::Undefined,
                                }],
                            )
                            .ok();
                    }
                    Err(_) => conflicts += 1,
                }
            }
        }
        conflicts
    });
    let total = clients * rounds;
    row(
        "E8",
        &format!("multi-user: {clients} clients x {rounds} check-out/check-in rounds"),
        format!(
            "{total} cycles in {elapsed:.2?} ({:.1} µs each), {conflicts} lock conflicts",
            elapsed.as_micros() as f64 / total as f64
        ),
    );
    ExperimentMetrics::new(
        "E8",
        &[
            ("cycles", total as f64),
            ("cycle_each_us", elapsed.as_micros() as f64 / total as f64),
            ("conflicts", conflicts as f64),
        ],
    )
}

/// E9 — the planner's indexed access paths vs. the full-scan fallback, swept over size.
pub fn e9_indexed_retrieval(sizes: &[usize]) -> ExperimentMetrics {
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for &n in sizes {
        let db = scenarios::valued_database(n);
        let point = seed_query::parse(&format!("count Item where value = \"{}\"", n / 2)).unwrap();
        let reps = 200usize;
        let (indexed, hits) = time(|| {
            let mut hits = 0usize;
            for _ in 0..reps {
                hits = seed_query::execute(&db, &point).unwrap().count();
            }
            hits
        });
        let (scanned, _) = time(|| {
            for _ in 0..reps {
                seed_query::execute_scan(&db, &point).unwrap().count();
            }
        });
        let speedup = scanned.as_secs_f64() / indexed.as_secs_f64().max(f64::EPSILON);
        row(
            "E9",
            &format!("indexed point query vs full scan, {n} objects ({hits} hit)"),
            format!(
                "indexed {:.2} µs  scan {:.2} µs  speedup {speedup:.0}x",
                indexed.as_micros() as f64 / reps as f64,
                scanned.as_micros() as f64 / reps as f64
            ),
        );
        // Keys carry the swept size so any number of slots stays collision-free in BENCH.json.
        metrics.push((format!("indexed_us_{n}"), indexed.as_micros() as f64 / reps as f64));
        metrics.push((format!("scan_us_{n}"), scanned.as_micros() as f64 / reps as f64));
        metrics.push((format!("speedup_x_{n}"), speedup));
    }
    ExperimentMetrics { id: "E9", metrics, obs: Vec::new() }
}

/// E10 — incremental durability: per-item write-through commits vs whole-database snapshot
/// saves, and recovery time vs WAL length.
///
/// The acceptance bar of the durability refactor: at `objects` database size, the durable cost
/// of committing **one** object mutation must be O(delta) — at least 50× cheaper than a full
/// [`Database::save_to_dir`] snapshot of the same database.
pub fn e10_durable_throughput(objects: usize, probe_commits: usize) -> ExperimentMetrics {
    let base = std::env::temp_dir().join(format!("seed-bench-e10-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let durable_dir = base.join("durable");
    let snapshot_dir = base.join("snapshot");

    let mut db = Database::create_durable(&durable_dir, figure3_schema()).unwrap();
    // Bulk-load the fixture inside one transaction: one group commit, one WAL sync.
    db.begin_transaction().unwrap();
    let mut ids = Vec::with_capacity(objects);
    for i in 0..objects {
        ids.push(db.create_object("Data", &format!("Data{i:06}")).unwrap());
    }
    db.commit_transaction().unwrap();
    db.checkpoint().unwrap();

    // Write-through: auto-committed single-object mutations (each is its own storage
    // transaction with one batched WAL write + sync).
    let (wt, _) = time(|| {
        for k in 0..probe_commits {
            db.set_value(ids[k % ids.len()], Value::Undefined).unwrap();
        }
    });
    let write_through_us = wt.as_secs_f64() * 1e6 / probe_commits as f64;

    // Snapshot baseline: one full save of the same database.
    let (snap, _) = time(|| db.save_to_dir(&snapshot_dir).unwrap());
    let snapshot_us = snap.as_secs_f64() * 1e6;
    let speedup = snapshot_us / write_through_us.max(f64::EPSILON);

    // Recovery time vs WAL length: reopen right after a checkpoint (short WAL), then again
    // with `probe_commits` commits in the WAL.
    db.checkpoint().unwrap();
    drop(db);
    let (recovery_short, db) = time(|| Database::open_durable(&durable_dir).unwrap());
    let mut db = db;
    for k in 0..probe_commits {
        db.set_value(ids[k % ids.len()], Value::Undefined).unwrap();
    }
    let wal_bytes = db.durability_status().unwrap().wal_bytes;
    drop(db);
    let (recovery_long, _db) = time(|| Database::open_durable(&durable_dir).unwrap());

    row(
        "E10",
        &format!("durable write-through vs snapshot save, {objects} objects"),
        format!(
            "commit {write_through_us:.1} µs vs save {:.1} ms ({speedup:.0}x); recovery {:.1} ms, +{probe_commits} WAL commits ({wal_bytes} B): {:.1} ms",
            snapshot_us / 1e3,
            recovery_short.as_secs_f64() * 1e3,
            recovery_long.as_secs_f64() * 1e3
        ),
    );
    let _ = std::fs::remove_dir_all(&base);
    ExperimentMetrics::new(
        "E10",
        &[
            ("objects", objects as f64),
            ("write_through_commit_us", write_through_us),
            ("snapshot_save_us", snapshot_us),
            ("speedup_x", speedup),
            ("recovery_after_checkpoint_us", recovery_short.as_secs_f64() * 1e6),
            ("recovery_with_wal_us", recovery_long.as_secs_f64() * 1e6),
            ("wal_bytes_at_reopen", wal_bytes as f64),
        ],
    )
}

/// E11 — the network frontend: aggregate read throughput and tail latency with N concurrent
/// TCP clients vs. a single client, over loopback.
///
/// The acceptance bar of the `seed-net` subsystem: with ≥ 4 concurrent clients, aggregate read
/// throughput must rise **above** the single-client baseline — i.e. the read–write refactor of
/// the central server really lets sessions proceed in parallel instead of serializing on one
/// database mutex (a single blocking client is latency-bound; extra connections must add
/// throughput until the server is CPU-bound).
pub fn e11_net_throughput(
    objects: usize,
    clients: usize,
    ops_per_client: usize,
) -> ExperimentMetrics {
    use seed_net::{RemoteClient, SeedNetServer};

    fn run_clients(
        addr: std::net::SocketAddr,
        clients: usize,
        ops_per_client: usize,
        objects: usize,
    ) -> (f64, Vec<Duration>) {
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients + 1));
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let mut client = RemoteClient::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(ops_per_client);
                    barrier.wait();
                    for i in 0..ops_per_client {
                        let name = format!("Data{:05}", (c * 7919 + i) % objects);
                        let start = Instant::now();
                        client.retrieve(&name).expect("retrieve");
                        latencies.push(start.elapsed());
                    }
                    latencies
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let mut latencies = Vec::with_capacity(clients * ops_per_client);
        for worker in workers {
            latencies.extend(worker.join().expect("client thread"));
        }
        let wall = start.elapsed();
        let ops_per_s = (clients * ops_per_client) as f64 / wall.as_secs_f64().max(f64::EPSILON);
        (ops_per_s, latencies)
    }

    let db = scenarios::populated_database(objects);
    let net = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").expect("bind loopback");
    let addr = net.local_addr();

    let (single_ops_per_s, mut single_lat) = run_clients(addr, 1, ops_per_client, objects);
    let (aggregate_ops_per_s, mut multi_lat) = run_clients(addr, clients, ops_per_client, objects);
    net.shutdown();

    let scaling = aggregate_ops_per_s / single_ops_per_s.max(f64::EPSILON);
    let single_p50 = percentile(&mut single_lat, 0.50);
    let p50 = percentile(&mut multi_lat, 0.50);
    let p99 = percentile(&mut multi_lat, 0.99);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    row(
        "E11",
        &format!("net: {clients} TCP clients x {ops_per_client} reads vs 1 client, {objects} objects"),
        format!(
            "1 client {single_ops_per_s:.0} op/s; {clients} clients {aggregate_ops_per_s:.0} op/s ({scaling:.1}x on {cores} cores); p50 {p50:.0} µs, p99 {p99:.0} µs"
        ),
    );
    ExperimentMetrics::new(
        "E11",
        &[
            ("clients", clients as f64),
            ("ops_per_client", ops_per_client as f64),
            ("cores", cores as f64),
            // One request in flight per connection (the blocking client); the event-loop
            // server still shards across workers.  E15 varies the depth.
            ("pipeline_depth", 1.0),
            ("worker_shards", seed_net::NetServerConfig::default().worker_shards as f64),
            ("single_ops_per_s", single_ops_per_s),
            ("aggregate_ops_per_s", aggregate_ops_per_s),
            ("scaling_x", scaling),
            ("single_p50_us", single_p50),
            ("p50_us", p50),
            ("p99_us", p99),
        ],
    )
}

/// E12 — WAL-shipping replication: aggregate read throughput of 1 primary + N read replicas
/// vs. the primary alone, plus replication lag, over loopback.
///
/// The acceptance bar of the replication subsystem: with 2 replicas on a multi-core host,
/// aggregate read ops/s through the read-preferred client (reads fanned across the replicas)
/// must rise **above** the same clients hammering the primary alone — each replica serves reads
/// from its own database behind its own read–write lock, so the topology adds capacity instead
/// of queueing on one node.  Replication lag is measured per check-in: the time from a
/// committed write on the primary until **every** replica has durably applied it.
pub fn e12_replicated_read_throughput(
    objects: usize,
    clients: usize,
    ops_per_client: usize,
    burst: usize,
) -> ExperimentMetrics {
    use seed_net::{RemoteClient, ReplicaNode, SeedNetServer};

    const REPLICAS: usize = 2;

    /// `clients` threads, each doing `ops` name retrievals; `replicas` empty = primary only.
    fn run_read_clients(
        primary: std::net::SocketAddr,
        replicas: &[std::net::SocketAddr],
        clients: usize,
        ops: usize,
        objects: usize,
    ) -> f64 {
        let replicas = replicas.to_vec();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients + 1));
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = barrier.clone();
                let replicas = replicas.clone();
                std::thread::spawn(move || {
                    let mut client =
                        RemoteClient::connect_read_preferred(primary, &replicas).expect("connect");
                    barrier.wait();
                    for i in 0..ops {
                        let name = format!("Data{:05}", (c * 7919 + i) % objects);
                        client.retrieve(&name).expect("retrieve");
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for worker in workers {
            worker.join().expect("client thread");
        }
        (clients * ops) as f64 / start.elapsed().as_secs_f64().max(f64::EPSILON)
    }

    let base = std::env::temp_dir().join(format!("seed-bench-e12-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // A durable primary (replication ships its WAL), populated in one bulk transaction.
    let mut db = Database::create_durable(base.join("primary"), figure3_schema()).unwrap();
    db.begin_transaction().unwrap();
    let mut actions = Vec::new();
    for i in 0..(objects / 2).max(1) {
        actions.push(db.create_object("Action", &format!("Action{i:05}")).unwrap());
    }
    for i in 0..objects {
        let data = db.create_object("Data", &format!("Data{i:05}")).unwrap();
        db.create_relationship("Access", &[("from", data), ("by", actions[i % actions.len()])])
            .unwrap();
    }
    db.commit_transaction().unwrap();
    let net = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").expect("bind primary");
    let addr = net.local_addr();
    let core = net.core();
    let primary_lsn = || core.with_database(|db| db.durable_lsn().unwrap_or(0));

    let replicas: Vec<ReplicaNode> = (0..REPLICAS)
        .map(|i| {
            ReplicaNode::start(base.join(format!("replica{i}")), addr, "127.0.0.1:0")
                .expect("start replica")
        })
        .collect();
    let target = primary_lsn();
    for replica in &replicas {
        assert!(replica.wait_for_lsn(target, Duration::from_secs(60)), "initial sync timed out");
    }
    let replica_addrs: Vec<_> = replicas.iter().map(|r| r.local_addr()).collect();

    // Read throughput: the same client fleet against the primary alone, then fanned out.
    let primary_ops_per_s = run_read_clients(addr, &[], clients, ops_per_client, objects);
    let replicated_ops_per_s =
        run_read_clients(addr, &replica_addrs, clients, ops_per_client, objects);
    let scaling = replicated_ops_per_s / primary_ops_per_s.max(f64::EPSILON);

    // Replication lag: commit on the primary, stopwatch until every replica applied it.
    let mut writer = RemoteClient::connect(addr).expect("writer");
    let mut lags = Vec::with_capacity(burst);
    for k in 0..burst {
        writer
            .checkin(vec![Update::CreateObject {
                class: "Data".into(),
                name: format!("LagProbe{k:04}"),
            }])
            .expect("checkin");
        let target = primary_lsn();
        let start = Instant::now();
        for replica in &replicas {
            assert!(replica.wait_for_lsn(target, Duration::from_secs(60)), "lag probe timed out");
        }
        lags.push(start.elapsed());
    }
    let lag_p50 = percentile(&mut lags, 0.50);
    let lag_p99 = percentile(&mut lags, 0.99);

    for replica in replicas {
        replica.shutdown();
    }
    net.shutdown();
    let _ = std::fs::remove_dir_all(&base);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    row(
        "E12",
        &format!(
            "replication: {clients} clients x {ops_per_client} reads, 1 primary + {REPLICAS} replicas, {objects} objects"
        ),
        format!(
            "primary alone {primary_ops_per_s:.0} op/s; + replicas {replicated_ops_per_s:.0} op/s ({scaling:.1}x on {cores} cores); lag p50 {:.1} ms, p99 {:.1} ms over {burst} check-ins",
            lag_p50 / 1e3,
            lag_p99 / 1e3
        ),
    );
    ExperimentMetrics::new(
        "E12",
        &[
            ("replicas", REPLICAS as f64),
            ("clients", clients as f64),
            ("ops_per_client", ops_per_client as f64),
            ("cores", cores as f64),
            ("pipeline_depth", 1.0),
            ("worker_shards", seed_net::NetServerConfig::default().worker_shards as f64),
            ("primary_ops_per_s", primary_ops_per_s),
            ("replicated_ops_per_s", replicated_ops_per_s),
            ("scaling_x", scaling),
            ("lag_p50_us", lag_p50),
            ("lag_p99_us", lag_p99),
        ],
    )
}

/// E13 — segmented WAL recovery: replaying a long, many-segment log serially vs with the
/// per-segment parallel parser the recovery path uses.
///
/// The acceptance bar of the segmentation tentpole: parallel replay must be **bit-identical**
/// to serial replay (asserted here on real files, and by the storage proptests on arbitrary
/// logs), and on a multi-core host it must not be pathologically slower — segment parsing is
/// embarrassingly parallel, the serial merge is O(records).
pub fn e13_segmented_recovery(commits: usize, segment_max_bytes: u64) -> ExperimentMetrics {
    use seed_storage::{LogRecord, WalConfig, WriteAheadLog};

    let dir = std::env::temp_dir().join(format!("seed-bench-e13-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = WalConfig { segment_max_bytes, ..WalConfig::default() };

    // Build a committed history long enough to span many sealed segments.
    let wal = WriteAheadLog::open_dir(&dir, config.clone()).unwrap();
    for txn in 0..commits as u64 {
        let key = format!("bench/{txn:08}").into_bytes();
        wal.append_batch(&[
            LogRecord::Begin { txn },
            LogRecord::Put { txn, key, value: vec![0xA5; 96] },
            LogRecord::Commit { txn },
        ])
        .unwrap();
    }
    wal.sync().unwrap();
    let segments = wal.segment_count();
    let wal_bytes = wal.size_bytes().unwrap();
    drop(wal);

    // Reopen over the same on-disk segments and time both replay paths.
    let wal = WriteAheadLog::open_dir(&dir, config).unwrap();
    let (serial, serial_records) = time(|| wal.read_all().unwrap());
    let (parallel, parallel_records) = time(|| wal.read_all_parallel().unwrap());
    assert_eq!(serial_records, parallel_records, "parallel replay must be bit-identical");
    let effects = seed_storage::replay_committed(&serial_records);
    assert_eq!(effects.len(), commits, "every committed transaction must replay");
    let serial_us = serial.as_secs_f64() * 1e6;
    let parallel_us = parallel.as_secs_f64() * 1e6;
    let speedup = serial_us / parallel_us.max(f64::EPSILON);

    row(
        "E13",
        &format!("segmented recovery, {commits} commits over {segments} segments"),
        format!(
            "serial {:.2} ms vs parallel {:.2} ms ({speedup:.2}x) across {} KiB of log",
            serial_us / 1e3,
            parallel_us / 1e3,
            wal_bytes / 1024
        ),
    );
    let _ = std::fs::remove_dir_all(&dir);
    ExperimentMetrics::new(
        "E13",
        &[
            ("commits", commits as f64),
            ("segments", segments as f64),
            ("wal_frame_bytes", wal_bytes as f64),
            ("serial_replay_us", serial_us),
            ("parallel_replay_us", parallel_us),
            ("speedup_x", speedup),
        ],
    )
}

/// E14 — MVCC snapshot reads: reader throughput while check-ins commit concurrently, and
/// replica lag with incremental O(delta) apply.
///
/// The acceptance bar of the snapshot-reads tentpole, both halves:
/// * **Read retention** — the same reader fleet is timed against a quiescent server and again
///   while a writer thread commits check-ins continuously.  Reads run against the published
///   immutable snapshot (no database write lock), so throughput must not collapse under the
///   write stream; `retention_x` is contended / quiescent.
/// * **Replica lag** — a durable primary ships small commits to a replica that patches its
///   serving snapshot in place instead of rebuilding the database; `items_per_commit` counts
///   the items the replica actually touched per shipped commit (the structural O(delta)
///   evidence behind the lag percentiles).
pub fn e14_mvcc_snapshot_reads(
    objects: usize,
    readers: usize,
    ops_per_reader: usize,
    lag_burst: usize,
) -> ExperimentMetrics {
    use seed_net::{RemoteClient, ReplicaNode, SeedNetServer};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Barrier};

    /// `readers` threads, each doing `ops` snapshot retrievals; returns (ops/s, p99 µs).
    fn run_readers(
        server: &Arc<SeedServer>,
        readers: usize,
        ops: usize,
        objects: usize,
    ) -> (f64, f64) {
        let barrier = Arc::new(Barrier::new(readers + 1));
        let workers: Vec<_> = (0..readers)
            .map(|r| {
                let server = Arc::clone(server);
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut latencies = Vec::with_capacity(ops);
                    for i in 0..ops {
                        let name = format!("Data{:05}", (r * 7919 + i) % objects);
                        let start = Instant::now();
                        server.retrieve(&name).expect("retrieve");
                        latencies.push(start.elapsed());
                    }
                    latencies
                })
            })
            .collect();
        // Start the clock before releasing the fleet: on a loaded single-core host the main
        // thread may not be rescheduled until workers already finished, which would undercount
        // the elapsed span and inflate the rate.
        let start = Instant::now();
        barrier.wait();
        let mut latencies = Vec::new();
        for worker in workers {
            latencies.extend(worker.join().expect("reader thread"));
        }
        let ops_per_s = (readers * ops) as f64 / start.elapsed().as_secs_f64().max(f64::EPSILON);
        let p99 = percentile(&mut latencies, 0.99);
        (ops_per_s, p99)
    }

    // Half 1: read retention under a concurrent write stream (in-process, in-memory).
    let mut db = Database::new(figure3_schema());
    db.begin_transaction().unwrap();
    for i in 0..objects {
        db.create_object("Data", &format!("Data{i:05}")).unwrap();
    }
    db.commit_transaction().unwrap();
    let server = Arc::new(SeedServer::new(db));

    let (quiescent_ops_per_s, quiescent_p99) =
        run_readers(&server, readers, ops_per_reader, objects);

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let client = server.connect();
            let mut commits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                server
                    .checkin(
                        client,
                        &[Update::CreateObject {
                            class: "Data".into(),
                            name: format!("Churn{commits:06}"),
                        }],
                    )
                    .expect("checkin");
                commits += 1;
            }
            commits
        })
    };
    let (contended_ops_per_s, contended_p99) =
        run_readers(&server, readers, ops_per_reader, objects);
    stop.store(true, Ordering::Relaxed);
    let commits = writer.join().expect("writer thread");
    let retention = contended_ops_per_s / quiescent_ops_per_s.max(f64::EPSILON);

    // Half 2: replica lag with incremental apply (durable primary over loopback).
    let base = std::env::temp_dir().join(format!("seed-bench-e14-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut db = Database::create_durable(base.join("primary"), figure3_schema()).unwrap();
    db.begin_transaction().unwrap();
    for i in 0..objects {
        db.create_object("Data", &format!("Data{i:05}")).unwrap();
    }
    db.commit_transaction().unwrap();
    let net = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").expect("bind primary");
    let addr = net.local_addr();
    let core = net.core();
    let primary_lsn = || core.with_database(|db| db.durable_lsn().unwrap_or(0));
    let replica = ReplicaNode::start(base.join("replica"), addr, "127.0.0.1:0").expect("replica");
    assert!(replica.wait_for_lsn(primary_lsn(), Duration::from_secs(60)), "initial sync");
    let items_before = replica.items_applied();

    let mut writer = RemoteClient::connect(addr).expect("writer");
    let mut lags = Vec::with_capacity(lag_burst);
    for k in 0..lag_burst {
        writer
            .checkin(vec![Update::CreateObject {
                class: "Data".into(),
                name: format!("LagProbe{k:04}"),
            }])
            .expect("checkin");
        let target = primary_lsn();
        let start = Instant::now();
        assert!(replica.wait_for_lsn(target, Duration::from_secs(60)), "lag probe timed out");
        lags.push(start.elapsed());
    }
    let lag_p50 = percentile(&mut lags, 0.50);
    let lag_p99 = percentile(&mut lags, 0.99);
    let items_per_commit =
        (replica.items_applied() - items_before) as f64 / (lag_burst as f64).max(1.0);
    let resets = replica.resets_applied() as f64;

    replica.shutdown();
    net.shutdown();
    let _ = std::fs::remove_dir_all(&base);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    row(
        "E14",
        &format!(
            "mvcc: {readers} readers x {ops_per_reader} reads vs {commits} concurrent check-ins, {objects} objects"
        ),
        format!(
            "quiescent {quiescent_ops_per_s:.0} op/s; contended {contended_ops_per_s:.0} op/s ({retention:.2}x retained on {cores} cores); p99 {quiescent_p99:.0}/{contended_p99:.0} µs; replica lag p50 {:.1} ms, p99 {:.1} ms at {items_per_commit:.1} items/commit",
            lag_p50 / 1e3,
            lag_p99 / 1e3
        ),
    );
    ExperimentMetrics::new(
        "E14",
        &[
            ("readers", readers as f64),
            ("ops_per_reader", ops_per_reader as f64),
            ("cores", cores as f64),
            ("writer_commits", commits as f64),
            ("quiescent_ops_per_s", quiescent_ops_per_s),
            ("contended_ops_per_s", contended_ops_per_s),
            ("retention_x", retention),
            ("quiescent_p99_us", quiescent_p99),
            ("contended_p99_us", contended_p99),
            ("lag_p50_us", lag_p50),
            ("lag_p99_us", lag_p99),
            ("items_per_commit", items_per_commit),
            ("replica_resets", resets),
        ],
    )
}

/// E15 — pipelined request throughput over **one** connection: the same read workload issued
/// synchronously (depth 1, one round trip per request) and through [`seed_net::Pipeline`] at
/// depths 8 and 64, against the event-loop server.
///
/// The acceptance bar of the pipelining tentpole: at depth 64 a single connection must push at
/// least **3×** the synchronous ops/s — the reactor decodes many frames per wakeup, the worker
/// shard keeps executing while responses coalesce into one write, and the round-trip latency is
/// paid once per batch instead of once per request.  E11 stays the depth-1 oracle across
/// connection counts.
pub fn e15_pipelined_throughput(objects: usize, total_ops: usize) -> ExperimentMetrics {
    use seed_net::{NetServerConfig, RemoteClient, SeedNetServer};
    use seed_server::Request;

    /// Runs `total_ops` retrieves at the given pipeline depth on one connection; returns
    /// (ops/s, batch round-trip p50 µs, p99 µs).  Depth 1 is the plain blocking call — the
    /// synchronous baseline, where a batch IS one request.
    fn run_depth(
        addr: std::net::SocketAddr,
        depth: usize,
        total_ops: usize,
        objects: usize,
    ) -> (f64, f64, f64) {
        let mut client = RemoteClient::connect(addr).expect("connect");
        let mut batch_latencies = Vec::with_capacity(total_ops / depth + 1);
        let start = Instant::now();
        let mut sent = 0usize;
        while sent < total_ops {
            let batch = depth.min(total_ops - sent);
            let begin = Instant::now();
            if batch == 1 {
                let name = format!("Data{:05}", sent % objects);
                client.retrieve(&name).expect("retrieve");
            } else {
                let mut pipeline = client.pipeline();
                for i in 0..batch {
                    pipeline.submit(Request::Retrieve {
                        name: format!("Data{:05}", (sent + i) % objects),
                    });
                }
                let results = pipeline.flush().expect("flush");
                assert_eq!(results.len(), batch, "every submission gets an answer");
            }
            batch_latencies.push(begin.elapsed());
            sent += batch;
        }
        let wall = start.elapsed();
        let ops_per_s = total_ops as f64 / wall.as_secs_f64().max(f64::EPSILON);
        let p50 = percentile(&mut batch_latencies, 0.50);
        let p99 = percentile(&mut batch_latencies, 0.99);
        (ops_per_s, p50, p99)
    }

    let config = NetServerConfig::default();
    let worker_shards = config.worker_shards;
    let db = scenarios::populated_database(objects);
    let net = SeedNetServer::with_config(SeedServer::new(db), "127.0.0.1:0", config)
        .expect("bind loopback");
    let addr = net.local_addr();

    let (sync_ops_per_s, sync_p50, sync_p99) = run_depth(addr, 1, total_ops, objects);
    let (d8_ops_per_s, d8_p50, d8_p99) = run_depth(addr, 8, total_ops, objects);
    let (d64_ops_per_s, d64_p50, d64_p99) = run_depth(addr, 64, total_ops, objects);
    net.shutdown();

    let speedup_8 = d8_ops_per_s / sync_ops_per_s.max(f64::EPSILON);
    let speedup_64 = d64_ops_per_s / sync_ops_per_s.max(f64::EPSILON);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    row(
        "E15",
        &format!(
            "pipelining: 1 connection x {total_ops} reads at depth 1/8/64, {objects} objects"
        ),
        format!(
            "depth 1 {sync_ops_per_s:.0} op/s; depth 8 {d8_ops_per_s:.0} ({speedup_8:.1}x); depth 64 {d64_ops_per_s:.0} ({speedup_64:.1}x, {worker_shards} shards on {cores} cores); batch p99 {sync_p99:.0}/{d8_p99:.0}/{d64_p99:.0} µs"
        ),
    );
    ExperimentMetrics::new(
        "E15",
        &[
            ("total_ops", total_ops as f64),
            ("cores", cores as f64),
            ("pipeline_depth", 64.0),
            ("worker_shards", worker_shards as f64),
            ("sync_ops_per_s", sync_ops_per_s),
            ("depth8_ops_per_s", d8_ops_per_s),
            ("depth64_ops_per_s", d64_ops_per_s),
            ("speedup_x_8", speedup_8),
            ("speedup_x_64", speedup_64),
            ("sync_p50_us", sync_p50),
            ("sync_p99_us", sync_p99),
            ("depth8_batch_p50_us", d8_p50),
            ("depth8_batch_p99_us", d8_p99),
            ("depth64_batch_p50_us", d64_p50),
            ("depth64_batch_p99_us", d64_p99),
        ],
    )
}

/// E16 — observability overhead: the same pipelined read workload over loopback with the
/// metrics registry recording vs runtime-disabled ([`seed_obs::Registry::set_enabled`]).
///
/// The acceptance bar of the observability tentpole: instrumentation must cost **≤ 5%**
/// throughput on the hottest wire path (per-request latency histogram, byte counters, in-flight
/// gauge, WAL timers all firing per request).  Every recording is a handful of relaxed atomic
/// ops, so the two rates must be indistinguishable up to scheduler noise; `overhead_x` is
/// disabled / enabled ops/s (1.0 = free, above 1.05 = bar failed).  CI additionally builds and
/// tests with `--features seed-obs/off` to prove the *compile-out* path, where the same handles
/// fold to no-ops at compile time.
pub fn e16_metrics_overhead(objects: usize, total_ops: usize) -> ExperimentMetrics {
    use seed_net::{RemoteClient, SeedNetServer};
    use seed_server::Request;

    /// Depth-64 pipelined retrieves on one connection; returns ops/s.
    fn run(addr: std::net::SocketAddr, total_ops: usize, objects: usize) -> f64 {
        const DEPTH: usize = 64;
        let mut client = RemoteClient::connect(addr).expect("connect");
        let start = Instant::now();
        let mut sent = 0usize;
        while sent < total_ops {
            let batch = DEPTH.min(total_ops - sent);
            let mut pipeline = client.pipeline();
            for i in 0..batch {
                pipeline
                    .submit(Request::Retrieve { name: format!("Data{:05}", (sent + i) % objects) });
            }
            let results = pipeline.flush().expect("flush");
            assert_eq!(results.len(), batch, "every submission gets an answer");
            sent += batch;
        }
        total_ops as f64 / start.elapsed().as_secs_f64().max(f64::EPSILON)
    }

    let registry = seed_obs::global();
    let db = scenarios::populated_database(objects);
    let net = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").expect("bind loopback");
    let addr = net.local_addr();

    // Warm up caches and the connection path, then interleave the modes and keep the best of
    // two runs each — the ratio of two best-cases is far less scheduler-noisy than one pair.
    run(addr, total_ops / 10 + 1, objects);
    let mut enabled_ops_per_s: f64 = 0.0;
    let mut disabled_ops_per_s: f64 = 0.0;
    for _ in 0..2 {
        registry.set_enabled(true);
        enabled_ops_per_s = enabled_ops_per_s.max(run(addr, total_ops, objects));
        registry.set_enabled(false);
        disabled_ops_per_s = disabled_ops_per_s.max(run(addr, total_ops, objects));
    }
    registry.set_enabled(true);
    net.shutdown();

    let overhead = disabled_ops_per_s / enabled_ops_per_s.max(f64::EPSILON);
    row(
        "E16",
        &format!("observability: {total_ops} pipelined reads, recording on vs off"),
        format!(
            "on {enabled_ops_per_s:.0} op/s  off {disabled_ops_per_s:.0} op/s  overhead {overhead:.3}x (compiled in: {})",
            seed_obs::recording_compiled_in()
        ),
    );
    ExperimentMetrics::new(
        "E16",
        &[
            ("total_ops", total_ops as f64),
            ("enabled_ops_per_s", enabled_ops_per_s),
            ("disabled_ops_per_s", disabled_ops_per_s),
            ("overhead_x", overhead),
            ("recording_compiled_in", f64::from(u8::from(seed_obs::recording_compiled_in()))),
        ],
    )
}

/// E17 — failover downtime: the write-unavailability window of a controlled promotion
/// (`docs/OPERATIONS.md` §7).  Each round builds a fresh durable primary + caught-up replica
/// pair over loopback, then measures from the moment the `Promote` order is issued (the fence
/// lands inside it) until the promoted node accepts its first write.  The window covers the
/// fence round-trip, the tail drain, the in-place role flip and the first post-flip commit —
/// i.e. everything a client-observed outage is made of in a switchover where nothing crashed.
pub fn e17_failover_downtime(objects: usize, rounds: usize) -> ExperimentMetrics {
    use seed_net::{RemoteClient, ReplicaNode, SeedNetServer};

    let base = std::env::temp_dir().join(format!("seed-bench-e17-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut windows: Vec<Duration> = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let primary_dir = base.join(format!("primary-{round}"));
        let replica_dir = base.join(format!("replica-{round}"));
        let db = Database::create_durable(&primary_dir, figure3_schema()).expect("create durable");
        let net = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").expect("bind loopback");
        let addr = net.local_addr();
        let mut writer = RemoteClient::connect(addr).expect("connect primary");
        for i in 0..objects {
            writer
                .checkin(vec![Update::CreateObject {
                    class: "Data".into(),
                    name: format!("Data{round:02}x{i:05}"),
                }])
                .expect("checkin");
        }
        let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").expect("replica");
        let target = net.core().with_database(|db| db.durable_lsn().expect("durable"));
        assert!(replica.wait_for_lsn(target, Duration::from_secs(30)), "replica lagged out");
        let new_addr = replica.local_addr();

        let start = Instant::now();
        let mut operator = RemoteClient::connect(new_addr).expect("connect replica");
        operator.promote(1, &new_addr.to_string()).expect("promote");
        // `promote` returns after the flip, so the first write normally lands immediately;
        // the retry loop only absorbs transient connection churn.
        let mut accepted = false;
        while !accepted {
            accepted = RemoteClient::connect(new_addr)
                .and_then(|mut c| {
                    c.checkin(vec![Update::CreateObject {
                        class: "Data".into(),
                        name: format!("PostFailover{round}"),
                    }])
                })
                .is_ok();
            assert!(start.elapsed() < Duration::from_secs(30), "new primary never took writes");
        }
        windows.push(start.elapsed());
        replica.shutdown();
        net.shutdown();
    }
    let _ = std::fs::remove_dir_all(&base);

    let p50 = percentile(&mut windows, 0.50);
    let p99 = percentile(&mut windows, 0.99);
    row(
        "E17",
        &format!("failover: write-unavailability over {rounds} controlled promotions"),
        format!("downtime p50 {:.0} us  p99 {:.0} us", p50, p99),
    );
    ExperimentMetrics::new(
        "E17",
        &[
            ("rounds", rounds as f64),
            ("objects", objects as f64),
            ("downtime_p50_us", p50),
            ("downtime_p99_us", p99),
        ],
    )
}

/// Renders the collected metrics as a JSON document (`experiment id → {metric: value}`).
pub fn render_bench_json(results: &[ExperimentMetrics], smoke: bool) -> String {
    fn number(v: f64) -> String {
        if v.is_finite() {
            // Trim to a sane precision; metric values are timings and counts.
            let s = format!("{v:.3}");
            s.trim_end_matches('0').trim_end_matches('.').to_string()
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"seed-bench/1\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"experiments\": {\n");
    for (i, result) in results.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {{", result.id));
        for (j, (name, value)) in result.metrics.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {}", number(*value)));
        }
        // The registry as it stood when this experiment finished: the same counters the
        // `Stats` wire frame exposes, flattened for trend-tracking next to the timings.
        if !result.obs.is_empty() {
            out.push_str(", \"obs\": {");
            for (j, (name, value)) in result.obs.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{name}\": {}", number(*value)));
            }
            out.push('}');
        }
        out.push_str(if i + 1 < results.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Runs every experiment and prints the table.  `smoke` uses small parameters (CI-friendly:
/// seconds, not minutes) — the metrics are still real measurements, just noisier.
/// Next to the table, writes `BENCH.json` into the current directory.
pub fn run_report_mode(smoke: bool) {
    println!(
        "SEED reproduction — evaluation report (quick timers; see benches/ for Criterion runs)"
    );
    println!("{}", "-".repeat(110));
    let mut results: Vec<ExperimentMetrics> = Vec::new();
    // Each experiment carries the registry as it stood when that experiment finished, so a
    // regression in BENCH.json timings can be cross-read against the system counters.
    let add = |results: &mut Vec<ExperimentMetrics>, mut m: ExperimentMetrics| {
        m.obs = registry_flat();
        results.push(m);
    };
    if smoke {
        add(&mut results, e1_spades_overhead(20));
        add(&mut results, e2_consistency_overhead(20));
        add(&mut results, e3_version_storage(40, 4, 3));
        add(&mut results, e4_pattern_propagation(50));
        add(&mut results, e5_reclassification(50));
        add(&mut results, e6_retrieval(200));
        add(&mut results, e7_storage_engine(500));
        add(&mut results, e8_multiuser(4, 5));
        add(&mut results, e9_indexed_retrieval(&[200, 1_000]));
        add(&mut results, e10_durable_throughput(1_000, 50));
        add(&mut results, e11_net_throughput(200, 4, 250));
        add(&mut results, e12_replicated_read_throughput(200, 4, 200, 10));
        add(&mut results, e13_segmented_recovery(2_000, 32 * 1024));
        add(&mut results, e14_mvcc_snapshot_reads(200, 4, 200, 10));
        add(&mut results, e15_pipelined_throughput(200, 2_000));
        add(&mut results, e16_metrics_overhead(200, 2_000));
        add(&mut results, e17_failover_downtime(50, 3));
    } else {
        add(&mut results, e1_spades_overhead(120));
        add(&mut results, e2_consistency_overhead(120));
        add(&mut results, e3_version_storage(200, 10, 5));
        add(&mut results, e4_pattern_propagation(500));
        add(&mut results, e5_reclassification(500));
        add(&mut results, e6_retrieval(2000));
        add(&mut results, e7_storage_engine(5000));
        add(&mut results, e8_multiuser(8, 25));
        add(&mut results, e9_indexed_retrieval(&[1_000, 10_000]));
        add(&mut results, e10_durable_throughput(10_000, 100));
        add(&mut results, e11_net_throughput(1_000, 8, 2_000));
        add(&mut results, e12_replicated_read_throughput(1_000, 8, 1_000, 30));
        add(&mut results, e13_segmented_recovery(20_000, 256 * 1024));
        add(&mut results, e14_mvcc_snapshot_reads(1_000, 8, 1_000, 30));
        add(&mut results, e15_pipelined_throughput(1_000, 20_000));
        add(&mut results, e16_metrics_overhead(1_000, 20_000));
        add(&mut results, e17_failover_downtime(200, 8));
    }
    println!("{}", "-".repeat(110));
    let json = render_bench_json(&results, smoke);
    match std::fs::write("BENCH.json", &json) {
        Ok(()) => println!("machine-readable metrics written to BENCH.json"),
        Err(e) => eprintln!("could not write BENCH.json: {e}"),
    }
}

/// Runs every experiment with report-sized parameters and prints the table (plus `BENCH.json`).
pub fn run_report() {
    run_report_mode(false);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rows_run_with_small_parameters() {
        // Smoke test: every experiment function runs without panicking on tiny inputs.
        e1_spades_overhead(10);
        e2_consistency_overhead(10);
        e3_version_storage(10, 2, 2);
        e4_pattern_propagation(5);
        e5_reclassification(5);
        e6_retrieval(10);
        e7_storage_engine(50);
        e8_multiuser(2, 2);
        e9_indexed_retrieval(&[20]);
        e10_durable_throughput(50, 5);
        e11_net_throughput(20, 2, 10);
        e12_replicated_read_throughput(20, 2, 10, 2);
        e13_segmented_recovery(100, 2 * 1024);
        e14_mvcc_snapshot_reads(20, 2, 10, 2);
        e15_pipelined_throughput(20, 100);
        e16_metrics_overhead(20, 100);
        e17_failover_downtime(5, 1);
    }

    #[test]
    fn bench_json_is_valid_and_keyed_by_experiment() {
        let mut with_obs = ExperimentMetrics::new("E1", &[("a_us", 1.5), ("b_x", 2.0)]);
        with_obs.obs =
            vec![("wal_append_us_count".into(), 42.0), ("net_bytes_in_total".into(), 9.5)];
        let results = vec![with_obs, ExperimentMetrics::new("E10", &[("speedup_x", 120.25)])];
        let json = render_bench_json(&results, true);
        let value = serde_json::from_str(&json).expect("BENCH.json must parse");
        let experiments = value.get("experiments").expect("experiments key");
        let e1 = experiments.get("E1").expect("E1 entry");
        assert_eq!(e1.get("a_us").and_then(|v| v.as_f64()), Some(1.5));
        assert_eq!(
            experiments.get("E10").and_then(|e| e.get("speedup_x")).and_then(|v| v.as_f64()),
            Some(120.25)
        );
        // The registry snapshot rides along as a nested object, keyed by metric name.
        let obs = e1.get("obs").expect("obs object");
        assert_eq!(obs.get("wal_append_us_count").and_then(|v| v.as_f64()), Some(42.0));
        assert_eq!(obs.get("net_bytes_in_total").and_then(|v| v.as_f64()), Some(9.5));
        assert!(experiments.get("E10").unwrap().get("obs").is_none(), "empty obs stays absent");
    }

    /// The acceptance criterion of the durability refactor, at its stated scale: at 10k
    /// objects, committing one object mutation must be at least 50× cheaper than a full
    /// snapshot save (write-through is sync-bound and flat; the snapshot grows with the
    /// database).  A wall-clock ratio is only meaningful on the optimized build, so the hard
    /// bar is ignored under debug builds (CI's bench-smoke job runs it with `--release`); the
    /// structural O(delta) property is asserted unconditionally by
    /// `seed-core::durability::tests::per_commit_durable_cost_is_o_delta`.
    /// The acceptance criterion of the network subsystem: with 4 concurrent TCP clients,
    /// aggregate read throughput must exceed the single-client baseline (reads proceed in
    /// parallel on the server's read–write lock; a lone blocking client is latency-bound).
    /// Scheduling-sensitive, so asserted only on the optimized build (CI's net job runs it
    /// with `--release`); on a single-core host the server is CPU-bound and aggregate scaling
    /// is physically impossible, so the bar is enforced only where parallelism exists.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "scaling bar is only meaningful in release builds")]
    fn e11_concurrent_clients_scale_read_throughput() {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores < 2 {
            eprintln!("skipping the scaling bar: only {cores} core(s) available");
            return;
        }
        let result = e11_net_throughput(500, 4, 1_500);
        let scaling = result.get("scaling_x").expect("metric present");
        assert!(
            scaling > 1.0,
            "4 concurrent clients must beat the single-client baseline, got {scaling}x on {cores} cores"
        );
    }

    /// The acceptance criterion of the replication subsystem: with 2 read replicas, the same
    /// client fleet must push more aggregate reads per second through the read-preferred fanout
    /// than against the primary alone (each replica answers from its own database behind its
    /// own lock, so the topology adds serving capacity).  Scheduling-sensitive, so asserted
    /// only on optimized builds and only where parallelism exists (CI's replication job runs it
    /// with `--release`; a 1-core host is CPU-bound across all three processes' threads).
    #[test]
    #[cfg_attr(debug_assertions, ignore = "scaling bar is only meaningful in release builds")]
    fn e12_read_replicas_scale_read_throughput() {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores < 2 {
            eprintln!("skipping the replication scaling bar: only {cores} core(s) available");
            return;
        }
        let result = e12_replicated_read_throughput(500, 4, 1_500, 5);
        let scaling = result.get("scaling_x").expect("metric present");
        assert!(
            scaling > 1.0,
            "2 read replicas must beat the primary-alone baseline, got {scaling}x on {cores} cores"
        );
    }

    /// The acceptance bar of the pipelining tentpole: at depth 64 one connection must push at
    /// least 3× the synchronous (depth-1) ops/s — the batch pays one round trip and one
    /// coalesced write where the sync loop pays sixty-four.  Timing-sensitive, so asserted only
    /// on optimized builds (CI's net job runs it with `--release`) and only where parallelism
    /// exists: on a single-core host the reactor, the worker shard and the client timeshare one
    /// CPU and the ratio measures the scheduler, not the protocol.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "pipelining bar is only meaningful in release builds")]
    fn e15_deep_pipelines_beat_the_sync_baseline() {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores < 2 {
            eprintln!("skipping the pipelining bar: only {cores} core(s) available");
            return;
        }
        let result = e15_pipelined_throughput(500, 20_000);
        let speedup = result.get("speedup_x_64").expect("metric present");
        assert!(
            speedup >= 3.0,
            "depth-64 pipelining must reach 3x the sync baseline, got {speedup:.2}x on {cores} cores"
        );
    }

    /// The acceptance bar of the segmented-WAL tentpole: parallel replay is bit-identical to
    /// serial replay (asserted inside the experiment on real segment files) and not
    /// pathologically slower — the per-segment parse is embarrassingly parallel, so even with
    /// thread-scatter overhead it must stay within 2x of the serial path on a log of this
    /// size.  Timing-sensitive, so the ratio bar only runs on optimized builds and multi-core
    /// hosts (CI's recovery job runs it with `--release`).
    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing bar is only meaningful in release builds")]
    fn e13_parallel_replay_is_identical_and_not_pathological() {
        let result = e13_segmented_recovery(20_000, 64 * 1024);
        assert!(result.get("segments").expect("metric present") >= 8.0, "log must span segments");
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores < 2 {
            eprintln!("skipping the replay ratio bar: only {cores} core(s) available");
            return;
        }
        let speedup = result.get("speedup_x").expect("metric present");
        assert!(
            speedup > 0.5,
            "parallel replay must stay within 2x of serial replay, got {speedup}x on {cores} cores"
        );
    }

    /// The acceptance bars of the MVCC snapshot-reads tentpole.  The structural half —
    /// replicas patch O(delta), never reset — is asserted on every build: it is a counter,
    /// not a timing.  The retention half (reads keep most of their throughput while a writer
    /// commits continuously) is scheduling-sensitive, so that bar only runs on optimized
    /// multi-core builds (CI's mvcc job runs it with `--release`).
    #[test]
    #[cfg_attr(debug_assertions, ignore = "retention bar is only meaningful in release builds")]
    fn e14_snapshot_reads_survive_concurrent_checkins() {
        let result = e14_mvcc_snapshot_reads(500, 4, 1_500, 10);
        assert_eq!(result.get("replica_resets"), Some(0.0), "stream must apply incrementally");
        let items = result.get("items_per_commit").expect("metric present");
        assert!(items <= 4.0, "replica apply touched {items} items per one-object commit");
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores < 2 {
            eprintln!("skipping the retention bar: only {cores} core(s) available");
            return;
        }
        let retention = result.get("retention_x").expect("metric present");
        assert!(
            retention > 0.5,
            "snapshot reads must retain most throughput under a write stream, got {retention}x \
             on {cores} cores"
        );
    }

    /// The acceptance bar of the observability tentpole: full instrumentation (per-request
    /// histograms, byte counters, WAL timers) must cost at most 5% of pipelined read
    /// throughput versus the same binary with recording switched off.  A wall-clock ratio is
    /// only meaningful on optimized builds (CI's obs job runs it with `--release`), and on a
    /// single-core host the ratio measures the scheduler, not the atomics.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "overhead bar is only meaningful in release builds")]
    fn e16_instrumentation_overhead_stays_within_five_percent() {
        if !seed_obs::recording_compiled_in() {
            eprintln!("skipping the overhead bar: recording compiled out");
            return;
        }
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores < 2 {
            eprintln!("skipping the overhead bar: only {cores} core(s) available");
            return;
        }
        let result = e16_metrics_overhead(500, 20_000);
        let overhead = result.get("overhead_x").expect("metric present");
        assert!(
            overhead <= 1.05,
            "instrumentation must cost at most 5% of read throughput, got {overhead:.3}x \
             on {cores} cores"
        );
    }

    /// The failover bar: a controlled promotion of a caught-up replica must keep the
    /// client-observed write outage under two seconds — the fence is one round-trip, the drain
    /// is empty when the replica is caught up, and the flip reuses the store in place, so the
    /// window is dominated by a handful of loopback round-trips and one fsync.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing bar is only meaningful in release builds")]
    fn e17_controlled_failover_downtime_stays_under_two_seconds() {
        let result = e17_failover_downtime(100, 3);
        let p99 = result.get("downtime_p99_us").expect("metric present");
        assert!(
            p99 < 2_000_000.0,
            "controlled-promotion write outage must stay under 2 s, got {p99:.0} us"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing bar is only meaningful in release builds")]
    fn e10_write_through_beats_snapshot_by_50x_at_scale() {
        let result = e10_durable_throughput(10_000, 20);
        let speedup = result.get("speedup_x").expect("metric present");
        assert!(
            speedup >= 50.0,
            "write-through commit must be >= 50x cheaper than snapshot save, got {speedup}x"
        );
    }
}
