//! Typed identifiers for schema elements.
//!
//! Classes and associations are referred to by small integer handles inside a [`crate::Schema`];
//! the newtypes prevent mixing the two id spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle of an object class within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClassId(pub u32);

/// Handle of an association (relationship class) within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AssociationId(pub u32);

impl ClassId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AssociationId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

impl fmt::Display for AssociationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assoc#{}", self.0)
    }
}

/// Reference to either a class or an association — generalization hierarchies exist for both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SchemaElementId {
    /// An object class.
    Class(ClassId),
    /// An association.
    Association(AssociationId),
}

impl fmt::Display for SchemaElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaElementId::Class(c) => write!(f, "{c}"),
            SchemaElementId::Association(a) => write!(f, "{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(ClassId(1) < ClassId(2));
        assert_eq!(ClassId(3).index(), 3);
        assert_eq!(ClassId(3).to_string(), "class#3");
        assert_eq!(AssociationId(7).to_string(), "assoc#7");
        assert_eq!(SchemaElementId::Class(ClassId(1)).to_string(), "class#1");
    }

    #[test]
    fn element_ids_distinguish_kinds() {
        assert_ne!(
            SchemaElementId::Class(ClassId(0)),
            SchemaElementId::Association(AssociationId(0))
        );
    }
}
