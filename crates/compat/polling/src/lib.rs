//! Offline stand-in for the parts of the `polling` crate the workspace uses: a portable
//! readiness poller with **oneshot** event delivery and a cross-thread wakeup.
//!
//! Backed by `poll(2)` through a direct libc FFI declaration (the build has no `libc` crate;
//! `std` already links the C library, so the symbols resolve without any new dependency).  The
//! crates.io `polling` crate would use epoll/kqueue/IOCP per platform; this stand-in supports
//! the workspace's target (Linux) and keeps the same observable semantics:
//!
//! * [`Poller::add`] / [`Poller::modify`] register interest in a source under a caller-chosen
//!   `key`; [`Poller::wait`] blocks until readiness, a timeout, or a [`Poller::notify`] call.
//! * Delivery is **oneshot**: once an event for a key is returned, that key's interest is
//!   cleared and must be re-armed with `modify` — exactly the contract of the real crate, and
//!   what makes a one-thread reactor race-free.
//! * [`Poller::notify`] wakes a concurrent `wait` from any thread via a self-pipe; wakeups
//!   coalesce and never produce an event entry.

use std::collections::HashMap;
use std::io;
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;
const EINTR: i32 = 4;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// Interest in (or readiness of) a source, tagged with the caller's `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen identifier the source was registered under.
    pub key: usize,
    /// Interest in / readiness for reading.
    pub readable: bool,
    /// Interest in / readiness for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Self {
        Self { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Self {
        Self { key, readable: false, writable: true }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Self {
        Self { key, readable: true, writable: true }
    }

    /// No interest (the source stays registered but produces no events until re-armed).
    pub fn none(key: usize) -> Self {
        Self { key, readable: false, writable: false }
    }
}

struct Registration {
    fd: RawFd,
    interest: Event,
}

/// A `poll(2)`-backed readiness poller with oneshot delivery and a self-pipe notifier.
pub struct Poller {
    registry: Mutex<HashMap<usize, Registration>>,
    notify_read: RawFd,
    notify_write: RawFd,
    /// Collapses concurrent `notify` calls into one pipe byte (the pipe could otherwise fill
    /// and block a notifier).
    notified: AtomicBool,
}

// The registry is mutex-guarded and the pipe fds are only read/written atomically.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates a poller (and its internal wakeup pipe).
    pub fn new() -> io::Result<Self> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            registry: Mutex::new(HashMap::new()),
            notify_read: fds[0],
            notify_write: fds[1],
            notified: AtomicBool::new(false),
        })
    }

    /// Registers `source` under `interest.key` with the given initial interest.  The caller
    /// must keep the source alive (and its fd open) until [`Poller::delete`].
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut registry = self.registry.lock().unwrap();
        if registry.contains_key(&interest.key) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("key {} is already registered", interest.key),
            ));
        }
        registry.insert(interest.key, Registration { fd, interest });
        Ok(())
    }

    /// Replaces the interest of the source registered under `interest.key` (the re-arm call of
    /// the oneshot contract).
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut registry = self.registry.lock().unwrap();
        match registry.get_mut(&interest.key) {
            Some(reg) => {
                reg.fd = fd;
                reg.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("key {} is not registered", interest.key),
            )),
        }
    }

    /// Removes every registration of `source` (by fd).
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        self.registry.lock().unwrap().retain(|_, reg| reg.fd != fd);
        Ok(())
    }

    /// Blocks until at least one armed source is ready, `timeout` passes (`None` = forever),
    /// or another thread calls [`Poller::notify`].  Ready sources are appended to `events`
    /// (which is **not** cleared first) and their interest is cleared — oneshot delivery.
    /// Returns the number of events appended; a notify wakeup appends nothing.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        // Snapshot the armed registrations so the lock is not held across the blocking call
        // (`notify` never needs the lock, but `Poller` is Sync and should not serialize on a
        // sleeping waiter).
        let mut pollfds = vec![PollFd { fd: self.notify_read, events: POLLIN, revents: 0 }];
        let mut keys = vec![usize::MAX];
        {
            let registry = self.registry.lock().unwrap();
            for (key, reg) in registry.iter() {
                let mut mask = 0i16;
                if reg.interest.readable {
                    mask |= POLLIN;
                }
                if reg.interest.writable {
                    mask |= POLLOUT;
                }
                if mask != 0 {
                    pollfds.push(PollFd { fd: reg.fd, events: mask, revents: 0 });
                    keys.push(*key);
                }
            }
        }
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(i32::MAX as u128) as c_int;
                // Round sub-millisecond timeouts up so tiny sleeps do not become busy spins.
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms
                }
            }
        };
        let ready = loop {
            let rc = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                break rc;
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() != Some(EINTR) {
                return Err(err);
            }
        };
        if ready == 0 {
            return Ok(0);
        }
        // Drain the wakeup pipe (coalesced notifies) without emitting an event.
        if pollfds[0].revents != 0 {
            let mut buf = [0u8; 64];
            while unsafe { read(self.notify_read, buf.as_mut_ptr(), buf.len()) } > 0 {}
            self.notified.store(false, Ordering::SeqCst);
        }
        let mut delivered = 0;
        let mut registry = self.registry.lock().unwrap();
        for (pollfd, key) in pollfds.iter().zip(keys.iter()).skip(1) {
            if pollfd.revents == 0 {
                continue;
            }
            let Some(reg) = registry.get_mut(key) else { continue };
            let error = pollfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
            let event = Event {
                key: *key,
                readable: reg.interest.readable && (pollfd.revents & POLLIN != 0 || error),
                writable: reg.interest.writable && (pollfd.revents & POLLOUT != 0 || error),
            };
            if event.readable || event.writable {
                reg.interest = Event::none(*key);
                events.push(event);
                delivered += 1;
            }
        }
        Ok(delivered)
    }

    /// Wakes a concurrent [`Poller::wait`] from any thread.  Wakeups coalesce; calling this
    /// with no waiter makes the next `wait` return immediately.
    pub fn notify(&self) -> io::Result<()> {
        if !self.notified.swap(true, Ordering::SeqCst) {
            let byte = 1u8;
            // A full pipe means a wakeup is already pending — exactly what we want.
            let _ = unsafe { write(self.notify_write, &byte, 1) };
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.notify_read);
            close(self.notify_write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn readable_event_fires_once_and_rearms_with_modify() {
        let (mut client, server) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        // Nothing to read yet: the wait times out.
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);

        client.write_all(b"x").unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0], Event { key: 7, readable: true, writable: false });

        // Oneshot: without a re-arm the same readiness produces no further events.
        events.clear();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "oneshot delivery must clear the interest");

        poller.modify(&server, Event::readable(7)).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1, "modify must re-arm the key");
        let mut server = server;
        let mut byte = [0u8; 1];
        server.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn writable_interest_and_both_directions() {
        let (mut client, server) = pair();
        let poller = Poller::new().unwrap();
        // A fresh connected socket has send-buffer space: writable fires immediately.
        poller.add(&server, Event::writable(1)).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events, vec![Event { key: 1, readable: false, writable: true }]);

        client.write_all(b"y").unwrap();
        poller.modify(&server, Event::all(1)).unwrap();
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events, vec![Event { key: 1, readable: true, writable: true }]);
    }

    #[test]
    fn notify_wakes_a_waiter_without_an_event() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = poller.clone();
        let waiter = std::thread::spawn(move || {
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
            (n, events.len())
        });
        std::thread::sleep(Duration::from_millis(50));
        waker.notify().unwrap();
        let (n, len) = waiter.join().unwrap();
        assert_eq!((n, len), (0, 0), "a notify wakeup appends no events");
        // Coalesced notifies with no waiter: the next wait returns immediately, once.
        waker.notify().unwrap();
        waker.notify().unwrap();
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        waker.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "pending notify must not block");
    }

    #[test]
    fn delete_and_duplicate_keys() {
        let (mut client, server) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(3)).unwrap();
        assert!(poller.add(&server, Event::readable(3)).is_err(), "duplicate key");
        poller.delete(&server).unwrap();
        client.write_all(b"z").unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "a deleted source must produce no events");
        assert!(poller.modify(&server, Event::readable(3)).is_err(), "gone after delete");
    }

    #[test]
    fn peer_hangup_is_delivered_to_read_interest() {
        let (client, server) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(9)).unwrap();
        drop(client);
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable, "EOF must wake the reader (read() will see 0 bytes)");
    }
}
