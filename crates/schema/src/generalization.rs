//! Queries over generalization hierarchies of classes and associations.
//!
//! "Generalization is a well known principle for representing meta-classifications
//! ('is-a'-relationships).  This principle can be used to define categories in the schema that
//! allow for dealing with vague data in a well defined manner.  We extend generalization from
//! object classes also to associations."  (paper, section *Vague data*)
//!
//! [`GeneralizationHierarchy`] offers the navigation operations `seed-core` needs for
//! re-classification: finding the hierarchy an element belongs to, checking whether a move is a
//! *specialization* (more precise) or a *generalization* (less precise), and computing the
//! lowest common ancestor of two elements.

use crate::ids::{AssociationId, ClassId};
use crate::schema::Schema;

/// Direction of a re-classification move within a generalization hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// The target is a (transitive) specialization of the source: knowledge became more precise.
    Specialize,
    /// The target is a (transitive) generalization of the source: knowledge became vaguer.
    Generalize,
    /// Source and target are in the same hierarchy but on different branches (e.g. moving an
    /// `Access` relationship mis-classified as `Read` over to `Write`): allowed, because both
    /// interpretations share a common ancestor that justified storing the item at all.
    Lateral,
    /// Source and target share no common ancestor: the move is not a re-classification.
    Unrelated,
    /// Source and target are identical.
    Identity,
}

/// A read-only view over the generalization structure of a schema.
pub struct GeneralizationHierarchy<'a> {
    schema: &'a Schema,
}

impl<'a> GeneralizationHierarchy<'a> {
    /// Creates the view.
    pub fn new(schema: &'a Schema) -> Self {
        Self { schema }
    }

    // ----- classes ------------------------------------------------------------------------------

    /// The root (most general class) of the hierarchy `class` belongs to.
    pub fn class_root(&self, class: ClassId) -> ClassId {
        *self
            .schema
            .class_ancestors(class)
            .last()
            .expect("ancestors always include the class itself")
    }

    /// Depth of `class` below its hierarchy root (root has depth 0).
    pub fn class_depth(&self, class: ClassId) -> usize {
        self.schema.class_ancestors(class).len() - 1
    }

    /// Lowest common ancestor of two classes, if they share one.
    pub fn class_lca(&self, a: ClassId, b: ClassId) -> Option<ClassId> {
        let ancestors_a = self.schema.class_ancestors(a);
        let ancestors_b = self.schema.class_ancestors(b);
        ancestors_a.into_iter().find(|x| ancestors_b.contains(x))
    }

    /// Classifies a re-classification move from `from` to `to`.
    pub fn classify_class_move(&self, from: ClassId, to: ClassId) -> MoveKind {
        if from == to {
            MoveKind::Identity
        } else if self.schema.class_is_a(to, from) {
            MoveKind::Specialize
        } else if self.schema.class_is_a(from, to) {
            MoveKind::Generalize
        } else if self.class_lca(from, to).is_some() {
            MoveKind::Lateral
        } else {
            MoveKind::Unrelated
        }
    }

    /// Leaves (classes with no specializations) below `class`, including `class` itself if it
    /// has none.  These are the candidates for fully precise classification.
    pub fn class_leaves(&self, class: ClassId) -> Vec<ClassId> {
        let mut descendants = self.schema.class_descendants(class);
        descendants.push(class);
        descendants.into_iter().filter(|&c| self.schema.subclasses(c).is_empty()).collect()
    }

    // ----- associations ---------------------------------------------------------------------------

    /// The root of the hierarchy `assoc` belongs to.
    pub fn association_root(&self, assoc: AssociationId) -> AssociationId {
        *self
            .schema
            .association_ancestors(assoc)
            .last()
            .expect("ancestors always include the association itself")
    }

    /// Depth of `assoc` below its hierarchy root.
    pub fn association_depth(&self, assoc: AssociationId) -> usize {
        self.schema.association_ancestors(assoc).len() - 1
    }

    /// Lowest common ancestor of two associations, if they share one.
    pub fn association_lca(&self, a: AssociationId, b: AssociationId) -> Option<AssociationId> {
        let ancestors_a = self.schema.association_ancestors(a);
        let ancestors_b = self.schema.association_ancestors(b);
        ancestors_a.into_iter().find(|x| ancestors_b.contains(x))
    }

    /// Classifies a re-classification move between associations.
    pub fn classify_association_move(&self, from: AssociationId, to: AssociationId) -> MoveKind {
        if from == to {
            MoveKind::Identity
        } else if self.schema.association_is_a(to, from) {
            MoveKind::Specialize
        } else if self.schema.association_is_a(from, to) {
            MoveKind::Generalize
        } else if self.association_lca(from, to).is_some() {
            MoveKind::Lateral
        } else {
            MoveKind::Unrelated
        }
    }

    /// Leaves below an association, including the association itself if it has none.
    pub fn association_leaves(&self, assoc: AssociationId) -> Vec<AssociationId> {
        let mut descendants = self.schema.association_descendants(assoc);
        descendants.push(assoc);
        descendants.into_iter().filter(|&a| self.schema.subassociations(a).is_empty()).collect()
    }

    /// Classes that still require specialization under a covering condition: covering classes
    /// that have at least one subclass (an instance sitting at such a class is *incomplete*).
    pub fn covering_classes(&self) -> Vec<ClassId> {
        self.schema
            .classes()
            .iter()
            .filter(|c| c.covering && !self.schema.subclasses(c.id).is_empty())
            .map(|c| c.id)
            .collect()
    }

    /// Associations that still require specialization under a covering condition.
    pub fn covering_associations(&self) -> Vec<AssociationId> {
        self.schema
            .associations()
            .iter()
            .filter(|a| a.covering && !self.schema.subassociations(a.id).is_empty())
            .map(|a| a.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::figure3_schema;

    #[test]
    fn figure3_class_hierarchy() {
        let schema = figure3_schema();
        let h = GeneralizationHierarchy::new(&schema);
        let thing = schema.class_id("Thing").unwrap();
        let data = schema.class_id("Data").unwrap();
        let action = schema.class_id("Action").unwrap();
        let output = schema.class_id("OutputData").unwrap();
        let input = schema.class_id("InputData").unwrap();

        assert_eq!(h.class_root(output), thing);
        assert_eq!(h.class_root(thing), thing);
        assert_eq!(h.class_depth(thing), 0);
        assert_eq!(h.class_depth(data), 1);
        assert_eq!(h.class_depth(output), 2);
        assert_eq!(h.class_lca(output, input), Some(data));
        assert_eq!(h.class_lca(output, action), Some(thing));

        assert_eq!(h.classify_class_move(thing, data), MoveKind::Specialize);
        assert_eq!(h.classify_class_move(data, thing), MoveKind::Generalize);
        assert_eq!(h.classify_class_move(output, input), MoveKind::Lateral);
        assert_eq!(h.classify_class_move(data, data), MoveKind::Identity);

        let leaves = h.class_leaves(data);
        assert!(leaves.contains(&output) && leaves.contains(&input));
        assert!(!leaves.contains(&data));
    }

    #[test]
    fn figure3_association_hierarchy() {
        let schema = figure3_schema();
        let h = GeneralizationHierarchy::new(&schema);
        let access = schema.association_id("Access").unwrap();
        let read = schema.association_id("Read").unwrap();
        let write = schema.association_id("Write").unwrap();

        assert_eq!(h.association_root(read), access);
        assert_eq!(h.association_depth(read), 1);
        assert_eq!(h.association_lca(read, write), Some(access));
        assert_eq!(h.classify_association_move(access, write), MoveKind::Specialize);
        assert_eq!(h.classify_association_move(write, access), MoveKind::Generalize);
        assert_eq!(h.classify_association_move(read, write), MoveKind::Lateral);
        let leaves = h.association_leaves(access);
        assert_eq!(leaves.len(), 2);
    }

    #[test]
    fn unrelated_hierarchies() {
        let schema = figure3_schema();
        let h = GeneralizationHierarchy::new(&schema);
        let thing = schema.class_id("Thing").unwrap();
        let text = schema.class_id("Data.Text").unwrap();
        assert_eq!(h.classify_class_move(thing, text), MoveKind::Unrelated);
        assert_eq!(h.class_lca(thing, text), None);
        let access = schema.association_id("Access").unwrap();
        let contained = schema.association_id("Contained").unwrap();
        assert_eq!(h.classify_association_move(access, contained), MoveKind::Unrelated);
    }

    #[test]
    fn covering_elements_reported() {
        let schema = figure3_schema();
        let h = GeneralizationHierarchy::new(&schema);
        let access = schema.association_id("Access").unwrap();
        assert!(h.covering_associations().contains(&access));
        // Thing is declared covering in figure3_schema (every Thing must become Data or Action).
        let thing = schema.class_id("Thing").unwrap();
        assert!(h.covering_classes().contains(&thing));
    }
}
