//! Offline stand-in for `proptest`: property tests as deterministic random-case sweeps.
//!
//! Supports the API surface the workspace's `mod proptests` blocks use — the [`proptest!`]
//! macro (with `#![proptest_config]`), [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`],
//! `any::<T>()`, integer-range and regex-literal strategies, tuples, [`Strategy::prop_map`],
//! [`prop_oneof!`], [`collection::vec`], [`collection::btree_map`] and [`option::of`].
//!
//! Differences from the real crate: no shrinking (a failure reports the full generated inputs
//! instead of a minimal counterexample), no persistence of failing seeds (generation is
//! deterministic per test name, so every failure reproduces by re-running the test), and only
//! the regex subset that appears in the workspace (`.`, `[a-z]` classes, `*`, `+`, `?`,
//! `{m,n}`).  Restoring crates.io proptest is a one-line change in the root `Cargo.toml`.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a), so each test gets its own
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash ^ 0x5EED_1986_0000_0000 }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from a `usize` range.
    pub fn in_range(&mut self, range: &Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`, like `proptest`'s `prop_map`.
    fn prop_map<T: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    T: Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Self { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------------------------
// Regex-literal string strategies.

/// One atom of the supported regex subset plus its repetition bounds.
#[derive(Debug, Clone)]
struct RegexPiece {
    /// Inclusive code-point ranges the atom may produce.
    choices: Vec<(u32, u32)>,
    min: u32,
    max: u32,
}

fn char_class(pattern: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(u32, u32)> {
    let mut choices = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        match pattern.next() {
            None => panic!("unterminated character class in regex strategy"),
            Some(']') => break,
            Some('-') if pending.is_some() && pattern.peek() != Some(&']') => {
                let lo = pending.take().unwrap();
                let hi = pattern.next().unwrap();
                choices.push((lo as u32, hi as u32));
            }
            Some(c) => {
                if let Some(prev) = pending.replace(c) {
                    choices.push((prev as u32, prev as u32));
                }
            }
        }
    }
    if let Some(prev) = pending {
        choices.push((prev as u32, prev as u32));
    }
    choices
}

fn parse_regex(pattern: &str) -> Vec<RegexPiece> {
    // `.` means "any char"; approximated by printable ASCII plus a few multi-byte
    // code points so UTF-8 handling gets exercised.
    const ANY: &[(u32, u32)] = &[
        (0x20, 0x7E),
        (0x20, 0x7E),
        (0x20, 0x7E),
        (0xC0, 0xFF),
        (0x3B1, 0x3C9),
        (0x1F600, 0x1F64F),
    ];
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '.' => ANY.to_vec(),
            '[' => char_class(&mut chars),
            '\\' => {
                let escaped = chars.next().expect("dangling escape in regex strategy");
                vec![(escaped as u32, escaped as u32)]
            }
            other => vec![(other as u32, other as u32)],
        };
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 16)
            }
            Some('+') => {
                chars.next();
                (1, 16)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} bound"),
                        hi.trim().parse().expect("bad {m,n} bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n} bound");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(RegexPiece { choices, min, max });
    }
    pieces
}

fn sample_char(rng: &mut TestRng, choices: &[(u32, u32)]) -> char {
    loop {
        let (lo, hi) = choices[rng.below(choices.len() as u64) as usize];
        let point = lo + rng.below(u64::from(hi - lo + 1)) as u32;
        if let Some(c) = char::from_u32(point) {
            return c;
        }
    }
}

/// String-literal patterns act as regex strategies, like in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_regex(self) {
            let count = piece.min + rng.below(u64::from(piece.max - piece.min + 1)) as u32;
            for _ in 0..count {
                out.push(sample_char(rng, &piece.choices));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------------------------
// Collection and option combinators.

pub mod collection {
    //! Strategies for collections, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.in_range(&self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates a `BTreeMap` whose size falls in `size` (best effort: duplicate keys
    /// collapse, so a cramped key space may produce fewer entries).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.in_range(&self.size);
            let mut map = BTreeMap::new();
            for _ in 0..target.saturating_mul(4) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod option {
    //! Strategies for `Option`, mirroring `proptest::option`.

    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` roughly three times out of four, like real proptest's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------------------------
// Configuration and macros.

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// running the body over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __inputs = ::std::format!(concat!($("  ", stringify!($arg), " = {:?}\n"),+), $(&$arg),+);
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__message) = __outcome {
                    ::std::panic!(
                        "property {} failed at case {}/{}: {}\ninputs:\n{}",
                        stringify!($name), __case + 1, __config.cases, __message, __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Uniform random choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not panicking) so the
/// harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn regex_strategies_honor_their_pattern() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let ident = Strategy::generate(&"[A-Za-z][A-Za-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&ident.chars().count()), "bad length: {ident:?}");
            let mut chars = ident.chars();
            assert!(chars.next().unwrap().is_ascii_alphabetic());
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_'));

            let short = Strategy::generate(&".{0,12}", &mut rng);
            assert!(short.chars().count() <= 12);
        }
    }

    #[test]
    fn ranges_tuples_and_combinators_generate_in_bounds() {
        let mut rng = TestRng::from_name("combinators");
        let strategy = (0u32..10, crate::option::of(5u64..6));
        for _ in 0..100 {
            let (a, b) = Strategy::generate(&strategy, &mut rng);
            assert!(a < 10);
            assert!(b.is_none() || b == Some(5));
        }
        for _ in 0..50 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let m = Strategy::generate(
                &crate::collection::btree_map(0u32..1000, any::<bool>(), 0..8),
                &mut rng,
            );
            assert!(m.len() < 8);
        }
    }

    #[test]
    fn oneof_and_map_cover_all_alternatives() {
        let mut rng = TestRng::from_name("oneof");
        let strategy = prop_oneof![
            (0u8..1).prop_map(|_| "left".to_string()),
            (0u8..1).prop_map(|_| "right".to_string()),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(Strategy::generate(&strategy, &mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn the_macro_itself_works(x in 0u32..100, label in "[a-z]{1,4}") {
            prop_assert!(x < 100);
            prop_assert_eq!(label.len(), label.chars().count());
            prop_assert_ne!(label.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failing_property failed at case 1/")]
    fn failures_report_inputs() {
        // No #[test] on the inner fn: it is invoked by hand right below.
        proptest! {
            fn failing_property(x in 0u32..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        failing_property();
    }
}
