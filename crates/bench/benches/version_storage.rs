//! E3 — delta-based version storage: snapshot cost and view-reconstruction latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seed_core::VersionId;

fn snapshot_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_snapshot_cost");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    // Snapshot cost depends on the number of *changed* items, not the database size.
    for changes in [5usize, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(changes), &changes, |b, &changes| {
            b.iter(|| {
                let db = seed_bench::versioned_database(200, 3, changes);
                db.version_manager().stored_snapshot_count()
            })
        });
    }
    group.finish();
}

fn view_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_view_reconstruction");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for versions in [2usize, 10, 30] {
        let db = seed_bench::versioned_database(200, versions, 10);
        group.bench_with_input(BenchmarkId::from_parameter(versions), &db, |b, db| {
            b.iter(|| db.version_manager().view(&VersionId::initial()).unwrap().live_object_count())
        });
    }
    group.finish();
}

criterion_group!(benches, snapshot_cost, view_reconstruction);
criterion_main!(benches);
