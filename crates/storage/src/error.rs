//! Error type shared by all storage-layer modules.

use std::fmt;
use std::io;

/// Result alias used throughout `seed-storage`.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (file-backed page store or WAL).
    Io(io::Error),
    /// A page id referred to a page that does not exist in the store.
    PageNotFound(u64),
    /// A record id referred to a slot that does not exist or was deleted.
    RecordNotFound { page: u64, slot: u16 },
    /// A record was too large to fit into a single page.
    RecordTooLarge { size: usize, max: usize },
    /// The requested page has no room for the record and could not be compacted enough.
    PageFull { page: u64, needed: usize, free: usize },
    /// Malformed bytes encountered while decoding (corrupt page, WAL frame, or value).
    Corrupt(String),
    /// The write-ahead log contained a frame whose checksum did not match.
    ChecksumMismatch { lsn: u64 },
    /// The buffer pool could not evict a page because every frame is pinned.
    NoEvictablePage,
    /// A key was not found in an index.
    KeyNotFound,
    /// The engine was asked to operate after being closed.
    Closed,
    /// Catch-all for invalid arguments (zero-sized pool, bad configuration, ...).
    InvalidArgument(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::PageNotFound(p) => write!(f, "page {p} not found"),
            StorageError::RecordNotFound { page, slot } => {
                write!(f, "record not found (page {page}, slot {slot})")
            }
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds maximum of {max} bytes")
            }
            StorageError::PageFull { page, needed, free } => {
                write!(f, "page {page} full: needed {needed} bytes, only {free} free")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::ChecksumMismatch { lsn } => {
                write!(f, "checksum mismatch in WAL frame at lsn {lsn}")
            }
            StorageError::NoEvictablePage => write!(f, "buffer pool exhausted: all pages pinned"),
            StorageError::KeyNotFound => write!(f, "key not found"),
            StorageError::Closed => write!(f, "storage engine is closed"),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = StorageError::RecordNotFound { page: 3, slot: 7 };
        assert!(e.to_string().contains("page 3"));
        assert!(e.to_string().contains("slot 7"));

        let e = StorageError::PageFull { page: 1, needed: 100, free: 10 };
        assert!(e.to_string().contains("needed 100"));
    }

    #[test]
    fn io_error_converts_and_links_source() {
        let ioe = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: StorageError = ioe.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        assert!(std::error::Error::source(&StorageError::KeyNotFound).is_none());
    }
}
