//! The structured-event tracer: a bounded in-memory ring of recent events plus a leveled,
//! rate-limited stderr logger.
//!
//! Events are for the *rare* and *diagnostic* — connection failures, slow operations, resets —
//! not per-request traffic (that is what the metrics are for).  The ring keeps the last
//! [`RING_CAP`] events for in-process inspection; the stderr sink is capped at
//! [`STDERR_BUDGET_PER_SEC`] lines per second so a failure storm cannot turn the logger itself
//! into the outage.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// How many recent events the ring retains.
pub const RING_CAP: usize = 256;

/// Most stderr lines emitted per second; excess events still enter the ring but are counted
/// as suppressed instead of written.
pub const STDERR_BUDGET_PER_SEC: u32 = 50;

/// Event severity.  Ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }

    fn from_u8(v: u8) -> Option<Level> {
        match v {
            0 => Some(Level::Debug),
            1 => Some(Level::Info),
            2 => Some(Level::Warn),
            3 => Some(Level::Error),
            _ => None,
        }
    }
}

/// One structured event: a level, a short static target naming the subsystem (`"net"`,
/// `"slowop"`, `"repl"`), a human message, and `key=value` detail fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Microseconds since the Unix epoch at emission.
    pub ts_micros: u64,
    pub level: Level,
    pub target: &'static str,
    pub message: String,
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// One-line rendering: `WARN [net] read error peer=1.2.3.4:5 client=7`.
    pub fn render(&self) -> String {
        let mut line = format!("{} [{}] {}", self.level.as_str(), self.target, self.message);
        for (k, v) in &self.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(v);
        }
        line
    }
}

/// The ring + stderr sink.  One per [`Registry`](crate::Registry).
pub struct EventRing {
    ring: Mutex<RingState>,
    /// Minimum level written to stderr, as `Level as u8`; `u8::MAX` disables the sink.
    stderr_level: AtomicU8,
    /// Events dropped by the stderr rate limiter (they still reached the ring).
    suppressed: AtomicU64,
}

struct RingState {
    events: VecDeque<Event>,
    window_start: Instant,
    written_this_window: u32,
}

impl EventRing {
    pub(crate) fn new() -> Self {
        Self {
            ring: Mutex::new(RingState {
                events: VecDeque::with_capacity(RING_CAP),
                window_start: Instant::now(),
                written_this_window: 0,
            }),
            // Warn by default: operational failures surface, per-op noise does not.
            stderr_level: AtomicU8::new(Level::Warn as u8),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Records an event into the ring and, level and budget permitting, onto stderr.
    pub fn emit(
        &self,
        level: Level,
        target: &'static str,
        message: impl Into<String>,
        fields: &[(&str, String)],
    ) {
        if cfg!(feature = "off") {
            return;
        }
        let event = Event {
            ts_micros: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
                .unwrap_or(0),
            level,
            target,
            message: message.into(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        let to_stderr = level as u8 >= self.stderr_level.load(Ordering::Relaxed);
        let mut state = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if state.events.len() == RING_CAP {
            state.events.pop_front();
        }
        let line = if to_stderr {
            // Rate limiting shares the ring mutex: emission is already the cold path.
            let now = Instant::now();
            if now.duration_since(state.window_start).as_secs() >= 1 {
                state.window_start = now;
                state.written_this_window = 0;
            }
            if state.written_this_window < STDERR_BUDGET_PER_SEC {
                state.written_this_window += 1;
                Some(event.render())
            } else {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                None
            }
        } else {
            None
        };
        state.events.push_back(event);
        drop(state);
        if let Some(line) = line {
            eprintln!("{line}");
        }
    }

    /// The retained recent events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let state = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        state.events.iter().cloned().collect()
    }

    /// Sets the minimum level echoed to stderr; `None` silences the sink entirely (the ring
    /// still records).
    pub fn set_stderr_level(&self, level: Option<Level>) {
        self.stderr_level.store(level.map(|l| l as u8).unwrap_or(u8::MAX), Ordering::Relaxed);
    }

    /// The current stderr threshold.
    pub fn stderr_level(&self) -> Option<Level> {
        Level::from_u8(self.stderr_level.load(Ordering::Relaxed))
    }

    /// How many events the stderr rate limiter has dropped so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn ring_caps_at_capacity_and_keeps_the_newest() {
        let ring = EventRing::new();
        ring.set_stderr_level(None);
        for i in 0..(RING_CAP + 10) {
            ring.emit(Level::Info, "test", format!("event {i}"), &[]);
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), RING_CAP);
        assert_eq!(recent.last().unwrap().message, format!("event {}", RING_CAP + 9));
        assert_eq!(recent.first().unwrap().message, "event 10");
    }

    #[test]
    fn rate_limiter_suppresses_past_the_per_second_budget() {
        let ring = EventRing::new();
        ring.set_stderr_level(Some(Level::Error));
        // Redirecting stderr is not worth the ceremony: count suppressions instead.
        for _ in 0..(STDERR_BUDGET_PER_SEC + 20) {
            ring.emit(Level::Error, "test", "storm", &[]);
        }
        assert_eq!(ring.suppressed(), 20);
        assert_eq!(ring.recent().len(), (STDERR_BUDGET_PER_SEC + 20) as usize);
    }

    #[test]
    fn render_includes_fields() {
        let ring = EventRing::new();
        ring.set_stderr_level(None);
        ring.emit(Level::Warn, "net", "read error", &[("peer", "1.2.3.4:5".to_string())]);
        let events = ring.recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].render(), "WARN [net] read error peer=1.2.3.4:5");
    }
}
