//! The SPADES specification tool running on SEED, next to the pre-SEED direct implementation.
//!
//! Reproduces the paper's concluding observation in miniature: the same editing session runs on
//! both backends; SEED is slower (it checks everything and versions everything) but catches the
//! specification errors the old tool silently accepted, and can report what is still incomplete.
//!
//! Run with `cargo run --example spades_tool --release`.

use std::time::Instant;

use spades::{
    specification_report, DirectBackend, ElementKind, FlowKind, SeedBackend, SpecBackend, Workload,
    WorkloadConfig,
};

fn interactive_session(backend: &mut dyn SpecBackend) -> usize {
    let mut rejected = 0;
    let mut run = |r: Result<(), spades::SpadesError>| {
        if r.is_err() {
            rejected += 1;
        }
    };
    run(backend.add_element("Alarms", ElementKind::Thing));
    run(backend.add_element("AlarmHandler", ElementKind::Action));
    run(backend.add_element("ProcessData", ElementKind::Thing));
    run(backend.set_description("AlarmHandler", "Handles alarms"));
    run(backend.refine_element("Alarms", ElementKind::Data));
    run(backend.refine_element("ProcessData", ElementKind::InputData));
    run(backend.add_flow("Alarms", "AlarmHandler", FlowKind::Access));
    run(backend.add_flow("ProcessData", "AlarmHandler", FlowKind::Read));
    run(backend.add_keyword("Alarms", "Alarmhandling"));
    run(backend.add_keyword("Alarms", "Display"));
    // A mistake: writing to data that is not known to be an output yet.  SEED rejects it, the
    // old tool records nonsense.
    run(backend.refine_flow("Alarms", "AlarmHandler", FlowKind::Write));
    // The engineer fixes the model and retries.
    run(backend.refine_element("Alarms", ElementKind::OutputData));
    run(backend.refine_flow("Alarms", "AlarmHandler", FlowKind::Write));
    // A containment cycle by accident.
    run(backend.add_element("OperatorAlert", ElementKind::Action));
    run(backend.contain("OperatorAlert", "AlarmHandler"));
    run(backend.contain("AlarmHandler", "OperatorAlert"));
    backend.checkpoint("end of session").ok();
    rejected
}

fn main() {
    println!("=== interactive session ======================================");
    let mut seed = SeedBackend::new();
    let rejected_seed = interactive_session(&mut seed);
    let mut direct = DirectBackend::new();
    let rejected_direct = interactive_session(&mut direct);
    println!(
        "SEED rejected {rejected_seed} erroneous operations; the pre-SEED tool rejected {rejected_direct}."
    );
    println!();
    println!("{}", specification_report(&seed));
    println!("{}", specification_report(&direct));

    println!("=== batch workload: 'considerably slower, but much more flexible' ===");
    let config = WorkloadConfig { data_elements: 120, actions: 60, ..WorkloadConfig::default() };
    let workload = Workload::generate(&config);

    let start = Instant::now();
    let mut direct = DirectBackend::new();
    workload.apply(&mut direct);
    let direct_time = start.elapsed();

    let start = Instant::now();
    let mut seed = SeedBackend::new();
    workload.apply(&mut seed);
    let seed_time = start.elapsed();

    let slowdown = seed_time.as_secs_f64() / direct_time.as_secs_f64().max(f64::EPSILON);
    println!("{} operations", workload.len());
    println!("  direct backend : {direct_time:?}");
    println!("  SEED backend   : {seed_time:?}");
    println!("  slowdown       : {slowdown:.1}x  (the paper: \"considerably slower\")");
    println!(
        "  flexibility    : SEED reports {} incompleteness findings; the direct tool reports {}",
        seed.incompleteness_findings(),
        direct.incompleteness_findings()
    );
}
