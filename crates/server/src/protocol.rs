//! Messages exchanged between clients and the central server.
//!
//! Objects are addressed by their hierarchical names, not by internal ids — a client's local
//! copy and the server's central database do not share id spaces.

use seed_core::{ObjectRecord, RelationshipRecord, Value, VersionId};

/// Identifier the server assigns to a connected client.
pub type ClientId = u64;

/// An update a client made to its local copy and wants applied centrally.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Create an independent object.
    CreateObject {
        /// Class name.
        class: String,
        /// Object name.
        name: String,
    },
    /// Create a dependent object under a (checked-out or newly created) parent.
    CreateDependent {
        /// Parent object name.
        parent: String,
        /// Local name of the dependent class (e.g. `"Text"`).
        class_local: String,
        /// Initial value.
        value: Value,
    },
    /// Set the value of an object.
    SetValue {
        /// Object name.
        object: String,
        /// New value.
        value: Value,
    },
    /// Re-classify an object within its generalization hierarchy.
    Reclassify {
        /// Object name.
        object: String,
        /// Target class name.
        new_class: String,
    },
    /// Create a relationship; bindings refer to objects by name.
    CreateRelationship {
        /// Association name.
        association: String,
        /// `(role, object name)` bindings.
        bindings: Vec<(String, String)>,
    },
    /// Delete an object (logically).
    DeleteObject {
        /// Object name.
        object: String,
    },
}

impl Update {
    /// The names of existing objects this update modifies (used for lock validation).
    /// Creations return the parent (for dependents) or nothing (new independent objects are not
    /// lockable yet).
    pub fn touched_objects(&self) -> Vec<&str> {
        match self {
            Update::CreateObject { .. } => vec![],
            Update::CreateDependent { parent, .. } => vec![parent.as_str()],
            Update::SetValue { object, .. }
            | Update::Reclassify { object, .. }
            | Update::DeleteObject { object } => vec![object.as_str()],
            Update::CreateRelationship { bindings, .. } => {
                bindings.iter().map(|(_, o)| o.as_str()).collect()
            }
        }
    }
}

/// The data handed to a client at check-out time: copies of the requested objects (with their
/// dependent objects) and of the relationships among them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckoutSet {
    /// Copies of the checked-out objects (roots and their dependents).
    pub objects: Vec<ObjectRecord>,
    /// Copies of the relationships among the checked-out objects.
    pub relationships: Vec<RelationshipRecord>,
}

impl CheckoutSet {
    /// Names of the copied objects.
    pub fn object_names(&self) -> Vec<String> {
        self.objects.iter().map(|o| o.name.to_string()).collect()
    }

    /// Number of copied objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the checkout is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// The answer to a [`Request::Query`]: the matching names (sorted), the cardinality, and — for
/// `explain` queries — the rendered physical plan instead of a result set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryAnswer {
    /// Names of the matching objects (empty for `count` and `explain` queries).
    pub names: Vec<String>,
    /// Number of matching objects (zero for `explain` queries).
    pub count: usize,
    /// The rendered plan, when the query was an `explain`.
    pub plan: Option<String>,
}

/// The durability state of the central database, as reported over the protocol.  After a
/// server restart, the counts tell a client exactly what restart recovery reconstructed from
/// the write-through records and the storage WAL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PersistenceStatus {
    /// Whether the central database writes mutations through to durable storage.
    pub durable: bool,
    /// Directory of the durable storage, when durable.
    pub path: Option<String>,
    /// Bytes currently in the storage WAL (recovery replay work is proportional to this).
    pub wal_bytes: u64,
    /// Live, visible objects in the central database.
    pub objects: usize,
    /// Live, visible relationships in the central database.
    pub relationships: usize,
    /// Stored versions.
    pub versions: usize,
}

/// A request sent to the server thread.
#[derive(Debug)]
pub enum Request {
    /// Register a new client; the server replies with its [`ClientId`].
    Connect,
    /// Check out the named objects (taking write locks).
    Checkout {
        /// The requesting client.
        client: ClientId,
        /// Root object names to check out.
        objects: Vec<String>,
    },
    /// Check in a batch of updates as a single transaction and release the client's locks.
    Checkin {
        /// The requesting client.
        client: ClientId,
        /// Updates to apply.
        updates: Vec<Update>,
    },
    /// Release all locks without checking anything in.
    Release {
        /// The requesting client.
        client: ClientId,
    },
    /// Read a single object by name (no lock; servers serve retrieval directly).
    Retrieve {
        /// Object name.
        name: String,
    },
    /// Evaluate a retrieval-language query (or an `explain`) on the central database (no lock;
    /// retrieval goes straight to the server).
    Query {
        /// The query text, e.g. `find Data where name prefix "Alarm"` or `explain count Data`.
        text: String,
    },
    /// Ask the server to create a global version snapshot.
    CreateVersion {
        /// Comment for the version.
        comment: String,
    },
    /// Ask for the durability state of the central database (exposes restart recovery: after a
    /// reopen, the reply reports what was reconstructed from the per-item records and the WAL).
    Persistence,
    /// Ask the server to checkpoint its durable storage (flush pages, truncate the WAL).
    Checkpoint,
    /// Shut the server thread down.
    Shutdown,
}

/// A reply from the server thread.
#[derive(Debug)]
pub enum Response {
    /// Reply to [`Request::Connect`].
    Connected(ClientId),
    /// Reply to [`Request::Checkout`].
    Checkout(Result<CheckoutSet, crate::error::ServerError>),
    /// Reply to [`Request::Checkin`] / [`Request::Release`].
    Ack(Result<(), crate::error::ServerError>),
    /// Reply to [`Request::Retrieve`].
    Object(Result<ObjectRecord, crate::error::ServerError>),
    /// Reply to [`Request::Query`].
    Answer(Result<QueryAnswer, crate::error::ServerError>),
    /// Reply to [`Request::CreateVersion`].
    Version(Result<VersionId, crate::error::ServerError>),
    /// Reply to [`Request::Persistence`].
    Persistence(PersistenceStatus),
    /// Reply to [`Request::Shutdown`].
    ShuttingDown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_objects_cover_lockable_names() {
        assert!(Update::CreateObject { class: "Data".into(), name: "X".into() }
            .touched_objects()
            .is_empty());
        assert_eq!(
            Update::SetValue { object: "Alarms".into(), value: Value::Undefined }.touched_objects(),
            vec!["Alarms"]
        );
        assert_eq!(
            Update::CreateRelationship {
                association: "Access".into(),
                bindings: vec![("from".into(), "Alarms".into()), ("by".into(), "Sensor".into())],
            }
            .touched_objects(),
            vec!["Alarms", "Sensor"]
        );
        assert_eq!(
            Update::CreateDependent {
                parent: "Alarms".into(),
                class_local: "Text".into(),
                value: Value::Undefined
            }
            .touched_objects(),
            vec!["Alarms"]
        );
    }

    #[test]
    fn checkout_set_accessors() {
        let set = CheckoutSet::default();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(set.object_names().is_empty());
    }
}
