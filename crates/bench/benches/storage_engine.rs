//! E7 — storage substrate micro-benchmarks: page operations, WAL appends, engine put/get and
//! B+ tree lookups.

use criterion::{criterion_group, criterion_main, Criterion};
use seed_storage::{BPlusTree, LogRecord, Page, StorageEngine, WriteAheadLog};

fn page_and_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_page_and_wal");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("page_fill", |b| {
        b.iter(|| {
            let mut page = Page::new(1);
            let record = [0xA5u8; 120];
            let mut inserted = 0;
            while page.insert(&record).is_ok() {
                inserted += 1;
            }
            inserted
        })
    });
    group.bench_function("wal_append_100", |b| {
        b.iter(|| {
            let wal = WriteAheadLog::in_memory();
            for i in 0..100u64 {
                wal.append(&LogRecord::Put {
                    txn: 1,
                    key: i.to_le_bytes().to_vec(),
                    value: vec![0u8; 64],
                })
                .unwrap();
            }
            wal.next_lsn()
        })
    });
    group.finish();
}

fn engine_and_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_engine_and_index");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("engine_put_get_1000", |b| {
        b.iter(|| {
            let engine = StorageEngine::in_memory().unwrap();
            for i in 0..1000u32 {
                engine.put(format!("obj/{i:05}").as_bytes(), &[0u8; 128]).unwrap();
            }
            let mut found = 0;
            for i in 0..1000u32 {
                if engine.get(format!("obj/{i:05}").as_bytes()).unwrap().is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    let tree = {
        let mut t = BPlusTree::new();
        for i in 0..10_000u64 {
            t.insert(format!("key{i:06}").as_bytes(), i);
        }
        t
    };
    group.bench_function("btree_lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 6151) % 10_000;
            tree.get(format!("key{i:06}").as_bytes())
        })
    });
    group.bench_function("btree_prefix_scan", |b| b.iter(|| tree.scan_prefix(b"key00042").len()));
    group.finish();
}

criterion_group!(benches, page_and_wal, engine_and_index);
criterion_main!(benches);
