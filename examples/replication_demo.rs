//! WAL-shipping replication over loopback: one durable primary, two read-only replicas.
//!
//! ```sh
//! cargo run --release --example replication_demo
//! ```
//!
//! The demo (1) starts a durable primary and two [`ReplicaNode`]s streaming its WAL, (2) runs
//! a burst of SPADES check-ins against the primary, (3) waits for both replicas to report the
//! primary's end of log and renders the SPADES specification report through each of the three
//! nodes — byte-identical, (4) shows a replica redirecting a checkout to the primary, and (5)
//! routes reads through the read-preferred client, which fans them across the replicas while
//! writes keep going to the primary.  `docs/OPERATIONS.md` is the runbook behind this.

use seed::core::Database;
use seed::net::{RemoteClient, ReplicaNode, SeedNetServer};
use seed::schema::figure3_schema;
use seed::server::{SeedServer, ServerError, Update};
use seed::spades::{specification_report, RemoteBackend, Workload, WorkloadConfig};

fn main() {
    println!("== seed replication demo: 1 primary + 2 replicas over TCP ==\n");
    let base = std::env::temp_dir().join(format!("seed-replication-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // 1. A durable primary (replication ships its storage WAL) and two replicas.
    let db = Database::create_durable(base.join("primary"), figure3_schema()).expect("primary db");
    let primary = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").expect("bind primary");
    let addr = primary.local_addr();
    println!("primary listening on {addr} (durable store: {})", base.join("primary").display());
    let replicas: Vec<ReplicaNode> = (0..2)
        .map(|i| {
            let node = ReplicaNode::start(base.join(format!("replica{i}")), addr, "127.0.0.1:0")
                .expect("start replica");
            println!(
                "replica {i} caught up through LSN {} — serving reads on {}",
                node.applied_lsn(),
                node.local_addr()
            );
            node
        })
        .collect();

    // 2. A burst of SPADES check-ins against the primary.
    let workload = Workload::generate(&WorkloadConfig {
        data_elements: 12,
        actions: 6,
        checkpoint_every: 1_000, // versions are global snapshots; keep the burst to edits
        ..WorkloadConfig::default()
    });
    println!("\napplying a {}-operation SPADES workload to the primary...", workload.len());
    let mut editor =
        RemoteBackend::new(RemoteClient::connect(addr).expect("connect")).expect("schema");
    let rejected = workload.apply(&mut editor);
    println!("  done ({rejected} rejections)");

    // 3. Both replicas converge and answer the report byte-identically.
    let target = primary.core().with_database(|db| db.durable_lsn().expect("durable"));
    for (i, replica) in replicas.iter().enumerate() {
        assert!(
            replica.wait_for_lsn(target, std::time::Duration::from_secs(30)),
            "replica {i} did not catch up"
        );
    }
    println!("\nboth replicas report the primary's end of log (LSN {target});");
    let report_via = |addr| {
        let backend =
            RemoteBackend::new(RemoteClient::connect(addr).expect("connect")).expect("schema");
        specification_report(&backend)
    };
    let primary_report = report_via(addr);
    for (i, replica) in replicas.iter().enumerate() {
        let replica_report = report_via(replica.local_addr());
        assert_eq!(primary_report, replica_report, "replica {i} diverged from the primary");
        println!(
            "  replica {i}'s SPADES report is byte-identical ({} bytes)",
            replica_report.len()
        );
    }
    for line in primary_report.lines().take(4) {
        println!("    | {line}");
    }

    // 4. Writes on a replica are redirected to the primary.
    println!("\na client tries to check out on a replica:");
    let mut on_replica = RemoteClient::connect(replicas[0].local_addr()).expect("connect");
    match on_replica.checkout(&["Data000"]) {
        Err(ServerError::ReadOnlyReplica { primary }) => {
            println!("  refused: read-only replica, writes go to the primary at {primary}");
        }
        other => panic!("expected a redirect, got {other:?}"),
    }
    let status = on_replica.persistence().expect("status").replication.expect("replica status");
    println!(
        "  replica status: applied LSN {} / primary LSN {} (lag {} records)",
        status.applied_lsn,
        status.primary_lsn,
        status.lag()
    );

    // 5. The read-preferred client: reads fan across the replicas, writes hit the primary.
    let replica_addrs: Vec<_> = replicas.iter().map(|r| r.local_addr()).collect();
    let mut client =
        RemoteClient::connect_read_preferred(addr, &replica_addrs).expect("read-preferred");
    client
        .checkin(vec![Update::CreateObject { class: "Data".into(), name: "WrittenOnce".into() }])
        .expect("write goes to the primary");
    let target = primary.core().with_database(|db| db.durable_lsn().expect("durable"));
    for replica in &replicas {
        replica.wait_for_lsn(target, std::time::Duration::from_secs(30));
    }
    for round in 0..4 {
        let record = client.retrieve("WrittenOnce").expect("read from a replica");
        assert_eq!(record.name.to_string(), "WrittenOnce");
        let _ = round;
    }
    println!("\nread-preferred client: 1 write via the primary, 4 reads served by the replicas");
    client.close().expect("close");

    for replica in replicas {
        replica.shutdown();
    }
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&base);
    println!("\nprimary and replicas shut down cleanly — demo complete");
}
