//! Property tests of the wire codec: every [`Request`] / [`Response`] variant round-trips
//! through encode → frame → read → decode, and truncated or corrupted frames error — they
//! never panic and never decode to a different message.
//!
//! `Request`/`Response` carry error types without `PartialEq`, so equality is checked on the
//! `Debug` rendering (which covers every field).

use proptest::prelude::*;
use seed_core::{NameSegment, ObjectName, ObjectRecord, RelationshipRecord, SeedError, Value};
use seed_schema::{AssociationId, ClassId};
use seed_server::{
    AssociationSummary, CheckoutSet, ClassSummary, PersistenceStatus, QueryAnswer,
    RelationshipInfo, ReplicationRole, ReplicationStatus, Request, Response, SchemaSummary,
    ServerError, Update,
};

use crate::codec::{decode_request, decode_response, encode_request, encode_response};
use crate::wire::{read_frame, write_frame, FrameDecoder, FrameKind};

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,6}"
}

fn free_text() -> impl Strategy<Value = String> {
    ".{0,12}"
}

fn object_name() -> BoxedStrategy<ObjectName> {
    (ident(), proptest::collection::vec((ident(), proptest::option::of(0u32..40)), 0..3))
        .prop_map(|(root, tail)| {
            let mut segments = vec![NameSegment::plain(root)];
            for (name, index) in tail {
                segments.push(match index {
                    Some(i) => NameSegment::indexed(name, i),
                    None => NameSegment::plain(name),
                });
            }
            ObjectName::from_segments(segments).expect("generated names are non-empty")
        })
        .boxed()
}

fn value() -> BoxedStrategy<Value> {
    prop_oneof![
        free_text().prop_map(Value::String),
        any::<i64>().prop_map(Value::Integer),
        any::<i64>().prop_map(|i| Value::Real(i as f64 / 8.0)),
        any::<bool>().prop_map(Value::Boolean),
        (any::<i32>(), 1u8..13, 1u8..29).prop_map(|(year, month, day)| Value::Date {
            year,
            month,
            day
        }),
        ident().prop_map(Value::Symbol),
        free_text().prop_map(Value::Text),
        any::<bool>().prop_map(|_| Value::Undefined),
    ]
    .boxed()
}

fn object_record() -> BoxedStrategy<ObjectRecord> {
    (
        (any::<u64>(), any::<u32>(), object_name(), proptest::option::of(any::<u64>())),
        (value(), any::<bool>(), any::<bool>()),
    )
        .prop_map(|((id, class, name, parent), (value, is_pattern, deleted))| {
            let mut record = ObjectRecord::new(
                seed_core::ObjectId(id),
                ClassId(class),
                name,
                parent.map(seed_core::ObjectId),
            );
            record.value = value;
            record.is_pattern = is_pattern;
            record.deleted = deleted;
            record
        })
        .boxed()
}

fn relationship_record() -> BoxedStrategy<RelationshipRecord> {
    (
        (any::<u64>(), any::<u32>()),
        proptest::collection::vec((ident(), any::<u64>()), 0..4),
        proptest::collection::vec((ident(), value()), 0..3),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(|((id, assoc), bindings, attributes, (is_pattern, deleted))| {
            let bindings = bindings.into_iter().map(|(r, o)| (r, seed_core::ObjectId(o))).collect();
            let mut record = RelationshipRecord::new(
                seed_core::RelationshipId(id),
                AssociationId(assoc),
                bindings,
            );
            for (name, value) in attributes {
                record.attributes.insert(name, value);
            }
            record.is_pattern = is_pattern;
            record.deleted = deleted;
            record
        })
        .boxed()
}

fn string_pairs() -> BoxedStrategy<Vec<(String, String)>> {
    proptest::collection::vec((ident(), ident()), 0..4).boxed()
}

fn update() -> BoxedStrategy<Update> {
    prop_oneof![
        (ident(), ident()).prop_map(|(class, name)| Update::CreateObject { class, name }),
        (ident(), ident(), value()).prop_map(|(parent, class_local, value)| {
            Update::CreateDependent { parent, class_local, value }
        }),
        (ident(), ident(), ident(), value()).prop_map(|(parent, class_local, name, value)| {
            Update::CreateDependentNamed { parent, class_local, name, value }
        }),
        (ident(), value()).prop_map(|(object, value)| Update::SetValue { object, value }),
        (ident(), ident()).prop_map(|(object, new_class)| Update::Reclassify { object, new_class }),
        (ident(), string_pairs()).prop_map(|(association, bindings)| Update::CreateRelationship {
            association,
            bindings
        }),
        (ident(), string_pairs(), ident()).prop_map(|(association, bindings, new_association)| {
            Update::ReclassifyRelationship { association, bindings, new_association }
        }),
        ident().prop_map(|object| Update::DeleteObject { object }),
    ]
    .boxed()
}

/// Every wire-representable [`SeedError`] (the string-carrying variants; the foreign-typed ones
/// normalize to `Invalid`, covered by a unit test in `tests`).
fn seed_error() -> BoxedStrategy<SeedError> {
    prop_oneof![
        free_text().prop_map(SeedError::NotFound),
        free_text().prop_map(SeedError::DuplicateName),
        (free_text(), free_text())
            .prop_map(|(expected, found)| SeedError::DomainMismatch { expected, found }),
        free_text().prop_map(SeedError::Version),
        free_text().prop_map(SeedError::TransitionRejected),
        free_text().prop_map(SeedError::Pattern),
        free_text().prop_map(SeedError::Transaction),
        free_text().prop_map(SeedError::Reclassification),
        free_text().prop_map(SeedError::ReadOnlyVersion),
        free_text().prop_map(SeedError::Invalid),
    ]
    .boxed()
}

fn server_error() -> BoxedStrategy<ServerError> {
    prop_oneof![
        (ident(), any::<u64>()).prop_map(|(object, holder)| ServerError::Locked { object, holder }),
        ident().prop_map(ServerError::NotCheckedOut),
        seed_error().prop_map(ServerError::Rejected),
        free_text().prop_map(ServerError::Unknown),
        free_text().prop_map(ServerError::Query),
        any::<bool>().prop_map(|_| ServerError::Disconnected),
        free_text().prop_map(ServerError::Transport),
        free_text().prop_map(ServerError::Protocol),
        free_text().prop_map(|primary| ServerError::ReadOnlyReplica { primary }),
    ]
    .boxed()
}

fn replication_status() -> BoxedStrategy<ReplicationStatus> {
    (any::<bool>(), any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>())
        .prop_map(
            |(replica, applied_lsn, primary_lsn, subscribers, min_acked_lsn, snapshot_lsn)| {
                ReplicationStatus {
                    role: if replica { ReplicationRole::Replica } else { ReplicationRole::Primary },
                    applied_lsn,
                    primary_lsn,
                    subscribers,
                    min_acked_lsn,
                    snapshot_lsn,
                }
            },
        )
        .boxed()
}

fn result_of<T: std::fmt::Debug + 'static>(
    ok: BoxedStrategy<T>,
) -> BoxedStrategy<Result<T, ServerError>> {
    prop_oneof![ok.prop_map(Ok), server_error().prop_map(Err)].boxed()
}

fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        any::<bool>().prop_map(|_| Request::Connect),
        (any::<u64>(), proptest::collection::vec(ident(), 0..4))
            .prop_map(|(client, objects)| Request::Checkout { client, objects }),
        (any::<u64>(), proptest::collection::vec(update(), 0..4))
            .prop_map(|(client, updates)| Request::Checkin { client, updates }),
        any::<u64>().prop_map(|client| Request::Release { client }),
        ident().prop_map(|name| Request::Retrieve { name }),
        free_text().prop_map(|text| Request::Query { text }),
        free_text().prop_map(|comment| Request::CreateVersion { comment }),
        any::<bool>().prop_map(|_| Request::Persistence),
        any::<bool>().prop_map(|_| Request::Checkpoint),
        any::<bool>().prop_map(|_| Request::Schema),
        ident().prop_map(|name| Request::Children { name }),
        free_text().prop_map(|prefix| Request::Prefix { prefix }),
        ident().prop_map(|name| Request::RelationshipsOf { name }),
        (ident(), any::<bool>())
            .prop_map(|(class, transitive)| Request::ObjectsOfClass { class, transitive }),
        (ident(), any::<bool>()).prop_map(|(association, transitive)| {
            Request::RelationshipCount { association, transitive }
        }),
        any::<bool>().prop_map(|_| Request::Completeness),
        any::<bool>().prop_map(|_| Request::Shutdown),
    ]
    .boxed()
}

fn checkout_set() -> BoxedStrategy<CheckoutSet> {
    (
        proptest::collection::vec(object_record(), 0..3),
        proptest::collection::vec(relationship_record(), 0..3),
    )
        .prop_map(|(objects, relationships)| CheckoutSet { objects, relationships })
        .boxed()
}

fn schema_summary() -> BoxedStrategy<SchemaSummary> {
    (
        ident(),
        proptest::collection::vec(
            (
                (ident(), proptest::option::of(any::<u32>())),
                (proptest::option::of(any::<u32>()), proptest::option::of(any::<u32>())),
            ),
            0..4,
        ),
        proptest::collection::vec(
            (
                (ident(), proptest::option::of(any::<u32>())),
                proptest::collection::vec(ident(), 0..3),
            ),
            0..3,
        ),
    )
        .prop_map(|(name, classes, associations)| SchemaSummary {
            name,
            classes: classes
                .into_iter()
                .map(|((name, owner), (superclass, occurrence_max))| ClassSummary {
                    name,
                    owner,
                    superclass,
                    occurrence_max,
                })
                .collect(),
            associations: associations
                .into_iter()
                .map(|((name, superassociation), roles)| AssociationSummary {
                    name,
                    superassociation,
                    roles,
                })
                .collect(),
        })
        .boxed()
}

fn response() -> BoxedStrategy<Response> {
    prop_oneof![
        any::<u64>().prop_map(Response::Connected),
        result_of(checkout_set()).prop_map(Response::Checkout),
        result_of(any::<bool>().prop_map(|_| ()).boxed()).prop_map(Response::Ack),
        result_of(object_record()).prop_map(Response::Object),
        result_of(
            (
                proptest::collection::vec(ident(), 0..4),
                0usize..1000,
                proptest::option::of(free_text()),
            )
                .prop_map(|(names, count, plan)| QueryAnswer { names, count, plan })
                .boxed()
        )
        .prop_map(Response::Answer),
        result_of(
            proptest::collection::vec(1u32..9, 1..4)
                .prop_map(|parts| {
                    let rendered =
                        parts.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(".");
                    seed_core::VersionId::parse(&format!("{rendered}.0"))
                        .or_else(|_| seed_core::VersionId::parse("1.0"))
                        .expect("fallback version id parses")
                })
                .boxed()
        )
        .prop_map(Response::Version),
        (
            (any::<bool>(), proptest::option::of(free_text()), any::<u64>()),
            (0usize..10_000, 0usize..10_000, 0usize..1000),
            proptest::option::of(replication_status()),
        )
            .prop_map(
                |((durable, path, wal_bytes), (objects, relationships, versions), replication)| {
                    Response::Persistence(PersistenceStatus {
                        durable,
                        path,
                        wal_bytes,
                        objects,
                        relationships,
                        versions,
                        replication,
                    })
                }
            ),
        schema_summary().prop_map(Response::Schema),
        result_of(proptest::collection::vec(object_record(), 0..3).boxed())
            .prop_map(Response::Objects),
        result_of(
            proptest::collection::vec(
                (ident(), string_pairs(), any::<bool>()).prop_map(
                    |(association, bindings, inherited)| RelationshipInfo {
                        association,
                        bindings,
                        inherited,
                    }
                ),
                0..3,
            )
            .boxed()
        )
        .prop_map(Response::Relationships),
        result_of((0usize..100_000).boxed()).prop_map(Response::Count),
        server_error().prop_map(Response::Error),
        any::<bool>().prop_map(|_| Response::ShuttingDown),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn requests_roundtrip_through_frames(request in request()) {
        let payload = encode_request(&request);
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, &payload).unwrap();
        let frame = read_frame(&mut std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(frame.kind, FrameKind::Request);
        let decoded = decode_request(&frame.payload).unwrap();
        prop_assert_eq!(format!("{decoded:?}"), format!("{request:?}"));
    }

    #[test]
    fn responses_roundtrip_through_frames(response in response()) {
        let payload = encode_response(&response);
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Response, &payload).unwrap();
        let frame = read_frame(&mut std::io::Cursor::new(buf)).unwrap();
        let decoded = decode_response(&frame.payload).unwrap();
        prop_assert_eq!(format!("{decoded:?}"), format!("{response:?}"));
    }

    #[test]
    fn truncated_request_payloads_error_never_panic(request in request(), cut in any::<usize>()) {
        let payload = encode_request(&request);
        if payload.len() > 1 {
            let cut = 1 + cut % (payload.len() - 1);
            // Either a clean error, or (for list-carrying messages) a shorter valid prefix —
            // but never a panic.
            let _ = decode_request(&payload[..cut]);
        }
        // Empty payloads are always an error.
        prop_assert!(decode_request(&[]).is_err());
    }

    #[test]
    fn corrupted_response_payloads_error_never_panic(
        response in response(),
        idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        let payload = encode_response(&response);
        if !payload.is_empty() {
            let mut corrupted = payload.clone();
            let idx = idx % corrupted.len();
            corrupted[idx] ^= 1 << bit;
            // May decode to a different-but-valid message (the frame CRC is the integrity
            // layer, exercised in wire.rs); must never panic.
            let _ = decode_response(&corrupted);
        }
        prop_assert!(decode_response(&[]).is_err());
    }

    /// The pipelined server decodes from a byte stream, not from whole reads: a burst of
    /// concatenated frames must decode to the same frame sequence no matter where the network
    /// fragments it.  Every two-part split of the stream (and a one-byte-at-a-time feed) is
    /// checked against the unsplit decode.
    #[test]
    fn concatenated_frames_survive_every_split_boundary(
        requests in proptest::collection::vec(request(), 1..4),
    ) {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for request in &requests {
            let payload = encode_request(request);
            write_frame(&mut stream, FrameKind::Request, &payload).unwrap();
            expected.push(payload);
        }
        fn decode_all(chunks: impl Iterator<Item = impl AsRef<[u8]>>) -> Vec<(FrameKind, Vec<u8>)> {
            let mut decoder = FrameDecoder::new();
            let mut frames = Vec::new();
            for chunk in chunks {
                decoder.extend(chunk.as_ref());
                while let Some(frame) =
                    decoder.next_frame().expect("a well-formed stream never errors")
                {
                    frames.push((frame.kind, frame.payload));
                }
            }
            frames
        }
        let whole = decode_all(std::iter::once(&stream));
        prop_assert_eq!(whole.len(), expected.len());
        for (payload, (kind, decoded)) in expected.iter().zip(whole.iter()) {
            prop_assert_eq!(*kind, FrameKind::Request);
            prop_assert_eq!(decoded, payload);
        }
        for cut in 0..=stream.len() {
            let split = decode_all([&stream[..cut], &stream[cut..]].into_iter());
            prop_assert!(split == whole, "split at byte {} diverged", cut);
        }
        prop_assert!(decode_all(stream.chunks(1)) == whole, "byte-at-a-time feed diverged");
    }

    #[test]
    fn unknown_tags_are_rejected(tag in 17u8..255, garbage in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut request_payload = vec![tag];
        request_payload.extend_from_slice(&garbage);
        prop_assert!(decode_request(&request_payload).is_err());
        let mut response_payload = vec![tag.max(13)];
        response_payload.extend_from_slice(&garbage);
        prop_assert!(decode_response(&response_payload).is_err());
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn foreign_seed_errors_normalize_to_invalid_with_text_preserved() {
        let schema_err = SeedError::Schema(seed_schema::SchemaError::UnknownClass("X".into()));
        let rendered = schema_err.to_string();
        let response = Response::Error(ServerError::Rejected(schema_err));
        let decoded = decode_response(&encode_response(&response)).unwrap();
        match decoded {
            Response::Error(ServerError::Rejected(SeedError::Invalid(msg))) => {
                assert_eq!(msg, rendered, "display text must survive the wire");
            }
            other => panic!("unexpected decode {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Connect);
        payload.push(0);
        assert!(decode_request(&payload).is_err());
        let mut payload = encode_response(&Response::ShuttingDown);
        payload.push(0);
        assert!(decode_response(&payload).is_err());
    }
}
