//! The SEED database facade: the paper's "operational interface that consists of a set of
//! procedures".
//!
//! A [`Database`] ties together the schema registry, the data store, the consistency checker,
//! the completeness analysis, the version manager and the pattern machinery.  Every update goes
//! through consistency checking before it touches the store ("SEED permanently ensures database
//! consistency"); completeness is checked only on demand.

use std::collections::{HashMap, HashSet};
use std::path::Path;

use seed_schema::{ClassId, Schema, SchemaRegistry, SchemaVersionId};

use crate::codec;
use crate::completeness::{self, CompletenessReport};
use crate::consistency::ConsistencyChecker;
use crate::durability::{self, Durability, DurabilityStatus};
use crate::error::{SeedError, SeedResult};
use crate::history::{check_transition, TransitionRule};
use crate::ident::{ItemId, ObjectId, RelationshipId, VersionId};
use crate::index::ValueOp;
use crate::name::{NameSegment, ObjectName};
use crate::object::ObjectRecord;
use crate::pattern::{self, MaterializedChild, MaterializedRelationship};
use crate::procedures::ProcedureRegistry;
use crate::relationship::RelationshipRecord;
use crate::store::DataStore;
use crate::undo::{UndoEntry, UndoLog};
use crate::value::Value;
use crate::version::{VersionInfo, VersionManager};

/// State of an alternative checkout (working on the basis of a historical version).
#[derive(Debug, Clone)]
struct AlternativeContext {
    /// The historical version the work is based on.
    base: VersionId,
    /// The stashed current state, restored by [`Database::return_to_current`].
    stashed: DataStore,
}

/// A single-user SEED database.
pub struct Database {
    schemas: SchemaRegistry,
    store: DataStore,
    versions: VersionManager,
    procedures: ProcedureRegistry,
    /// Version selected for retrieval (`None` = the current version).
    selected_version: Option<VersionId>,
    /// Materialized view of the selected version.
    selected_view: Option<DataStore>,
    alternative: Option<AlternativeContext>,
    txn: Option<UndoLog>,
    transition_rules: Vec<TransitionRule>,
    consistency_checking: bool,
    /// Write-through persistence handle (`None` for purely in-memory databases).
    durability: Option<Durability>,
    /// Items mutated since the last snapshot publication (fed from the store's change journal;
    /// see [`Database::enable_snapshot_tracking`]).
    snap_changed: HashSet<ItemId>,
    /// Whether snapshot-delta tracking is on (the server's MVCC read path enables it).
    snapshot_tracking: bool,
    /// Set when the store was replaced wholesale (alternative checkout/return, fresh tracking):
    /// the next snapshot publication must rebuild instead of applying a delta.
    snap_reset: bool,
    /// Topology epoch: bumped on every replica promotion, persisted in the meta record so a
    /// restarted node knows which fencing round it last witnessed.
    topology_epoch: u64,
    /// Set while this store is fenced as a demoted primary: the address of the primary that
    /// superseded it.  Persisted so fencing survives a restart.
    fenced_to: Option<String>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("schema", &self.schema().name)
            .field("objects", &self.store.live_object_count())
            .field("relationships", &self.store.live_relationship_count())
            .field("versions", &self.versions.version_count())
            .field("selected_version", &self.selected_version)
            .finish()
    }
}

impl Database {
    /// Creates an empty in-memory database over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schemas: SchemaRegistry::new(schema),
            store: DataStore::new(),
            versions: VersionManager::new(),
            procedures: ProcedureRegistry::new(),
            selected_version: None,
            selected_view: None,
            alternative: None,
            txn: None,
            transition_rules: Vec::new(),
            consistency_checking: true,
            durability: None,
            snap_changed: HashSet::new(),
            snapshot_tracking: false,
            snap_reset: false,
            topology_epoch: 0,
            fenced_to: None,
        }
    }

    /// Opens a database persisted earlier with [`Database::save_to_dir`].
    pub fn open_dir(dir: impl AsRef<Path>) -> SeedResult<Self> {
        crate::persist::load_dir(dir)
    }

    /// Persists the database (schema registry, data, versions) to a directory through the
    /// `seed-storage` engine as a whole-database snapshot.
    ///
    /// This is the legacy O(database) export path; a database opened with
    /// [`Database::open_durable`] persists every committed mutation incrementally instead.
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> SeedResult<()> {
        crate::persist::save_dir(self, dir)
    }

    // ----- write-through durability -----------------------------------------------------------

    /// Opens a durable database: every committed mutation is written through to storage as
    /// per-item records, and the directory's WAL recovers the committed state after a crash
    /// (see [`crate::durability`] for the contract).
    ///
    /// Databases saved with the legacy blob layout ([`Database::save_to_dir`]) are detected and
    /// migrated to the per-item layout on open.
    pub fn open_durable(dir: impl AsRef<Path>) -> SeedResult<Self> {
        let dir = dir.as_ref();
        let engine = durability::open_engine(dir)?;
        Self::open_durable_engine(dir, engine)
    }

    /// [`Database::open_durable`] with an explicit storage configuration (WAL segment cap,
    /// replication retention budget, auto-checkpoint threshold).
    pub fn open_durable_with(
        dir: impl AsRef<Path>,
        config: seed_storage::EngineConfig,
    ) -> SeedResult<Self> {
        let dir = dir.as_ref();
        let engine = durability::open_engine_with(dir, config)?;
        Self::open_durable_engine(dir, engine)
    }

    fn open_durable_engine(dir: &Path, engine: seed_storage::StorageEngine) -> SeedResult<Self> {
        let mut db = if durability::is_legacy_layout(&engine)? {
            durability::migrate_legacy(&engine)?
        } else if durability::is_keyed_layout(&engine)? {
            durability::load_keyed(&engine)?
        } else {
            return Err(SeedError::NotFound(format!(
                "no SEED database in '{}' (use Database::create_durable to start one)",
                dir.display()
            )));
        };
        db.attach_durability(engine);
        Ok(db)
    }

    /// Creates a fresh durable database over `schema` in `dir` (which must not already hold
    /// one), committing the schema and meta records immediately.
    pub fn create_durable(dir: impl AsRef<Path>, schema: Schema) -> SeedResult<Self> {
        let dir = dir.as_ref();
        let engine = durability::open_engine(dir)?;
        Self::create_durable_engine(dir, schema, engine)
    }

    /// [`Database::create_durable`] with an explicit storage configuration.
    pub fn create_durable_with(
        dir: impl AsRef<Path>,
        schema: Schema,
        config: seed_storage::EngineConfig,
    ) -> SeedResult<Self> {
        let dir = dir.as_ref();
        let engine = durability::open_engine_with(dir, config)?;
        Self::create_durable_engine(dir, schema, engine)
    }

    fn create_durable_engine(
        dir: &Path,
        schema: Schema,
        engine: seed_storage::StorageEngine,
    ) -> SeedResult<Self> {
        if durability::is_legacy_layout(&engine)? || durability::is_keyed_layout(&engine)? {
            return Err(SeedError::Invalid(format!(
                "'{}' already holds a SEED database; use Database::open_durable",
                dir.display()
            )));
        }
        let mut db = Database::new(schema);
        let txn = engine.begin()?;
        durability::write_full(&db, &engine, txn)?;
        engine.commit(txn)?;
        db.attach_durability(engine);
        Ok(db)
    }

    pub(crate) fn attach_durability(&mut self, engine: seed_storage::StorageEngine) {
        self.store.set_journal(true);
        let _ = self.store.take_changed();
        self.durability = Some(Durability { engine, txn: None });
    }

    /// Whether this database writes mutations through to durable storage.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Directory of the durable storage, if any.
    pub fn durable_path(&self) -> Option<&Path> {
        self.durability.as_ref().and_then(|d| d.engine.path())
    }

    /// Storage-level status of a durable database (WAL size, key count) — `None` when the
    /// database is in-memory.
    pub fn durability_status(&self) -> Option<DurabilityStatus> {
        self.durability.as_ref().map(|d| DurabilityStatus {
            path: d.engine.path().map(|p| p.to_path_buf()).unwrap_or_default(),
            wal_bytes: d.engine.wal_size_bytes().unwrap_or(0),
            keys: d.engine.len(),
        })
    }

    /// A write-path probe for health checks: fsyncs the active WAL segment of a durable
    /// database and reports whether the log currently accepts writes (a failing disk or a
    /// vanished directory surfaces here).  `true` for in-memory databases, whose write path
    /// cannot fail on I/O.
    pub fn wal_writable(&self) -> bool {
        match &self.durability {
            Some(d) => d.engine.wal_probe().is_ok(),
            None => true,
        }
    }

    // ----- topology (replica promotion / fencing) ---------------------------------------------

    /// The topology epoch this store last witnessed (0 until a promotion ever happens).
    pub fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    /// When this store was fenced as a demoted primary: the address of the primary that
    /// superseded it.  A fenced store must refuse writes and redirect clients there.
    pub fn fenced_to(&self) -> Option<&str> {
        self.fenced_to.as_deref()
    }

    pub(crate) fn set_topology(&mut self, epoch: u64, fenced_to: Option<String>) {
        self.topology_epoch = epoch;
        self.fenced_to = fenced_to;
    }

    /// Records a topology change (a promotion's epoch bump, a fence, or a rejoin clearing one)
    /// and commits the updated meta record immediately in its own storage transaction, so the
    /// decision survives a restart.  Fencing must not ride an open explicit transaction — a
    /// rollback could then un-fence a demoted primary.
    pub fn persist_topology(&mut self, epoch: u64, fenced_to: Option<String>) -> SeedResult<()> {
        self.topology_epoch = epoch;
        self.fenced_to = fenced_to;
        let Some(dur) = self.durability.as_ref() else { return Ok(()) };
        let txn = dur.engine.begin()?;
        durability::stage_meta(
            &dur.engine,
            txn,
            &self.schemas,
            &self.store,
            &self.versions,
            &self.transition_rules,
            self.topology_epoch,
            self.fenced_to.as_deref(),
        )?;
        dur.engine.commit(txn)?;
        Ok(())
    }

    // ----- replication feed (the primary side of WAL shipping) --------------------------------

    /// The absolute, checkpoint-stable LSN of the last committed storage record — what a fully
    /// caught-up replica has applied.  `None` for in-memory databases (nothing to replicate).
    pub fn durable_lsn(&self) -> Option<seed_storage::Lsn> {
        self.durability.as_ref().map(|d| d.engine.durable_lsn())
    }

    /// The storage WAL tail from LSN `from` (inclusive): the committed records a replica at
    /// position `from - 1` still needs, or [`seed_storage::WalTail::Truncated`] when a
    /// checkpoint already truncated them away (the replica must then resync from
    /// [`Database::replication_snapshot`]).  Errors for in-memory databases.
    pub fn wal_tail(&self, from: seed_storage::Lsn) -> SeedResult<seed_storage::WalTail> {
        let dur = self.durability.as_ref().ok_or_else(|| {
            SeedError::Invalid("in-memory database has no WAL to replicate from".to_string())
        })?;
        Ok(dur.engine.wal_tail(from)?)
    }

    /// Every committed per-item `(key, value)` record plus the LSN the snapshot corresponds to
    /// — the full-resync payload for a replica whose cursor fell behind a checkpoint.  Errors
    /// for in-memory databases.
    pub fn replication_snapshot(
        &self,
    ) -> SeedResult<(seed_storage::engine::KeySpaceDump, seed_storage::Lsn)> {
        let dur = self.durability.as_ref().ok_or_else(|| {
            SeedError::Invalid("in-memory database has no state to replicate".to_string())
        })?;
        Ok(dur.engine.snapshot_with_lsn()?)
    }

    /// Pins WAL segments for lagging replication subscribers: checkpoints keep (budget
    /// permitting) every segment containing LSNs at or above `floor`, so a replica whose
    /// cursor is at `floor - 1` can catch up from the retained log instead of resyncing from a
    /// full snapshot.  `None` releases the pin (checkpoints prune everything again).  No-op
    /// for in-memory databases.
    pub fn set_replication_retention(&self, floor: Option<seed_storage::Lsn>) {
        if let Some(dur) = self.durability.as_ref() {
            dur.engine.set_replication_retention(floor);
        }
    }

    /// Checkpoints the durable storage (flush pages, persist the catalog, truncate the WAL).
    /// The engine also checkpoints automatically once its WAL outgrows the configured
    /// threshold; this call is for explicit quiesce points (e.g. before a backup).
    pub fn checkpoint(&self) -> SeedResult<()> {
        match &self.durability {
            Some(d) => {
                d.engine.checkpoint()?;
                Ok(())
            }
            None => {
                Err(SeedError::Invalid("database is not durable; nothing to checkpoint".into()))
            }
        }
    }

    /// Write-through: drains the store's change journal and stages the touched records into the
    /// mirrored storage transaction (committing immediately when no explicit transaction is
    /// open).  No-op for in-memory databases and while working on an alternative (the
    /// alternative store is scratch state; only its version snapshots persist).
    fn persist_changes(&mut self) -> SeedResult<()> {
        if self.alternative.is_some() {
            return Ok(());
        }
        if self.durability.is_none() {
            if self.snapshot_tracking {
                self.snap_changed.extend(self.store.take_changed());
            }
            return Ok(());
        }
        let changed = self.store.take_changed();
        if changed.is_empty() {
            return Ok(());
        }
        if self.snapshot_tracking {
            self.snap_changed.extend(changed.iter().copied());
        }
        let result = self.stage_and_commit_changes(&changed);
        if result.is_err() {
            // The in-memory mutation stands, so the items must stay queued: a later successful
            // commit (or an explicit retry) re-stages them instead of silently dropping them
            // from durability.
            self.store.requeue_changed(&changed);
        }
        result
    }

    fn stage_and_commit_changes(&mut self, changed: &[ItemId]) -> SeedResult<()> {
        let dur = self.durability.as_ref().expect("caller checked");
        let (txn, auto) = dur.stage_txn()?;
        for item in changed {
            durability::stage_item(&dur.engine, txn, &self.store, *item)?;
        }
        durability::stage_meta(
            &dur.engine,
            txn,
            &self.schemas,
            &self.store,
            &self.versions,
            &self.transition_rules,
            self.topology_epoch,
            self.fenced_to.as_deref(),
        )?;
        if auto {
            dur.engine.commit(txn)?;
        }
        Ok(())
    }

    /// Stages only the meta record (id floors, rules, version bookkeeping).
    fn persist_meta(&mut self) -> SeedResult<()> {
        let Some(dur) = self.durability.as_ref() else { return Ok(()) };
        let (txn, auto) = dur.stage_txn()?;
        durability::stage_meta(
            &dur.engine,
            txn,
            &self.schemas,
            &self.store,
            &self.versions,
            &self.transition_rules,
            self.topology_epoch,
            self.fenced_to.as_deref(),
        )?;
        if auto {
            dur.engine.commit(txn)?;
        }
        Ok(())
    }

    /// Stages a freshly created version: its delta snapshots, its metadata record, the drained
    /// dirty markers and the updated meta, in one commit.
    fn persist_version_created(&mut self, id: &VersionId, delta: &[ItemId]) -> SeedResult<()> {
        let in_alternative = self.alternative.is_some();
        let Some(dur) = self.durability.as_ref() else { return Ok(()) };
        let (txn, auto) = dur.stage_txn()?;
        for item in delta {
            let snapshot = match *item {
                ItemId::Object(oid) => {
                    self.store.object(oid).cloned().map(crate::version::ItemSnapshot::Object)
                }
                ItemId::Relationship(rid) => self
                    .store
                    .relationship(rid)
                    .cloned()
                    .map(crate::version::ItemSnapshot::Relationship),
            };
            if let Some(snapshot) = snapshot {
                dur.engine.txn_put(
                    txn,
                    &codec::version_delta_key(id, *item),
                    &codec::encode_snapshot(&snapshot),
                )?;
            }
            if !in_alternative {
                // The on-disk dirty markers mirror the main store's dirty set; an alternative
                // drains its own scratch dirty set, which never had markers.
                dur.engine.txn_delete(txn, &codec::dirty_key(*item))?;
            }
        }
        let info = self.versions.info(id)?;
        dur.engine.txn_put(txn, &codec::version_info_key(id), &codec::encode_version_info(info))?;
        durability::stage_meta(
            &dur.engine,
            txn,
            &self.schemas,
            &self.store,
            &self.versions,
            &self.transition_rules,
            self.topology_epoch,
            self.fenced_to.as_deref(),
        )?;
        if auto {
            dur.engine.commit(txn)?;
        }
        Ok(())
    }

    /// Stages a version deletion: drop its metadata record and every delta snapshot under its
    /// `v/<vid>/` prefix, plus the updated meta.
    ///
    /// Like schema publication, version deletion is not transactional (the version is gone from
    /// memory immediately and the undo log cannot restore it), so the deletes commit in their
    /// own storage transaction even while an explicit transaction is open — otherwise a later
    /// rollback would abort them and the deleted version would resurrect on reopen.
    fn persist_version_deleted(&mut self, id: &VersionId) -> SeedResult<()> {
        let Some(dur) = self.durability.as_ref() else { return Ok(()) };
        let txn = dur.engine.begin()?;
        dur.engine.txn_delete(txn, &codec::version_info_key(id))?;
        for (key, _) in dur.engine.scan_prefix(&codec::version_delta_prefix(id))? {
            dur.engine.txn_delete(txn, &key)?;
        }
        durability::stage_meta(
            &dur.engine,
            txn,
            &self.schemas,
            &self.store,
            &self.versions,
            &self.transition_rules,
            self.topology_epoch,
            self.fenced_to.as_deref(),
        )?;
        dur.engine.commit(txn)?;
        Ok(())
    }

    // ----- accessors ------------------------------------------------------------------------------

    /// The current schema.
    pub fn schema(&self) -> &Schema {
        self.schemas.current()
    }

    /// The schema registry (all published schema versions).
    pub fn schema_registry(&self) -> &SchemaRegistry {
        &self.schemas
    }

    /// Publishes a new schema version; it becomes current (and, on a durable database, is
    /// committed as its own `s/<svid>` record).
    ///
    /// Schema publication is **not transactional**: the undo log does not cover it, so on a
    /// durable database the record commits in its own storage transaction even while an
    /// explicit transaction is open — otherwise a later rollback would abort the `s/<svid>`
    /// record while the in-memory registry (and the re-committed meta) still reference it,
    /// leaving the directory unopenable.
    pub fn publish_schema(&mut self, schema: Schema) -> SeedResult<SchemaVersionId> {
        let id = self.schemas.publish(schema);
        if let Some(dur) = self.durability.as_ref() {
            let txn = dur.engine.begin()?;
            dur.engine.txn_put(
                txn,
                &codec::schema_key(id),
                &codec::encode_schema_entry(self.schemas.get(id)?),
            )?;
            durability::stage_meta(
                &dur.engine,
                txn,
                &self.schemas,
                &self.store,
                &self.versions,
                &self.transition_rules,
                self.topology_epoch,
                self.fenced_to.as_deref(),
            )?;
            dur.engine.commit(txn)?;
        }
        Ok(id)
    }

    /// Registers a named attached procedure.
    pub fn register_procedure<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&crate::procedures::ProcedureContext<'_>) -> Result<(), String>
            + Send
            + Sync
            + 'static,
    {
        self.procedures.register(name, f);
    }

    /// Enables or disables consistency checking (used by benchmarks to quantify its cost; a
    /// production database keeps it on).
    pub fn set_consistency_checking(&mut self, enabled: bool) {
        self.consistency_checking = enabled;
    }

    /// Whether consistency checking is enabled.
    pub fn consistency_checking(&self) -> bool {
        self.consistency_checking
    }

    /// Adds a history-sensitive consistency rule checked on every version creation.  Rules are
    /// part of the durable meta record, so on a durable database this commits.
    pub fn add_transition_rule(&mut self, rule: TransitionRule) -> SeedResult<()> {
        self.transition_rules.push(rule);
        self.persist_meta()
    }

    /// The registered transition rules.
    pub fn transition_rules(&self) -> &[TransitionRule] {
        &self.transition_rules
    }

    /// Direct access to the current store (used by sibling crates for read-only analysis).
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// The version manager (read-only).
    pub fn version_manager(&self) -> &VersionManager {
        &self.versions
    }

    /// Number of live, visible objects in the read context.
    pub fn object_count(&self) -> usize {
        self.read_store().visible_objects().count()
    }

    /// Number of live, visible relationships in the read context.
    pub fn relationship_count(&self) -> usize {
        self.read_store().all_relationships().filter(|r| r.is_visible()).count()
    }

    // ----- internal helpers -------------------------------------------------------------------------

    fn read_store(&self) -> &DataStore {
        self.selected_view.as_ref().unwrap_or(&self.store)
    }

    fn checker(&self) -> ConsistencyChecker<'_> {
        ConsistencyChecker::new(self.schemas.current(), &self.store, &self.procedures)
    }

    /// Runs a consistency check (lazily — when checking is disabled the check is skipped
    /// entirely, which is what the E2 benchmark measures) and turns violations into an error.
    fn enforce(
        &self,
        check: impl FnOnce() -> Vec<crate::consistency::ConsistencyViolation>,
    ) -> SeedResult<()> {
        if !self.consistency_checking {
            return Ok(());
        }
        let violations = check();
        if !violations.is_empty() {
            return Err(SeedError::Inconsistent(violations));
        }
        Ok(())
    }

    fn mutation_allowed(&self) -> SeedResult<()> {
        if self.selected_version.is_some() {
            return Err(SeedError::ReadOnlyVersion(
                "a historical version is selected for retrieval; select the current version before updating"
                    .to_string(),
            ));
        }
        Ok(())
    }

    fn record_undo(&mut self, entry: UndoEntry) {
        if let Some(log) = &mut self.txn {
            log.push(entry);
        }
    }

    fn record_object_change(&mut self, id: ObjectId) {
        if self.txn.is_some() {
            if let Some(before) = self.store.object(id).cloned() {
                self.record_undo(UndoEntry::ObjectChanged(Box::new(before)));
            }
        }
    }

    fn record_relationship_change(&mut self, id: RelationshipId) {
        if self.txn.is_some() {
            if let Some(before) = self.store.relationship(id).cloned() {
                self.record_undo(UndoEntry::RelationshipChanged(Box::new(before)));
            }
        }
    }

    fn live_object(&self, id: ObjectId) -> SeedResult<&ObjectRecord> {
        self.store.live_object(id).ok_or_else(|| SeedError::NotFound(format!("object {id}")))
    }

    fn live_relationship(&self, id: RelationshipId) -> SeedResult<&RelationshipRecord> {
        self.store
            .live_relationship(id)
            .ok_or_else(|| SeedError::NotFound(format!("relationship {id}")))
    }

    // ----- transactions ------------------------------------------------------------------------------

    /// Begins a transaction.  All subsequent updates are undone by [`Database::rollback_transaction`].
    /// On a durable database, a storage transaction is opened in lockstep: staged per-item
    /// records become durable only at [`Database::commit_transaction`].
    pub fn begin_transaction(&mut self) -> SeedResult<()> {
        if self.txn.is_some() {
            return Err(SeedError::Transaction("a transaction is already active".to_string()));
        }
        if self.alternative.is_none() {
            if let Some(dur) = self.durability.as_mut() {
                dur.txn = Some(dur.engine.begin()?);
            }
        }
        self.txn = Some(UndoLog::new());
        Ok(())
    }

    /// Commits the active transaction (updates were applied and checked as they happened; on a
    /// durable database the mirrored storage transaction commits now, making every staged
    /// per-item record durable with a single WAL sync).
    pub fn commit_transaction(&mut self) -> SeedResult<()> {
        match self.txn.take() {
            Some(_) => {
                if let Some(dur) = self.durability.as_ref() {
                    if let Some(txn) = dur.txn {
                        // Re-stage meta as the transaction's last effect: a non-transactional
                        // side-commit inside the transaction (publish_schema, delete_version)
                        // wrote a fresher meta that a copy staged earlier in this transaction
                        // would otherwise overwrite.
                        durability::stage_meta(
                            &dur.engine,
                            txn,
                            &self.schemas,
                            &self.store,
                            &self.versions,
                            &self.transition_rules,
                            self.topology_epoch,
                            self.fenced_to.as_deref(),
                        )?;
                    }
                }
                if let Some(dur) = self.durability.as_mut() {
                    if let Some(txn) = dur.txn.take() {
                        dur.engine.commit(txn)?;
                    }
                }
                Ok(())
            }
            None => Err(SeedError::Transaction("no active transaction".to_string())),
        }
    }

    /// Rolls back the active transaction, undoing every update made since it began.  On a
    /// durable database the mirrored storage transaction aborts in lockstep, so nothing staged
    /// since [`Database::begin_transaction`] reaches storage (or the WAL).
    pub fn rollback_transaction(&mut self) -> SeedResult<()> {
        match self.txn.take() {
            Some(log) => {
                log.rollback(&mut self.store);
                if let Some(dur) = self.durability.as_mut() {
                    if let Some(txn) = dur.txn.take() {
                        dur.engine.abort(txn)?;
                    }
                }
                // The undo replay re-marked the restored items in the change journal, but their
                // durable state already equals the restored (pre-transaction) state.  A read
                // snapshot published mid-transaction may have seen the undone values, so the
                // restored items still count toward the next snapshot delta.
                let undone = self.store.take_changed();
                if self.snapshot_tracking {
                    self.snap_changed.extend(undone.iter().copied());
                }
                // The aborted storage transaction also discarded its meta writes; re-commit the
                // meta record so the durable id floors match the in-memory counters (ids
                // allocated by the rolled-back transaction stay burned).
                self.persist_meta()?;
                Ok(())
            }
            None => Err(SeedError::Transaction("no active transaction".to_string())),
        }
    }

    /// Whether a transaction is active.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    // ----- object operations ----------------------------------------------------------------------------

    /// Creates an independent object of `class_name` with the given name and no value.
    pub fn create_object(&mut self, class_name: &str, name: &str) -> SeedResult<ObjectId> {
        self.create_object_full(class_name, name, Value::Undefined, false)
    }

    /// Creates an independent object with an initial value.
    pub fn create_object_with_value(
        &mut self,
        class_name: &str,
        name: &str,
        value: Value,
    ) -> SeedResult<ObjectId> {
        self.create_object_full(class_name, name, value, false)
    }

    /// Creates an independent **pattern** object (invisible to retrieval, not checked).
    pub fn create_pattern_object(&mut self, class_name: &str, name: &str) -> SeedResult<ObjectId> {
        self.create_object_full(class_name, name, Value::Undefined, true)
    }

    fn create_object_full(
        &mut self,
        class_name: &str,
        name: &str,
        value: Value,
        is_pattern: bool,
    ) -> SeedResult<ObjectId> {
        self.mutation_allowed()?;
        let class = self.schemas.current().class_id(class_name)?;
        let object_name = ObjectName::parse(name)?;
        if object_name.depth() != 1 {
            return Err(SeedError::Invalid(format!(
                "'{name}' is a hierarchical name; independent objects take a simple name"
            )));
        }
        if self.store.name_taken(name) {
            return Err(SeedError::DuplicateName(name.to_string()));
        }
        self.enforce(|| self.checker().check_new_object(class, None, &value, name, is_pattern))?;
        let id = self.store.allocate_object_id();
        let mut record = ObjectRecord::new(id, class, object_name, None);
        record.value = value;
        record.is_pattern = is_pattern;
        self.store.insert_object(record);
        self.record_undo(UndoEntry::ObjectCreated(id));
        self.persist_changes()?;
        Ok(id)
    }

    /// Creates a dependent (sub-)object of `parent`.
    ///
    /// `class_local_name` names a dependent class of the parent's class (or of one of its
    /// generalizations), e.g. `"Text"` for a `Data` parent.  The object's name is derived from
    /// the parent name: a plain segment when the dependent class allows at most one occurrence,
    /// an indexed segment (`Keywords[0]`, `Keywords[1]`, ...) otherwise.
    pub fn create_dependent(
        &mut self,
        parent: ObjectId,
        class_local_name: &str,
        value: Value,
    ) -> SeedResult<ObjectId> {
        let class = self.resolve_dependent_class(parent, class_local_name)?;
        let class_def = self.schemas.current().class(class)?;
        let segment = if class_def.occurrence.max == Some(1) {
            NameSegment::plain(class_local_name)
        } else {
            let n = self.store.children_of_class(parent, class).len() as u32;
            NameSegment::indexed(class_local_name, n)
        };
        self.create_dependent_named(parent, class_local_name, segment, value)
    }

    /// Creates a dependent object with an explicit name segment (used when the caller wants the
    /// exact names of the paper's Figure 1, e.g. a plain `Text` even though up to 16 may exist).
    pub fn create_dependent_named(
        &mut self,
        parent: ObjectId,
        class_local_name: &str,
        segment: NameSegment,
        value: Value,
    ) -> SeedResult<ObjectId> {
        self.mutation_allowed()?;
        let class = self.resolve_dependent_class(parent, class_local_name)?;
        let parent_record = self.live_object(parent)?;
        let is_pattern = parent_record.is_pattern;
        let name = parent_record.name.child(segment);
        let name_string = name.to_string();
        if self.store.name_taken(&name_string) {
            return Err(SeedError::DuplicateName(name_string));
        }
        self.enforce(|| {
            self.checker().check_new_object(class, Some(parent), &value, &name_string, is_pattern)
        })?;
        let id = self.store.allocate_object_id();
        let mut record = ObjectRecord::new(id, class, name, Some(parent));
        record.value = value;
        record.is_pattern = is_pattern;
        self.store.insert_object(record);
        self.record_undo(UndoEntry::ObjectCreated(id));
        self.persist_changes()?;
        Ok(id)
    }

    fn resolve_dependent_class(&self, parent: ObjectId, local_name: &str) -> SeedResult<ClassId> {
        let parent_record = self.live_object(parent)?;
        let schema = self.schemas.current();
        for ancestor in schema.class_ancestors(parent_record.class) {
            for dependent in schema.dependent_classes(ancestor) {
                if dependent.local_name() == local_name {
                    return Ok(dependent.id);
                }
            }
        }
        Err(SeedError::NotFound(format!(
            "class '{}' has no dependent class named '{local_name}'",
            schema.class(parent_record.class)?.name
        )))
    }

    /// Sets the value of an object.
    pub fn set_value(&mut self, object: ObjectId, value: Value) -> SeedResult<()> {
        self.mutation_allowed()?;
        let record = self.live_object(object)?;
        self.enforce(|| self.checker().check_value_update(record, &value))?;
        self.record_object_change(object);
        self.store.update_object(object, |o| o.value = value);
        self.persist_changes()?;
        Ok(())
    }

    /// Renames an independent object; the hierarchical names of all its dependents follow.
    pub fn rename_object(&mut self, object: ObjectId, new_name: &str) -> SeedResult<()> {
        self.mutation_allowed()?;
        let record = self.live_object(object)?;
        if !record.is_independent() {
            return Err(SeedError::Invalid(
                "dependent objects are named through their parent and cannot be renamed directly"
                    .to_string(),
            ));
        }
        let parsed = ObjectName::parse(new_name)?;
        if parsed.depth() != 1 {
            return Err(SeedError::Invalid("the new name must be a simple name".to_string()));
        }
        if self.store.name_taken(new_name) {
            return Err(SeedError::DuplicateName(new_name.to_string()));
        }
        // Collect the whole subtree (the object and all transitive dependents).
        let mut subtree = vec![object];
        let mut cursor = 0;
        while cursor < subtree.len() {
            let current = subtree[cursor];
            cursor += 1;
            subtree.extend(self.store.children_of(current).iter().map(|c| c.id));
        }
        for id in subtree {
            self.record_object_change(id);
            let renamed = new_name.to_string();
            self.store.update_object(id, |o| o.name = o.name.with_root_renamed(renamed));
        }
        self.persist_changes()?;
        Ok(())
    }

    /// Logically deletes an object, its dependent objects and every relationship it participates
    /// in (the paper keeps deleted items physically so that versions remain reconstructible).
    pub fn delete_object(&mut self, object: ObjectId) -> SeedResult<()> {
        self.mutation_allowed()?;
        let record = self.live_object(object)?;
        self.enforce(|| self.checker().check_delete_object(record))?;
        // Subtree of dependents.
        let mut subtree = vec![object];
        let mut cursor = 0;
        while cursor < subtree.len() {
            let current = subtree[cursor];
            cursor += 1;
            subtree.extend(self.store.children_of(current).iter().map(|c| c.id));
        }
        for id in &subtree {
            for rel in self.store.relationships_of(*id).iter().map(|r| r.id).collect::<Vec<_>>() {
                self.record_relationship_change(rel);
                self.store.tombstone_relationship(rel);
            }
        }
        for id in subtree {
            self.record_object_change(id);
            self.store.tombstone_object(id);
        }
        self.persist_changes()?;
        Ok(())
    }

    /// Re-classifies an object within a generalization hierarchy — the operation that makes
    /// vague information precise ("re-classifying 'Alarms' in class 'Data'") or vague again.
    pub fn reclassify_object(&mut self, object: ObjectId, new_class_name: &str) -> SeedResult<()> {
        self.mutation_allowed()?;
        let new_class = self.schemas.current().class_id(new_class_name)?;
        let record = self.live_object(object)?;
        if record.class == new_class {
            return Ok(());
        }
        self.enforce(|| self.checker().check_reclassify_object(record, new_class))?;
        self.record_object_change(object);
        self.store.update_object(object, |o| o.class = new_class);
        self.persist_changes()?;
        Ok(())
    }

    // ----- relationship operations ------------------------------------------------------------------------

    /// Creates a relationship of `association_name` binding the given objects to roles.
    pub fn create_relationship(
        &mut self,
        association_name: &str,
        bindings: &[(&str, ObjectId)],
    ) -> SeedResult<RelationshipId> {
        self.create_relationship_full(association_name, bindings, &[], false)
    }

    /// Creates a relationship carrying attribute values (e.g. `NumberOfWrites = 2`).
    pub fn create_relationship_with_attributes(
        &mut self,
        association_name: &str,
        bindings: &[(&str, ObjectId)],
        attributes: &[(&str, Value)],
    ) -> SeedResult<RelationshipId> {
        self.create_relationship_full(association_name, bindings, attributes, false)
    }

    /// Creates a **pattern** relationship (Figure 5's PR1/PR2).
    pub fn create_pattern_relationship(
        &mut self,
        association_name: &str,
        bindings: &[(&str, ObjectId)],
    ) -> SeedResult<RelationshipId> {
        self.create_relationship_full(association_name, bindings, &[], true)
    }

    fn create_relationship_full(
        &mut self,
        association_name: &str,
        bindings: &[(&str, ObjectId)],
        attributes: &[(&str, Value)],
        is_pattern: bool,
    ) -> SeedResult<RelationshipId> {
        self.mutation_allowed()?;
        let association = self.schemas.current().association_id(association_name)?;
        let owned_bindings: Vec<(String, ObjectId)> =
            bindings.iter().map(|(r, o)| (r.to_string(), *o)).collect();
        let owned_attributes: HashMap<String, Value> =
            attributes.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        // Every bound object must exist even for patterns (a pattern relationship still points at
        // real or pattern objects).
        for (_, obj) in &owned_bindings {
            self.live_object(*obj)?;
        }
        self.enforce(|| {
            self.checker().check_new_relationship(
                association,
                &owned_bindings,
                &owned_attributes,
                is_pattern,
                None,
            )
        })?;
        let id = self.store.allocate_relationship_id();
        let mut record = RelationshipRecord::new(id, association, owned_bindings);
        record.attributes = owned_attributes.into_iter().collect();
        record.is_pattern = is_pattern;
        self.store.insert_relationship(record);
        self.record_undo(UndoEntry::RelationshipCreated(id));
        self.persist_changes()?;
        Ok(id)
    }

    /// Sets a relationship attribute value.
    pub fn set_relationship_attribute(
        &mut self,
        relationship: RelationshipId,
        attribute: &str,
        value: Value,
    ) -> SeedResult<()> {
        self.mutation_allowed()?;
        let record = self.live_relationship(relationship)?;
        self.enforce(|| self.checker().check_attribute_update(record, attribute, &value))?;
        self.record_relationship_change(relationship);
        let attribute = attribute.to_string();
        self.store.update_relationship(relationship, |r| {
            r.attributes.insert(attribute, value);
        });
        self.persist_changes()?;
        Ok(())
    }

    /// Re-classifies a relationship within an association generalization hierarchy, e.g. making
    /// a vague `Access` precise as a `Write`.  Role names are re-mapped by position
    /// (`Access.from` ↔ `Write.to`).
    pub fn reclassify_relationship(
        &mut self,
        relationship: RelationshipId,
        new_association_name: &str,
    ) -> SeedResult<()> {
        self.mutation_allowed()?;
        let new_association = self.schemas.current().association_id(new_association_name)?;
        let record = self.live_relationship(relationship)?;
        if record.association == new_association {
            return Ok(());
        }
        self.enforce(|| self.checker().check_reclassify_relationship(record, new_association))?;
        let new_roles: Vec<String> = self
            .schemas
            .current()
            .association(new_association)?
            .roles
            .iter()
            .map(|r| r.name.clone())
            .collect();
        self.record_relationship_change(relationship);
        self.store.update_relationship(relationship, |r| {
            r.association = new_association;
            for (idx, (role, _)) in r.bindings.iter_mut().enumerate() {
                if let Some(new_role) = new_roles.get(idx) {
                    *role = new_role.clone();
                }
            }
        });
        self.persist_changes()?;
        Ok(())
    }

    /// Logically deletes a relationship.
    pub fn delete_relationship(&mut self, relationship: RelationshipId) -> SeedResult<()> {
        self.mutation_allowed()?;
        self.live_relationship(relationship)?;
        self.record_relationship_change(relationship);
        self.store.tombstone_relationship(relationship);
        self.persist_changes()?;
        Ok(())
    }

    // ----- patterns and variants -----------------------------------------------------------------------------

    /// Marks an existing object as a pattern (it disappears from ordinary retrieval).
    pub fn mark_pattern(&mut self, object: ObjectId) -> SeedResult<()> {
        self.mutation_allowed()?;
        self.live_object(object)?;
        self.record_object_change(object);
        self.store.update_object(object, |o| o.is_pattern = true);
        self.persist_changes()?;
        Ok(())
    }

    /// Establishes the inherits-relationship between `inheritor` and `pattern`.
    ///
    /// The materialized view of the inheritor (the pattern's relationships with the inheritor
    /// substituted) is consistency-checked at this point, because "patterns (...) are not
    /// checked for consistency unless they are inherited by a 'normal' data item".
    pub fn inherit_pattern(&mut self, inheritor: ObjectId, pattern: ObjectId) -> SeedResult<()> {
        self.mutation_allowed()?;
        let pattern_record = self.live_object(pattern)?;
        if !pattern_record.is_pattern {
            return Err(SeedError::Pattern(format!("'{}' is not a pattern", pattern_record.name)));
        }
        let inheritor_record = self.live_object(inheritor)?;
        if inheritor_record.is_pattern {
            return Err(SeedError::Pattern("patterns cannot inherit other patterns".to_string()));
        }
        // Consistency of the materialized view: every pattern relationship, seen with the
        // inheritor substituted, must be a legal relationship.
        if self.consistency_checking {
            let mut violations = Vec::new();
            for rel in self.store.relationships_of(pattern) {
                if rel.deleted {
                    continue;
                }
                let materialized = rel.with_substituted(pattern, inheritor);
                let attributes: HashMap<String, Value> =
                    materialized.attributes.clone().into_iter().collect();
                violations.extend(self.checker().check_new_relationship(
                    materialized.association,
                    &materialized.bindings,
                    &attributes,
                    false,
                    Some(rel.id),
                ));
            }
            self.enforce(|| violations)?;
        }
        self.store.add_inherits(inheritor, pattern);
        self.record_undo(UndoEntry::InheritsAdded { inheritor, pattern });
        self.persist_changes()?;
        Ok(())
    }

    /// Removes an inherits-relationship.
    pub fn uninherit_pattern(&mut self, inheritor: ObjectId, pattern: ObjectId) -> SeedResult<()> {
        self.mutation_allowed()?;
        if !self.store.remove_inherits(inheritor, pattern) {
            return Err(SeedError::Pattern(format!("{inheritor} does not inherit {pattern}")));
        }
        self.record_undo(UndoEntry::InheritsRemoved { inheritor, pattern });
        self.persist_changes()?;
        Ok(())
    }

    /// Patterns inherited by an object.
    pub fn inherited_patterns(&self, object: ObjectId) -> Vec<ObjectId> {
        self.read_store().inherited_patterns(object)
    }

    /// Objects inheriting a pattern.
    pub fn inheritors_of(&self, pattern: ObjectId) -> Vec<ObjectId> {
        self.read_store().inheritors_of(pattern)
    }

    /// Guards updates made "in the context of" an inheritor: if `relationship` is inherited by
    /// `context` from a pattern, the update is rejected — "pattern information cannot be updated
    /// in the context of the inheritors, but only in the pattern itself".
    pub fn assert_updatable_in_context(
        &self,
        context: ObjectId,
        relationship: RelationshipId,
    ) -> SeedResult<()> {
        if let Some(pattern) =
            pattern::is_inherited_relationship(&self.store, context, relationship)
        {
            let inheritor_name = self
                .store
                .object(context)
                .map(|o| o.name.to_string())
                .unwrap_or_else(|| context.to_string());
            let pattern_name = self
                .store
                .object(pattern)
                .map(|o| o.name.to_string())
                .unwrap_or_else(|| pattern.to_string());
            return Err(SeedError::Pattern(format!(
                "'{inheritor_name}' inherits this relationship from pattern '{pattern_name}'; update the pattern instead"
            )));
        }
        Ok(())
    }

    // ----- retrieval -------------------------------------------------------------------------------------------

    /// Retrieves an object by its full hierarchical name (the prototype's primary access path).
    /// Patterns are invisible; deleted objects are invisible.
    pub fn object_by_name(&self, name: &str) -> SeedResult<ObjectRecord> {
        self.read_store()
            .object_by_name(name)
            .filter(|o| !o.is_pattern)
            .cloned()
            .ok_or_else(|| SeedError::NotFound(format!("object '{name}'")))
    }

    /// Retrieves any live object (pattern or not) by name — used by pattern-management tools.
    pub fn any_object_by_name(&self, name: &str) -> SeedResult<ObjectRecord> {
        self.read_store()
            .object_by_name(name)
            .cloned()
            .ok_or_else(|| SeedError::NotFound(format!("object '{name}'")))
    }

    /// Retrieves an object by id.
    pub fn object(&self, id: ObjectId) -> SeedResult<ObjectRecord> {
        self.read_store()
            .live_object(id)
            .cloned()
            .ok_or_else(|| SeedError::NotFound(format!("object {id}")))
    }

    /// Retrieves a relationship by id.
    pub fn relationship(&self, id: RelationshipId) -> SeedResult<RelationshipRecord> {
        self.read_store()
            .live_relationship(id)
            .cloned()
            .ok_or_else(|| SeedError::NotFound(format!("relationship {id}")))
    }

    /// All visible objects of a class; `include_specializations` also returns instances of its
    /// subclasses (the natural reading under generalization).
    pub fn objects_of_class(
        &self,
        class_name: &str,
        include_specializations: bool,
    ) -> SeedResult<Vec<ObjectRecord>> {
        let store = self.read_store();
        let mut out = Vec::new();
        for c in self.class_hierarchy(class_name, include_specializations)? {
            out.extend(store.extent(c).into_iter().filter(|o| !o.is_pattern).cloned());
        }
        out.sort_by_key(|o| o.id);
        Ok(out)
    }

    /// Visible dependent objects of `parent`, including those inherited from patterns.
    pub fn children(&self, parent: ObjectId) -> Vec<MaterializedChild> {
        pattern::materialized_children(self.read_store(), parent)
    }

    /// The value visible for `object` (its own, or inherited from a pattern).
    pub fn value(&self, object: ObjectId) -> Value {
        pattern::effective_value(self.read_store(), object)
    }

    /// Relationships visible in the context of `object`: its own plus inherited pattern
    /// relationships (with the inheritor substituted).
    pub fn relationships(&self, object: ObjectId) -> Vec<MaterializedRelationship> {
        pattern::materialized_relationships(self.read_store(), object)
    }

    /// Navigates from `object` along `association_name`: returns the objects bound to `to_role`
    /// in visible relationships (own or inherited) where `object` is bound to `from_role`.
    /// Relationships of specializations of the association are included.
    pub fn related(
        &self,
        object: ObjectId,
        association_name: &str,
        from_role: &str,
        to_role: &str,
    ) -> SeedResult<Vec<ObjectRecord>> {
        let schema = self.schemas.current();
        let association = schema.association_id(association_name)?;
        let assoc_def = schema.association(association)?;
        let from_index = assoc_def.role_index(from_role).ok_or_else(|| {
            SeedError::NotFound(format!("role '{from_role}' of '{association_name}'"))
        })?;
        let to_index = assoc_def.role_index(to_role).ok_or_else(|| {
            SeedError::NotFound(format!("role '{to_role}' of '{association_name}'"))
        })?;
        let mut hierarchy = schema.association_descendants(association);
        hierarchy.push(association);
        let store = self.read_store();
        let mut out = Vec::new();
        for rel in pattern::materialized_relationships(store, object) {
            if !hierarchy.contains(&rel.record.association) {
                continue;
            }
            if rel.record.bindings.get(from_index).map(|(_, o)| *o) != Some(object) {
                continue;
            }
            if let Some((_, target)) = rel.record.bindings.get(to_index) {
                if let Some(obj) = store.live_object(*target) {
                    out.push(obj.clone());
                }
            }
        }
        out.sort_by_key(|o| o.id);
        out.dedup_by_key(|o| o.id);
        Ok(out)
    }

    /// Finds visible objects of a class (and its specializations) whose value matches `value`.
    /// Undefined values match nothing.
    pub fn find_by_value(&self, class_name: &str, value: &Value) -> SeedResult<Vec<ObjectRecord>> {
        Ok(self
            .objects_of_class(class_name, true)?
            .into_iter()
            .filter(|o| o.value.matches(value))
            .collect())
    }

    /// Visible objects whose name starts with `prefix` (dependent objects of `Alarms` via
    /// `"Alarms."`, for instance).  Served by the ordered name index: a range scan, not a full
    /// scan, so the cost is `O(log n + hits)`.  Results come back in name order.
    pub fn objects_with_name_prefix(&self, prefix: &str) -> Vec<ObjectRecord> {
        self.read_store()
            .objects_with_name_prefix(prefix)
            .into_iter()
            .filter(|o| !o.is_pattern)
            .cloned()
            .collect()
    }

    /// Upper bound on the number of objects [`Database::objects_with_name_prefix`] would return
    /// (name-index entries with the prefix; patterns not yet filtered).  Used by the query
    /// planner as the cardinality estimate of a prefix range scan; counting early-exits at
    /// `cap` (the competing scan cost), so a wide prefix never walks the whole index at plan
    /// time.
    pub fn name_prefix_estimate(&self, prefix: &str, cap: usize) -> usize {
        self.read_store().name_prefix_count(prefix, cap)
    }

    /// Visible objects of a class (and, with `include_specializations`, its subclasses) whose
    /// value satisfies `op` against a query literal, resolved through the secondary value index
    /// (see [`crate::index`]).  Point probes cost `O(log n)` per class in the hierarchy instead
    /// of the `O(n)` extent scan; the comparison semantics are identical to the scan path
    /// (undefined values match nothing).  Results are sorted by object id.
    pub fn objects_by_value(
        &self,
        class_name: &str,
        include_specializations: bool,
        op: ValueOp,
        literal: &str,
    ) -> SeedResult<Vec<ObjectRecord>> {
        let store = self.read_store();
        let mut out = Vec::new();
        for c in self.class_hierarchy(class_name, include_specializations)? {
            out.extend(
                store
                    .objects_by_value(c, op, literal)
                    .into_iter()
                    .filter(|o| !o.is_pattern)
                    .cloned(),
            );
        }
        out.sort_by_key(|o| o.id);
        Ok(out)
    }

    /// Number of index entries [`Database::objects_by_value`] would resolve (patterns not yet
    /// filtered) — the planner's cardinality estimate for a value probe or range scan.
    /// Counting early-exits at `cap` (the competing scan cost): once the index path is at
    /// least that expensive its exact cost no longer matters, which bounds plan-time work.
    pub fn value_index_estimate(
        &self,
        class_name: &str,
        include_specializations: bool,
        op: ValueOp,
        literal: &str,
        cap: usize,
    ) -> SeedResult<usize> {
        let store = self.read_store();
        let mut total = 0usize;
        for c in self.class_hierarchy(class_name, include_specializations)? {
            total += store.value_estimate(c, op, literal, cap.saturating_sub(total));
            if total >= cap {
                return Ok(cap);
            }
        }
        Ok(total)
    }

    /// Number of live objects in the extent of a class (and optionally its subclasses),
    /// patterns included — the planner's cost proxy for a full extent scan.
    pub fn class_extent_estimate(
        &self,
        class_name: &str,
        include_specializations: bool,
    ) -> SeedResult<usize> {
        let store = self.read_store();
        Ok(self
            .class_hierarchy(class_name, include_specializations)?
            .into_iter()
            .map(|c| store.extent_size(c))
            .sum())
    }

    /// The class ids a class-ranged retrieval covers: the class itself plus, when requested,
    /// all its specializations.  This is the single source of truth for "which classes does a
    /// query over `class_name` range over" — the query layer's access paths use it so the
    /// indexed and scan pipelines can never disagree on hierarchy semantics.
    pub fn class_hierarchy(
        &self,
        class_name: &str,
        include_specializations: bool,
    ) -> SeedResult<Vec<ClassId>> {
        let schema = self.schemas.current();
        let class = schema.class_id(class_name)?;
        let mut classes = vec![class];
        if include_specializations {
            classes.extend(schema.class_descendants(class));
        }
        Ok(classes)
    }

    /// Runs the completeness analysis on the read context.
    pub fn completeness_report(&self) -> CompletenessReport {
        completeness::analyze(self.schemas.current(), self.read_store())
    }

    // ----- versions ----------------------------------------------------------------------------------------------

    /// Creates a version snapshot with an automatically chosen id (`1.0`, `2.0`, ... on the main
    /// line; `base.1`, `base.2`, ... while working on an alternative).
    pub fn create_version(&mut self, comment: &str) -> SeedResult<VersionId> {
        let id = match &self.alternative {
            Some(alt) => self.versions.next_alternative_id(&alt.base),
            None => self.versions.next_default_id(),
        };
        self.create_version_as(id.clone(), comment)?;
        Ok(id)
    }

    /// Creates a version snapshot with an explicit id.
    pub fn create_version_as(&mut self, id: VersionId, comment: &str) -> SeedResult<()> {
        self.mutation_allowed()?;
        if self.txn.is_some() {
            return Err(SeedError::Transaction(
                "finish the active transaction before creating a version".to_string(),
            ));
        }
        let parent = match &self.alternative {
            Some(alt) => Some(alt.base.clone()),
            None => self.versions.last_created().cloned(),
        };
        // History-sensitive consistency rules compare the parent view with the current state.
        if !self.transition_rules.is_empty() {
            if let Some(parent_id) = &parent {
                let previous = self.versions.view(parent_id)?;
                let violations = check_transition(
                    &self.transition_rules,
                    self.schemas.current(),
                    &previous,
                    &self.store,
                );
                if !violations.is_empty() {
                    let text =
                        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ");
                    return Err(SeedError::TransitionRejected(text));
                }
            }
        }
        // The delta the snapshot will record is the current dirty set; capture it before the
        // version manager drains it, so the durable `v/<vid>/…` records match exactly.
        let delta: Option<Vec<ItemId>> = if self.durability.is_some() {
            let mut d: Vec<ItemId> = self.store.dirty_items().iter().copied().collect();
            d.sort();
            Some(d)
        } else {
            None
        };
        self.versions.create_version(
            id.clone(),
            parent,
            self.schemas.current_id(),
            comment,
            &mut self.store,
        )?;
        if let Some(delta) = delta {
            self.persist_version_created(&id, &delta)?;
        }
        Ok(())
    }

    /// Selects a historical version for retrieval; `None` selects the current version again.
    pub fn select_version(&mut self, version: Option<VersionId>) -> SeedResult<()> {
        match version {
            Some(v) => {
                let view = self.versions.view(&v)?;
                self.selected_view = Some(view);
                self.selected_version = Some(v);
            }
            None => {
                self.selected_view = None;
                self.selected_version = None;
            }
        }
        Ok(())
    }

    /// The version currently selected for retrieval (`None` = current).
    pub fn selected_version(&self) -> Option<&VersionId> {
        self.selected_version.as_ref()
    }

    /// All stored versions.
    pub fn versions(&self) -> Vec<&VersionInfo> {
        self.versions.versions()
    }

    /// Metadata of one version.
    pub fn version_info(&self, id: &VersionId) -> SeedResult<&VersionInfo> {
        self.versions.info(id)
    }

    /// Deletes a stored version (and, on a durable database, its `vi/` and `v/` records).
    pub fn delete_version(&mut self, id: &VersionId) -> SeedResult<()> {
        if self.selected_version.as_ref() == Some(id) {
            return Err(SeedError::Version(
                "cannot delete the version currently selected for retrieval".to_string(),
            ));
        }
        self.versions.delete_version(id)?;
        self.persist_version_deleted(id)
    }

    /// History retrieval: all stored versions of an object, optionally "beginning with version
    /// `from`" as in the paper's example.
    pub fn versions_of_object(
        &self,
        object: ObjectId,
        from: Option<&VersionId>,
    ) -> Vec<(VersionId, ObjectRecord)> {
        self.versions
            .versions_of_item(ItemId::Object(object), from)
            .into_iter()
            .filter_map(|(v, snap)| match snap {
                crate::version::ItemSnapshot::Object(o) => Some((v.clone(), o.clone())),
                _ => None,
            })
            .collect()
    }

    /// Starts working on an **alternative**: the current state is stashed, and the view of
    /// `base` becomes the working state.  Finish with [`Database::create_version`] (which files
    /// the alternative under `base.n`) and [`Database::return_to_current`].
    pub fn checkout_alternative(&mut self, base: VersionId) -> SeedResult<()> {
        if self.alternative.is_some() {
            return Err(SeedError::Version("already working on an alternative".to_string()));
        }
        if self.txn.is_some() {
            return Err(SeedError::Transaction(
                "finish the active transaction before checking out an alternative".to_string(),
            ));
        }
        self.mutation_allowed()?;
        let mut view = self.versions.view(&base)?;
        // Fresh ids allocated while working on the alternative must not collide with ids already
        // used by the current state (both feed the same version histories).
        let (obj_floor, rel_floor) = self.store.id_floor();
        view.raise_id_floor(obj_floor, rel_floor);
        let stashed = std::mem::replace(&mut self.store, view);
        self.alternative = Some(AlternativeContext { base, stashed });
        // The working store changed wholesale; a snapshot delta cannot describe it.
        self.snap_reset = self.snapshot_tracking;
        Ok(())
    }

    /// Whether an alternative is being worked on.
    pub fn in_alternative(&self) -> bool {
        self.alternative.is_some()
    }

    /// The base version of the alternative being worked on, if any.
    pub fn alternative_base(&self) -> Option<&VersionId> {
        self.alternative.as_ref().map(|a| &a.base)
    }

    /// Ends work on an alternative and restores the original current state ("the original
    /// current version is selected again").  Unsaved changes to the alternative are discarded.
    pub fn return_to_current(&mut self) -> SeedResult<()> {
        if self.txn.is_some() {
            // Mirrors the guard in checkout_alternative: letting a transaction begun in the
            // alternative span the store swap would roll back against the wrong store — and,
            // on a durable database, auto-commit mainline mutations with no storage
            // transaction to abort.
            return Err(SeedError::Transaction(
                "finish the active transaction before returning to the current version".to_string(),
            ));
        }
        match self.alternative.take() {
            Some(alt) => {
                self.store = alt.stashed;
                self.snap_reset = self.snapshot_tracking;
                Ok(())
            }
            None => Err(SeedError::Version("not working on an alternative".to_string())),
        }
    }

    // ----- persistence plumbing (used by crate::persist) ------------------------------------------------------------

    pub(crate) fn parts(
        &self,
    ) -> (&SchemaRegistry, &DataStore, &VersionManager, &[TransitionRule]) {
        (&self.schemas, &self.store, &self.versions, &self.transition_rules)
    }

    pub(crate) fn from_parts(
        schemas: SchemaRegistry,
        store: DataStore,
        versions: VersionManager,
        transition_rules: Vec<TransitionRule>,
    ) -> Self {
        Self {
            schemas,
            store,
            versions,
            procedures: ProcedureRegistry::new(),
            selected_version: None,
            selected_view: None,
            alternative: None,
            txn: None,
            transition_rules,
            consistency_checking: true,
            durability: None,
            snap_changed: HashSet::new(),
            snapshot_tracking: false,
            snap_reset: false,
            topology_epoch: 0,
            fenced_to: None,
        }
    }

    // ----- snapshot plumbing (used by crate::snapshot) --------------------------------------------------------------

    /// Turns on snapshot-delta tracking: from now on every committed mutation is also recorded
    /// in a second journal drained by the snapshot publisher ([`crate::snapshot::SnapshotCell`]),
    /// so a new read snapshot can be produced by an O(delta) copy-on-write sync instead of a
    /// full clone.  Idempotent; forces the store's change journal on even for in-memory
    /// databases.
    pub fn enable_snapshot_tracking(&mut self) {
        if !self.snapshot_tracking {
            self.snapshot_tracking = true;
            self.snap_reset = true;
            self.store.set_journal(true);
        }
    }

    /// Whether snapshot-delta tracking is on.
    pub fn snapshot_tracking(&self) -> bool {
        self.snapshot_tracking
    }

    /// Drains the snapshot delta: the items mutated since the last drain, sorted.  Returns
    /// `None` when the store changed wholesale (alternative checkout, fresh tracking) and the
    /// publisher must rebuild instead of patching.
    pub(crate) fn take_snapshot_changes(&mut self) -> Option<Vec<ItemId>> {
        // Catch store mutations that bypassed persist_changes (e.g. the replica's direct effect
        // apply): fold any undrained journal items into the snapshot delta, but leave them
        // queued for durability (a durable database re-stages them on its next commit).
        let residue = self.store.take_changed();
        if !residue.is_empty() {
            self.snap_changed.extend(residue.iter().copied());
            if self.durability.is_some() {
                // Items a durable database failed to stage must stay queued for its retry.
                self.store.requeue_changed(&residue);
            }
        }
        if self.snap_reset {
            self.snap_reset = false;
            self.snap_changed.clear();
            return None;
        }
        let mut items: Vec<ItemId> = self.snap_changed.drain().collect();
        items.sort();
        Some(items)
    }

    /// A deep copy of the queryable state (schemas, store with all indexes, versions, rules) for
    /// use as an immutable read snapshot.  Durability handles, open transactions and attached
    /// procedures are not carried over — snapshots never write.
    pub(crate) fn clone_for_snapshot(&self) -> Database {
        Database {
            schemas: self.schemas.clone(),
            store: self.store.clone(),
            versions: self.versions.clone(),
            procedures: ProcedureRegistry::new(),
            selected_version: self.selected_version.clone(),
            selected_view: self.selected_view.clone(),
            alternative: None,
            txn: None,
            transition_rules: self.transition_rules.clone(),
            consistency_checking: self.consistency_checking,
            durability: None,
            snap_changed: HashSet::new(),
            snapshot_tracking: false,
            snap_reset: false,
            topology_epoch: self.topology_epoch,
            fenced_to: self.fenced_to.clone(),
        }
    }

    /// Patches `self` (a retired snapshot clone) to match `src` given that exactly `items`
    /// were mutated in between — the O(delta) half of copy-on-write snapshot publication.
    /// Index maintenance rides on the store's ordinary mutators, so the patched clone is
    /// byte-identical to a fresh [`Database::clone_for_snapshot`] of `src`.
    pub(crate) fn sync_snapshot_from(&mut self, src: &Database, items: &[ItemId]) {
        // Cross-item renames within one delta (A→B while B→A) would corrupt the name index if
        // patched in place, because `update_object` unconditionally re-inserts the new name:
        // park every live-and-renamed (or soon-removed) object under a collision-free temporary
        // name first, then apply the real records.
        for item in items {
            let ItemId::Object(oid) = item else { continue };
            let stale = match self.store.object(*oid) {
                Some(rec) if !rec.deleted => rec,
                _ => continue,
            };
            let needs_parking = match src.store.object(*oid) {
                None => true,
                Some(new) => new.name.to_string() != stale.name.to_string(),
            };
            if needs_parking {
                let parked = format!("\u{1}snap-parked-{}", oid.0);
                self.store.update_object(*oid, |o| o.name = o.name.with_root_renamed(parked));
            }
        }
        for item in items {
            match *item {
                ItemId::Object(oid) => {
                    match src.store.object(oid) {
                        Some(rec) => {
                            let rec = rec.clone();
                            if self.store.object(oid).is_some() {
                                self.store.update_object(oid, |o| *o = rec);
                            } else {
                                self.store.insert_object(rec);
                            }
                        }
                        None => {
                            if self.store.object(oid).is_some() {
                                self.store.remove_object(oid);
                            }
                        }
                    }
                    // The inherits-links of a changed object travel with it (mirroring the
                    // durable codec, where the object record carries them).
                    let want = src.store.inherited_patterns(oid);
                    for have in self.store.inherited_patterns(oid) {
                        if !want.contains(&have) {
                            self.store.remove_inherits(oid, have);
                        }
                    }
                    for pattern in want {
                        if !self.store.inherited_patterns(oid).contains(&pattern) {
                            self.store.add_inherits(oid, pattern);
                        }
                    }
                }
                ItemId::Relationship(rid) => match src.store.relationship(rid) {
                    Some(rec) => {
                        let rec = rec.clone();
                        if self.store.relationship(rid).is_some() {
                            self.store.update_relationship(rid, |r| *r = rec);
                        } else {
                            self.store.insert_relationship(rec);
                        }
                    }
                    None => {
                        if self.store.relationship(rid).is_some() {
                            self.store.remove_relationship(rid);
                        }
                    }
                },
            }
        }
        let (obj_floor, rel_floor) = src.store.id_floor();
        self.store.raise_id_floor(obj_floor, rel_floor);
        if self.schemas != src.schemas {
            self.schemas = src.schemas.clone();
        }
        if self.versions.seq() != src.versions.seq()
            || self.versions.version_count() != src.versions.version_count()
            || self.versions.last_created() != src.versions.last_created()
        {
            self.versions = src.versions.clone();
        }
        if self.transition_rules != src.transition_rules {
            self.transition_rules = src.transition_rules.clone();
        }
        if self.selected_version != src.selected_version {
            self.selected_version = src.selected_version.clone();
            self.selected_view = src.selected_view.clone();
        }
        self.consistency_checking = src.consistency_checking;
    }

    // ----- replica apply plumbing (used by crate::replica) ------------------------------------------------------------

    pub(crate) fn store_mut(&mut self) -> &mut DataStore {
        &mut self.store
    }

    pub(crate) fn set_schemas(&mut self, schemas: SchemaRegistry) {
        self.schemas = schemas;
    }

    pub(crate) fn set_versions(&mut self, versions: VersionManager) {
        self.versions = versions;
    }

    pub(crate) fn set_transition_rules(&mut self, rules: Vec<TransitionRule>) {
        self.transition_rules = rules;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_schema::{figure2_schema, figure3_schema};

    fn db3() -> Database {
        Database::new(figure3_schema())
    }

    #[test]
    fn create_and_retrieve_by_name() {
        let mut db = db3();
        let alarms = db.create_object("Data", "Alarms").unwrap();
        assert_eq!(db.object_by_name("Alarms").unwrap().id, alarms);
        assert!(db.object_by_name("Ghost").is_err());
        assert_eq!(db.object_count(), 1);
        // Duplicate names rejected.
        assert!(matches!(db.create_object("Data", "Alarms"), Err(SeedError::DuplicateName(_))));
        // Unknown class rejected.
        assert!(db.create_object("Ghost", "X").is_err());
        // Hierarchical names are not allowed for independent objects.
        assert!(db.create_object("Data", "A.B").is_err());
    }

    #[test]
    fn dependent_objects_get_hierarchical_names() {
        let mut db = db3();
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let text = db
            .create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)
            .unwrap();
        let body = db
            .create_dependent_named(text, "Body", NameSegment::plain("Body"), Value::Undefined)
            .unwrap();
        let kw0 = db.create_dependent(body, "Keywords", Value::string("Alarmhandling")).unwrap();
        let kw1 = db.create_dependent(body, "Keywords", Value::string("Display")).unwrap();
        assert_eq!(db.object(kw0).unwrap().name.to_string(), "Alarms.Text.Body.Keywords[0]");
        assert_eq!(db.object(kw1).unwrap().name.to_string(), "Alarms.Text.Body.Keywords[1]");
        let selector =
            db.create_dependent(text, "Selector", Value::string("Representation")).unwrap();
        assert_eq!(db.object(selector).unwrap().name.to_string(), "Alarms.Text.Selector");
        // Children listing.
        assert_eq!(db.children(text).len(), 2);
        // Unknown dependent class.
        assert!(db.create_dependent(alarms, "Ghost", Value::Undefined).is_err());
    }

    #[test]
    fn consistency_is_enforced_on_every_update() {
        let mut db = db3();
        let alarms = db.create_object("Data", "Alarms").unwrap();
        // Value on a class without domain.
        assert!(matches!(
            db.set_value(alarms, Value::string("x")),
            Err(SeedError::Inconsistent(_))
        ));
        // Read requires InputData.
        let sensor = db.create_object("Action", "Sensor").unwrap();
        assert!(db.create_relationship("Read", &[("from", alarms), ("by", sensor)]).is_err());
        // Access works.
        assert!(db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).is_ok());
        // Disabling the checks lets the bad value through (benchmark mode).
        db.set_consistency_checking(false);
        assert!(db.set_value(alarms, Value::string("x")).is_ok());
    }

    #[test]
    fn figure3_vague_to_precise_workflow() {
        let mut db = db3();
        // "There is a thing with name 'Alarms'."
        let alarms = db.create_object("Thing", "Alarms").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        // It is a data object accessed by 'Sensor'.
        db.reclassify_object(alarms, "Data").unwrap();
        let access = db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        // It is an output...
        db.reclassify_object(alarms, "OutputData").unwrap();
        // ...written by Sensor...
        db.reclassify_relationship(access, "Write").unwrap();
        // ...twice, repeated in case of error.
        db.set_relationship_attribute(access, "NumberOfWrites", Value::Integer(2)).unwrap();
        db.set_relationship_attribute(access, "ErrorHandling", Value::symbol("repeat")).unwrap();

        let rel = db.relationship(access).unwrap();
        assert_eq!(db.schema().association(rel.association).unwrap().name, "Write");
        assert_eq!(rel.bound("to"), Some(alarms));
        assert_eq!(rel.attributes.get("NumberOfWrites"), Some(&Value::Integer(2)));
        // Retrieval by class respects the hierarchy.
        assert_eq!(db.objects_of_class("Data", true).unwrap().len(), 1);
        assert_eq!(db.objects_of_class("Data", false).unwrap().len(), 0);
        // Navigation.
        let writers = db.related(alarms, "Access", "from", "by").unwrap();
        assert_eq!(writers.len(), 1);
        assert_eq!(writers[0].id, sensor);
    }

    #[test]
    fn reclassification_errors_are_reported() {
        let mut db = db3();
        let alarms = db.create_object("Data", "Alarms").unwrap();
        assert!(db.reclassify_object(alarms, "Data.Text").is_err());
        assert!(db.reclassify_object(alarms, "Ghost").is_err());
        // No-op re-classification succeeds.
        assert!(db.reclassify_object(alarms, "Data").is_ok());
    }

    #[test]
    fn delete_cascades_to_dependents_and_relationships() {
        let mut db = db3();
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let text = db
            .create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)
            .unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        let rel = db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        db.delete_object(alarms).unwrap();
        assert!(db.object_by_name("Alarms").is_err());
        assert!(db.object(text).is_err());
        assert!(db.relationship(rel).is_err());
        assert!(db.object(sensor).is_ok());
        // Deleting again fails (already gone).
        assert!(db.delete_object(alarms).is_err());
    }

    #[test]
    fn transactions_roll_back_cleanly() {
        let mut db = db3();
        let alarms = db.create_object("Data", "Alarms").unwrap();
        db.begin_transaction().unwrap();
        assert!(db.in_transaction());
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        db.reclassify_object(alarms, "OutputData").unwrap();
        db.rollback_transaction().unwrap();
        assert!(!db.in_transaction());
        assert!(db.object_by_name("Sensor").is_err());
        assert_eq!(db.object(alarms).unwrap().class, db.schema().class_id("Data").unwrap());
        assert_eq!(db.relationship_count(), 0);
        // Commit path.
        db.begin_transaction().unwrap();
        db.create_object("Action", "Sensor").unwrap();
        db.commit_transaction().unwrap();
        assert!(db.object_by_name("Sensor").is_ok());
        // Double begin / stray commit.
        db.begin_transaction().unwrap();
        assert!(db.begin_transaction().is_err());
        db.rollback_transaction().unwrap();
        assert!(db.commit_transaction().is_err());
        assert!(db.rollback_transaction().is_err());
    }

    #[test]
    fn rename_propagates_to_dependents() {
        let mut db = db3();
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let text = db
            .create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)
            .unwrap();
        db.rename_object(alarms, "AlarmMatrix").unwrap();
        assert_eq!(db.object(text).unwrap().name.to_string(), "AlarmMatrix.Text");
        assert!(db.object_by_name("Alarms").is_err());
        assert!(db.object_by_name("AlarmMatrix.Text").is_ok());
        // Dependent objects cannot be renamed directly.
        assert!(db.rename_object(text, "Elsewhere").is_err());
    }

    #[test]
    fn versions_snapshots_views_and_alternatives() {
        let mut db = db3();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        let desc = db
            .create_dependent_named(
                handler,
                "Description",
                NameSegment::plain("Description"),
                Value::string("Handles alarms"),
            )
            .unwrap();
        let v10 = db.create_version("first release").unwrap();
        assert_eq!(v10.to_string(), "1.0");

        db.set_value(desc, Value::string("Handles alarms derived from ProcessData")).unwrap();
        let v20 = db.create_version("second release").unwrap();
        assert_eq!(v20.to_string(), "2.0");

        db.set_value(
            desc,
            Value::string("Generates alarms from process data, triggers Operator Alert"),
        )
        .unwrap();

        // Current sees the newest text; selected versions see their own.
        assert_eq!(
            db.object(desc).unwrap().value,
            Value::string("Generates alarms from process data, triggers Operator Alert")
        );
        db.select_version(Some(v10.clone())).unwrap();
        assert_eq!(db.object(desc).unwrap().value, Value::string("Handles alarms"));
        assert_eq!(db.selected_version().unwrap().to_string(), "1.0");
        // Historical versions are read-only.
        assert!(matches!(
            db.set_value(desc, Value::string("x")),
            Err(SeedError::ReadOnlyVersion(_))
        ));
        db.select_version(None).unwrap();

        // History retrieval beginning with 2.0.
        let history = db.versions_of_object(desc, Some(&v20));
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].0, v20);

        // Alternative branched from 1.0.
        db.checkout_alternative(v10.clone()).unwrap();
        assert!(db.in_alternative());
        assert_eq!(db.alternative_base().unwrap(), &v10);
        assert_eq!(db.object(desc).unwrap().value, Value::string("Handles alarms"));
        db.set_value(desc, Value::string("Alternative design")).unwrap();
        let alt = db.create_version("alternative").unwrap();
        assert_eq!(alt.to_string(), "1.0.1");
        db.return_to_current().unwrap();
        assert!(!db.in_alternative());
        assert_eq!(
            db.object(desc).unwrap().value,
            Value::string("Generates alarms from process data, triggers Operator Alert")
        );
        // The alternative's view is intact.
        db.select_version(Some(alt.clone())).unwrap();
        assert_eq!(db.object(desc).unwrap().value, Value::string("Alternative design"));
        db.select_version(None).unwrap();
        // Version metadata.
        assert_eq!(db.versions().len(), 3);
        assert_eq!(db.version_info(&alt).unwrap().parent, Some(v10.clone()));
        // Deleting a selected version is refused; otherwise allowed.
        db.select_version(Some(alt.clone())).unwrap();
        assert!(db.delete_version(&alt).is_err());
        db.select_version(None).unwrap();
        db.delete_version(&alt).unwrap();
        assert_eq!(db.versions().len(), 2);
    }

    #[test]
    fn transition_rules_guard_version_creation() {
        let mut db = db3();
        db.add_transition_rule(TransitionRule::NoDeletions).unwrap();
        let alarms = db.create_object("Data", "Alarms").unwrap();
        db.create_version("1.0").unwrap();
        db.delete_object(alarms).unwrap();
        let err = db.create_version("2.0");
        assert!(matches!(err, Err(SeedError::TransitionRejected(_))));
        assert_eq!(db.versions().len(), 1);
        assert_eq!(db.transition_rules().len(), 1);
    }

    #[test]
    fn patterns_propagate_and_are_protected() {
        let mut db = db3();
        // A pattern Data object related to a common Action.
        let manager = db.create_object("Action", "Manager").unwrap();
        let pattern = db.create_pattern_object("Data", "StandardInput").unwrap();
        let pr = db
            .create_pattern_relationship("Access", &[("from", pattern), ("by", manager)])
            .unwrap();
        // Patterns are invisible to ordinary retrieval.
        assert!(db.object_by_name("StandardInput").is_err());
        assert!(db.any_object_by_name("StandardInput").is_ok());
        assert_eq!(db.objects_of_class("Data", true).unwrap().len(), 0);
        // Two real objects inherit the pattern.
        let a = db.create_object("Data", "SensorInput").unwrap();
        let b = db.create_object("Data", "OperatorInput").unwrap();
        db.inherit_pattern(a, pattern).unwrap();
        db.inherit_pattern(b, pattern).unwrap();
        assert_eq!(db.inheritors_of(pattern), vec![a, b]);
        assert_eq!(db.inherited_patterns(a), vec![pattern]);
        // Both see an inherited Access relationship to Manager.
        for obj in [a, b] {
            let rels = db.relationships(obj);
            assert_eq!(rels.len(), 1);
            assert!(rels[0].is_inherited());
            assert_eq!(rels[0].record.bound("by"), Some(manager));
            assert_eq!(rels[0].record.bound("from"), Some(obj));
        }
        // Navigation sees the inherited relationship too.
        assert_eq!(db.related(a, "Access", "from", "by").unwrap()[0].id, manager);
        // Updating inherited information in the inheritor's context is rejected.
        assert!(db.assert_updatable_in_context(a, pr).is_err());
        assert!(db.assert_updatable_in_context(manager, pr).is_ok());
        // Un-inherit.
        db.uninherit_pattern(b, pattern).unwrap();
        assert!(db.relationships(b).is_empty());
        assert!(db.uninherit_pattern(b, pattern).is_err());
        // Inheriting from a non-pattern is rejected.
        assert!(db.inherit_pattern(a, b).is_err());
    }

    #[test]
    fn inheriting_an_inconsistent_pattern_is_rejected() {
        let mut db = db3();
        // Pattern relationship binds a Data-typed pattern into the Write association's
        // OutputData role — fine while it is a pattern (not checked)...
        let pattern = db.create_pattern_object("Data", "P").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.create_pattern_relationship("Write", &[("to", pattern), ("by", sensor)]).unwrap();
        // ...but a plain-Data inheritor cannot take the OutputData role.
        let plain = db.create_object("Data", "PlainData").unwrap();
        assert!(matches!(db.inherit_pattern(plain, pattern), Err(SeedError::Inconsistent(_))));
        // An OutputData inheritor can.
        let output = db.create_object("OutputData", "Report").unwrap();
        assert!(db.inherit_pattern(output, pattern).is_ok());
    }

    #[test]
    fn find_by_value_ignores_undefined() {
        let mut db = Database::new(figure2_schema());
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let text = db
            .create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)
            .unwrap();
        let sel = db.create_dependent(text, "Selector", Value::string("Representation")).unwrap();
        let body = db
            .create_dependent_named(text, "Body", NameSegment::plain("Body"), Value::Undefined)
            .unwrap();
        let _kw = db.create_dependent(body, "Keywords", Value::Undefined).unwrap();
        let hits =
            db.find_by_value("Data.Text.Selector", &Value::string("Representation")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, sel);
        // Undefined matches nothing, in both directions.
        assert!(db.find_by_value("Data.Text.Body.Keywords", &Value::Undefined).unwrap().is_empty());
        assert!(db.find_by_value("Data.Text.Selector", &Value::Undefined).unwrap().is_empty());
        // Prefix retrieval.
        assert_eq!(db.objects_with_name_prefix("Alarms.").len(), 4);
    }

    #[test]
    fn value_index_retrieval_spans_hierarchies_versions_and_undo() {
        let mut db = db3();
        let alarms = db.create_object("OutputData", "Alarms").unwrap();
        let text = db
            .create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)
            .unwrap();
        let sel = db.create_dependent(text, "Selector", Value::string("Representation")).unwrap();
        // Indexed equality retrieval agrees with the scan-based find_by_value.
        let hits =
            db.objects_by_value("Data.Text.Selector", true, ValueOp::Eq, "Representation").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, sel);
        assert_eq!(
            db.value_index_estimate("Data.Text.Selector", true, ValueOp::Eq, "Representation", 99)
                .unwrap(),
            1
        );
        assert_eq!(db.class_extent_estimate("Data", true).unwrap(), 1);
        assert_eq!(db.name_prefix_estimate("Alarms.", 99), 2);
        assert_eq!(db.name_prefix_estimate("Alarms.", 1), 1, "counting stops at the cap");
        assert!(db.objects_by_value("Ghost", true, ValueOp::Eq, "x").is_err());

        // Undefined values are invisible to the index.
        assert!(db
            .objects_by_value("Data.Text", true, ValueOp::Eq, "<undefined>")
            .unwrap()
            .is_empty());

        // The index follows transactions: a rolled-back update leaves no trace.
        db.begin_transaction().unwrap();
        db.set_value(sel, Value::string("Contents")).unwrap();
        assert_eq!(
            db.objects_by_value("Data.Text.Selector", true, ValueOp::Eq, "Contents").unwrap().len(),
            1
        );
        db.rollback_transaction().unwrap();
        assert!(db
            .objects_by_value("Data.Text.Selector", true, ValueOp::Eq, "Contents")
            .unwrap()
            .is_empty());
        assert_eq!(
            db.objects_by_value("Data.Text.Selector", true, ValueOp::Eq, "Representation")
                .unwrap()
                .len(),
            1
        );

        // Version views rebuild the index, so historical retrieval is indexed too.
        let v1 = db.create_version("with Representation").unwrap();
        db.set_value(sel, Value::string("Contents")).unwrap();
        db.select_version(Some(v1)).unwrap();
        assert_eq!(
            db.objects_by_value("Data.Text.Selector", true, ValueOp::Eq, "Representation")
                .unwrap()
                .len(),
            1
        );
        assert!(db
            .objects_by_value("Data.Text.Selector", true, ValueOp::Eq, "Contents")
            .unwrap()
            .is_empty());
        db.select_version(None).unwrap();
        assert_eq!(
            db.objects_by_value("Data.Text.Selector", true, ValueOp::Eq, "Contents").unwrap().len(),
            1
        );
    }

    #[test]
    fn completeness_report_via_database() {
        let mut db = db3();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        let report = db.completeness_report();
        assert!(!report.is_complete());
        let alarms = db.create_object("Data", "Alarms").unwrap();
        db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        let report = db.completeness_report();
        // Sensor's Access obligation is met; Alarms still needs specialization etc. but Sensor
        // has no missing-relationship finding any more.
        assert!(!report
            .findings
            .iter()
            .any(|f| matches!(f, crate::completeness::Incompleteness::MissingRelationships { object, .. } if *object == sensor)));
    }

    #[test]
    fn version_creation_blocked_during_transaction() {
        let mut db = db3();
        db.create_object("Data", "Alarms").unwrap();
        db.begin_transaction().unwrap();
        assert!(db.create_version("nope").is_err());
        db.commit_transaction().unwrap();
        assert!(db.create_version("ok").is_ok());
    }
}
