//! Versions: snapshots, delta storage, the version tree and view reconstruction.
//!
//! "The SEED version concept allows certain states of the database to be preserved. (...)
//! Versions are created explicitly by taking a snapshot of the database.  Additionally, there is
//! always a current version representing the current state of the database."
//!
//! Storage is delta-based: "When creating a version we do not save the complete database.  We
//! only store those objects and relationships that have been changed after the creation of the
//! previous version.  Items that have been deleted in this interval must also be recorded.  This
//! is made easy by marking items as deleted instead of removing them physically."
//!
//! View reconstruction follows the paper exactly: "The view to a version with number *n*
//! consists of the objects and relationships having the greatest version number that is less
//! than or equal to *n* (provided that they are not marked as deleted)."

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use seed_schema::SchemaVersionId;

use crate::error::{SeedError, SeedResult};
use crate::ident::{ItemId, VersionId};
use crate::object::ObjectRecord;
use crate::relationship::RelationshipRecord;
use crate::store::DataStore;

/// The state of one item as recorded at a version snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ItemSnapshot {
    /// An object's state.
    Object(ObjectRecord),
    /// A relationship's state.
    Relationship(RelationshipRecord),
}

impl ItemSnapshot {
    /// Whether the snapshot is a tombstone (the item was deleted at that version).
    pub fn is_deleted(&self) -> bool {
        match self {
            ItemSnapshot::Object(o) => o.deleted,
            ItemSnapshot::Relationship(r) => r.deleted,
        }
    }
}

/// Metadata about one stored version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionInfo {
    /// The version's decimal identifier.
    pub id: VersionId,
    /// The version this one was created from (its parent in the version tree).
    pub parent: Option<VersionId>,
    /// Schema version that was current when the snapshot was taken.
    pub schema_version: SchemaVersionId,
    /// Free-form comment ("document finished", "before session 12", ...).
    pub comment: String,
    /// Creation sequence number (strictly increasing; used for history navigation).
    pub seq: u64,
    /// Number of items recorded in this version's delta.
    pub delta_size: usize,
}

/// Manages version snapshots and reconstructs historical views.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VersionManager {
    versions: BTreeMap<VersionId, VersionInfo>,
    /// Per-item history: snapshots taken at version-creation points, keyed by version id.
    histories: HashMap<ItemId, BTreeMap<VersionId, ItemSnapshot>>,
    /// The most recently created version (the default parent of the next one).
    last_created: Option<VersionId>,
    seq: u64,
}

impl VersionManager {
    /// Creates an empty version manager (only the implicit *current* version exists).
    pub fn new() -> Self {
        Self::default()
    }

    /// The version most recently created, if any.
    pub fn last_created(&self) -> Option<&VersionId> {
        self.last_created.as_ref()
    }

    /// The id the next top-level version would get by default (`1.0`, then `2.0`, ...).
    pub fn next_default_id(&self) -> VersionId {
        match &self.last_created {
            None => VersionId::initial(),
            Some(last) => {
                // Propose siblings until an unused id is found (deletion may leave gaps).
                let mut candidate = last.next_sibling();
                while self.versions.contains_key(&candidate) {
                    candidate = candidate.next_sibling();
                }
                candidate
            }
        }
    }

    /// The id the next alternative below `base` would get (`1.0` → `1.0.1`, `1.0.2`, ...).
    pub fn next_alternative_id(&self, base: &VersionId) -> VersionId {
        let mut candidate = base.first_child();
        while self.versions.contains_key(&candidate) {
            candidate = candidate.next_sibling();
        }
        candidate
    }

    /// Whether a version with this id exists.
    pub fn contains(&self, id: &VersionId) -> bool {
        self.versions.contains_key(id)
    }

    /// Metadata of a version.
    pub fn info(&self, id: &VersionId) -> SeedResult<&VersionInfo> {
        self.versions.get(id).ok_or_else(|| SeedError::Version(format!("unknown version {id}")))
    }

    /// All versions in id order.
    pub fn versions(&self) -> Vec<&VersionInfo> {
        self.versions.values().collect()
    }

    /// Direct children of `id` in the version tree.
    pub fn children(&self, id: &VersionId) -> Vec<&VersionInfo> {
        self.versions.values().filter(|v| v.parent.as_ref() == Some(id)).collect()
    }

    /// Roots of the version tree (versions without parents).
    pub fn roots(&self) -> Vec<&VersionInfo> {
        self.versions.values().filter(|v| v.parent.is_none()).collect()
    }

    /// Creates a version snapshot with an explicit id.
    ///
    /// Only the items currently marked dirty in the store are recorded (delta storage); the
    /// store's dirty set is drained.  `parent` is recorded as the version-tree parent.
    pub fn create_version(
        &mut self,
        id: VersionId,
        parent: Option<VersionId>,
        schema_version: SchemaVersionId,
        comment: impl Into<String>,
        store: &mut DataStore,
    ) -> SeedResult<&VersionInfo> {
        if self.versions.contains_key(&id) {
            return Err(SeedError::Version(format!("version {id} already exists")));
        }
        if let Some(p) = &parent {
            if !self.versions.contains_key(p) {
                return Err(SeedError::Version(format!("parent version {p} does not exist")));
            }
        }
        let dirty: Vec<ItemId> = store.dirty_items().iter().copied().collect();
        let mut delta_size = 0usize;
        for item in dirty {
            let snapshot = match item {
                ItemId::Object(oid) => store.object(oid).cloned().map(ItemSnapshot::Object),
                ItemId::Relationship(rid) => {
                    store.relationship(rid).cloned().map(ItemSnapshot::Relationship)
                }
            };
            if let Some(snapshot) = snapshot {
                self.histories.entry(item).or_default().insert(id.clone(), snapshot);
                delta_size += 1;
            }
        }
        store.clear_dirty();
        self.seq += 1;
        let info = VersionInfo {
            id: id.clone(),
            parent,
            schema_version,
            comment: comment.into(),
            seq: self.seq,
            delta_size,
        };
        self.versions.insert(id.clone(), info);
        self.last_created = Some(id.clone());
        Ok(self.versions.get(&id).expect("just inserted"))
    }

    /// Deletes a version ("versions cannot be modified, except for deletion").  Its recorded
    /// deltas are dropped; views of later versions that relied on them fall back to earlier
    /// snapshots of the same items.
    pub fn delete_version(&mut self, id: &VersionId) -> SeedResult<()> {
        if self.versions.remove(id).is_none() {
            return Err(SeedError::Version(format!("unknown version {id}")));
        }
        for history in self.histories.values_mut() {
            history.remove(id);
        }
        if self.last_created.as_ref() == Some(id) {
            self.last_created = self.versions.keys().next_back().cloned();
        }
        Ok(())
    }

    /// The snapshot of `item` visible in version `at`, following the paper's rule (greatest
    /// recorded version ≤ `at`).  Returns `None` if the item did not exist yet or its selected
    /// snapshot is a tombstone.
    pub fn item_in_version(&self, item: ItemId, at: &VersionId) -> Option<&ItemSnapshot> {
        let history = self.histories.get(&item)?;
        let (_, snapshot) = history.range(..=at.clone()).next_back()?;
        if snapshot.is_deleted() {
            None
        } else {
            Some(snapshot)
        }
    }

    /// Reconstructs the full database view of version `at` as a fresh [`DataStore`].
    pub fn view(&self, at: &VersionId) -> SeedResult<DataStore> {
        if !self.versions.contains_key(at) {
            return Err(SeedError::Version(format!("unknown version {at}")));
        }
        let mut store = DataStore::new();
        for item in self.histories.keys() {
            match self.item_in_version(*item, at) {
                Some(ItemSnapshot::Object(o)) => store.insert_object(o.clone()),
                Some(ItemSnapshot::Relationship(r)) => store.insert_relationship(r.clone()),
                None => {}
            }
        }
        store.clear_dirty();
        Ok(store)
    }

    /// History navigation: "find all versions of object 'AlarmHandler', beginning with version
    /// 2.0".  Returns `(version, snapshot)` pairs for every version ≥ `from` in which the item
    /// was recorded, in version order.
    pub fn versions_of_item(
        &self,
        item: ItemId,
        from: Option<&VersionId>,
    ) -> Vec<(&VersionId, &ItemSnapshot)> {
        let Some(history) = self.histories.get(&item) else { return Vec::new() };
        history.iter().filter(|(v, _)| from.map(|f| *v >= f).unwrap_or(true)).collect()
    }

    /// Total number of item snapshots stored across all versions (the cost of delta storage;
    /// used by benchmarks and tests that compare against full-copy storage).
    pub fn stored_snapshot_count(&self) -> usize {
        self.histories.values().map(|h| h.len()).sum()
    }

    /// Number of versions.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// The creation sequence counter (strictly increasing across version creations; persisted by
    /// the durability layer so that sequence numbers survive restarts).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Exports the manager's full state for persistence: version metadata, per-item histories,
    /// the last-created version and the sequence counter.
    #[allow(clippy::type_complexity)]
    pub fn export_state(
        &self,
    ) -> (Vec<VersionInfo>, Vec<(ItemId, Vec<(VersionId, ItemSnapshot)>)>, Option<VersionId>, u64)
    {
        let versions = self.versions.values().cloned().collect();
        let mut histories: Vec<(ItemId, Vec<(VersionId, ItemSnapshot)>)> = self
            .histories
            .iter()
            .map(|(item, h)| (*item, h.iter().map(|(v, s)| (v.clone(), s.clone())).collect()))
            .collect();
        histories.sort_by_key(|(item, _)| *item);
        (versions, histories, self.last_created.clone(), self.seq)
    }

    /// Rebuilds a manager from state exported with [`VersionManager::export_state`].
    pub fn from_state(
        versions: Vec<VersionInfo>,
        histories: Vec<(ItemId, Vec<(VersionId, ItemSnapshot)>)>,
        last_created: Option<VersionId>,
        seq: u64,
    ) -> Self {
        let mut manager = Self::new();
        for info in versions {
            manager.versions.insert(info.id.clone(), info);
        }
        for (item, entries) in histories {
            let history = manager.histories.entry(item).or_default();
            for (version, snapshot) in entries {
                history.insert(version, snapshot);
            }
        }
        manager.last_created = last_created;
        manager.seq = seq;
        manager
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::ObjectId;
    use crate::name::ObjectName;
    use crate::value::Value;
    use seed_schema::ClassId;

    fn schema_v1() -> SchemaVersionId {
        SchemaVersionId(1)
    }

    fn add_object(store: &mut DataStore, name: &str) -> ObjectId {
        let id = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(id, ClassId(0), ObjectName::root(name), None));
        id
    }

    #[test]
    fn default_version_ids_follow_paper_convention() {
        let mut vm = VersionManager::new();
        let mut store = DataStore::new();
        assert_eq!(vm.next_default_id().to_string(), "1.0");
        vm.create_version(VersionId::initial(), None, schema_v1(), "first", &mut store).unwrap();
        assert_eq!(vm.next_default_id().to_string(), "2.0");
        assert_eq!(vm.next_alternative_id(&VersionId::initial()).to_string(), "1.0.1");
    }

    #[test]
    fn duplicate_or_dangling_versions_rejected() {
        let mut vm = VersionManager::new();
        let mut store = DataStore::new();
        let v10 = VersionId::initial();
        vm.create_version(v10.clone(), None, schema_v1(), "", &mut store).unwrap();
        assert!(vm.create_version(v10.clone(), None, schema_v1(), "", &mut store).is_err());
        let orphan_parent = VersionId::parse("9.0").unwrap();
        assert!(vm
            .create_version(
                VersionId::parse("2.0").unwrap(),
                Some(orphan_parent),
                schema_v1(),
                "",
                &mut store
            )
            .is_err());
    }

    #[test]
    fn delta_storage_records_only_changed_items() {
        let mut vm = VersionManager::new();
        let mut store = DataStore::new();
        let a = add_object(&mut store, "A");
        let _b = add_object(&mut store, "B");
        let v10 = VersionId::initial();
        let info = vm.create_version(v10.clone(), None, schema_v1(), "", &mut store).unwrap();
        assert_eq!(info.delta_size, 2, "first version records everything");

        // Change only A, create 2.0: the delta must contain exactly one item.
        store.update_object(a, |o| o.value = Value::string("changed"));
        let v20 = VersionId::parse("2.0").unwrap();
        let info =
            vm.create_version(v20.clone(), Some(v10.clone()), schema_v1(), "", &mut store).unwrap();
        assert_eq!(info.delta_size, 1);
        assert_eq!(vm.stored_snapshot_count(), 3);
    }

    #[test]
    fn view_reconstruction_follows_greatest_version_rule() {
        let mut vm = VersionManager::new();
        let mut store = DataStore::new();
        let a = add_object(&mut store, "AlarmHandler");
        store.update_object(a, |o| o.value = Value::string("Handles alarms"));
        let v10 = VersionId::initial();
        vm.create_version(v10.clone(), None, schema_v1(), "", &mut store).unwrap();

        store.update_object(a, |o| {
            o.value = Value::string("Handles alarms derived from ProcessData")
        });
        let b = add_object(&mut store, "OperatorAlert");
        let v20 = VersionId::parse("2.0").unwrap();
        vm.create_version(v20.clone(), Some(v10.clone()), schema_v1(), "", &mut store).unwrap();

        // The view of 1.0 sees the old description and no OperatorAlert.
        let view10 = vm.view(&v10).unwrap();
        assert_eq!(
            view10.object_by_name("AlarmHandler").unwrap().value,
            Value::string("Handles alarms")
        );
        assert!(view10.object_by_name("OperatorAlert").is_none());

        // The view of 2.0 sees both.
        let view20 = vm.view(&v20).unwrap();
        assert_eq!(
            view20.object_by_name("AlarmHandler").unwrap().value,
            Value::string("Handles alarms derived from ProcessData")
        );
        assert!(view20.object_by_name("OperatorAlert").is_some());
        let _ = b;
    }

    #[test]
    fn deleted_items_disappear_from_later_views_but_not_earlier_ones() {
        let mut vm = VersionManager::new();
        let mut store = DataStore::new();
        let a = add_object(&mut store, "Obsolete");
        let v10 = VersionId::initial();
        vm.create_version(v10.clone(), None, schema_v1(), "", &mut store).unwrap();
        store.tombstone_object(a);
        let v20 = VersionId::parse("2.0").unwrap();
        vm.create_version(v20.clone(), Some(v10.clone()), schema_v1(), "", &mut store).unwrap();

        assert!(vm.view(&v10).unwrap().object_by_name("Obsolete").is_some());
        assert!(vm.view(&v20).unwrap().object_by_name("Obsolete").is_none());
        assert!(vm.item_in_version(ItemId::Object(a), &v20).is_none());
        assert!(vm.item_in_version(ItemId::Object(a), &v10).is_some());
    }

    #[test]
    fn alternative_branches_order_between_parent_and_next_release() {
        let mut vm = VersionManager::new();
        let mut store = DataStore::new();
        let a = add_object(&mut store, "Design");
        store.update_object(a, |o| o.value = Value::string("v1"));
        let v10 = VersionId::initial();
        vm.create_version(v10.clone(), None, schema_v1(), "", &mut store).unwrap();

        // Alternative 1.0.1 explores a different value.
        store.update_object(a, |o| o.value = Value::string("alternative"));
        let v101 = vm.next_alternative_id(&v10);
        vm.create_version(v101.clone(), Some(v10.clone()), schema_v1(), "", &mut store).unwrap();

        // Mainline continues to 2.0 with yet another value.
        store.update_object(a, |o| o.value = Value::string("v2"));
        let v20 = VersionId::parse("2.0").unwrap();
        vm.create_version(v20.clone(), Some(v10.clone()), schema_v1(), "", &mut store).unwrap();

        assert_eq!(
            vm.view(&v10).unwrap().object_by_name("Design").unwrap().value,
            Value::string("v1")
        );
        assert_eq!(
            vm.view(&v101).unwrap().object_by_name("Design").unwrap().value,
            Value::string("alternative")
        );
        assert_eq!(
            vm.view(&v20).unwrap().object_by_name("Design").unwrap().value,
            Value::string("v2")
        );
        // Version tree structure.
        assert_eq!(vm.children(&v10).len(), 2);
        assert_eq!(vm.roots().len(), 1);
        assert_eq!(vm.info(&v101).unwrap().parent, Some(v10));
    }

    #[test]
    fn history_navigation_from_a_given_version() {
        let mut vm = VersionManager::new();
        let mut store = DataStore::new();
        let a = add_object(&mut store, "AlarmHandler");
        let v10 = VersionId::initial();
        vm.create_version(v10.clone(), None, schema_v1(), "", &mut store).unwrap();
        for (i, text) in ["second", "third", "fourth"].iter().enumerate() {
            store.update_object(a, |o| o.value = Value::string(*text));
            let vid = VersionId::parse(&format!("{}.0", i + 2)).unwrap();
            vm.create_version(
                vid,
                Some(vm.last_created().unwrap().clone()),
                schema_v1(),
                "",
                &mut store,
            )
            .unwrap();
        }
        let all = vm.versions_of_item(ItemId::Object(a), None);
        assert_eq!(all.len(), 4);
        // "find all versions of object 'AlarmHandler', beginning with version 2.0"
        let from20 =
            vm.versions_of_item(ItemId::Object(a), Some(&VersionId::parse("2.0").unwrap()));
        assert_eq!(from20.len(), 3);
        assert_eq!(from20[0].0.to_string(), "2.0");
        assert_eq!(vm.versions_of_item(ItemId::Object(ObjectId(99)), None).len(), 0);
    }

    #[test]
    fn delete_version_removes_its_deltas() {
        let mut vm = VersionManager::new();
        let mut store = DataStore::new();
        let a = add_object(&mut store, "X");
        let v10 = VersionId::initial();
        vm.create_version(v10.clone(), None, schema_v1(), "", &mut store).unwrap();
        store.update_object(a, |o| o.value = Value::string("2.0 state"));
        let v20 = VersionId::parse("2.0").unwrap();
        vm.create_version(v20.clone(), Some(v10.clone()), schema_v1(), "", &mut store).unwrap();
        store.update_object(a, |o| o.value = Value::string("3.0 state"));
        let v30 = VersionId::parse("3.0").unwrap();
        vm.create_version(v30.clone(), Some(v20.clone()), schema_v1(), "", &mut store).unwrap();

        assert_eq!(vm.version_count(), 3);
        vm.delete_version(&v20).unwrap();
        assert_eq!(vm.version_count(), 2);
        assert!(vm.view(&v20).is_err());
        // 3.0 still has its own snapshot of X.
        assert_eq!(
            vm.view(&v30).unwrap().object_by_name("X").unwrap().value,
            Value::string("3.0 state")
        );
        assert!(vm.delete_version(&v20).is_err());
    }

    #[test]
    fn view_of_unknown_version_is_an_error() {
        let vm = VersionManager::new();
        assert!(vm.view(&VersionId::initial()).is_err());
        assert!(vm.info(&VersionId::initial()).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ident::ObjectId;
    use crate::name::ObjectName;
    use crate::value::Value;
    use proptest::prelude::*;
    use seed_schema::ClassId;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Linear edit history: the view of version k must equal the state captured right before
        /// snapshot k was taken, for every k.
        #[test]
        fn views_reproduce_past_states(values in proptest::collection::vec(".{0,12}", 1..8)) {
            let mut vm = VersionManager::new();
            let mut store = DataStore::new();
            let id = store.allocate_object_id();
            store.insert_object(ObjectRecord::new(id, ClassId(0), ObjectName::root("Obj"), None));
            let mut expected: Vec<(VersionId, String)> = Vec::new();
            let mut parent: Option<VersionId> = None;
            for (i, value) in values.iter().enumerate() {
                store.update_object(id, |o| o.value = Value::string(value.clone()));
                let vid = VersionId::new(vec![(i + 1) as u32, 0]).unwrap();
                vm.create_version(vid.clone(), parent.clone(), SchemaVersionId(1), "", &mut store).unwrap();
                expected.push((vid.clone(), value.clone()));
                parent = Some(vid);
            }
            for (vid, value) in &expected {
                let view = vm.view(vid).unwrap();
                prop_assert_eq!(view.object_by_name("Obj").unwrap().value.clone(), Value::string(value.clone()));
            }
            // Delta storage stores exactly one snapshot per version for this single object
            // (plus nothing else), never the full database per version.
            prop_assert_eq!(vm.stored_snapshot_count(), values.len());
            let _ = ObjectId(0);
        }
    }
}
