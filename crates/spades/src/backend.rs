//! The backend-neutral tool interface.
//!
//! SPADES (the tool) is written against this trait; whether the data lives in SEED or in plain
//! data structures is a deployment choice — exactly the architectural move the paper describes
//! ("modifications of the system and integration of new features have become much easier").

use crate::error::SpadesResult;
use crate::model::{ElementInfo, ElementKind, FlowKind};

/// Storage backend for the specification tool.
pub trait SpecBackend {
    /// Human-readable name of the backend (for reports and benchmarks).
    fn backend_name(&self) -> &'static str;

    /// Adds a specification element of the given (possibly vague) kind.
    fn add_element(&mut self, name: &str, kind: ElementKind) -> SpadesResult<()>;

    /// Makes an element's kind more precise (or corrects it laterally within the same family).
    fn refine_element(&mut self, name: &str, kind: ElementKind) -> SpadesResult<()>;

    /// Records a data flow between a data element and an action with the given precision.
    fn add_flow(&mut self, data: &str, action: &str, kind: FlowKind) -> SpadesResult<()>;

    /// Makes an existing flow's kind more precise.
    fn refine_flow(&mut self, data: &str, action: &str, kind: FlowKind) -> SpadesResult<()>;

    /// Sets (or replaces) the description text of an element.
    fn set_description(&mut self, name: &str, text: &str) -> SpadesResult<()>;

    /// Adds a keyword to a data element.
    fn add_keyword(&mut self, name: &str, keyword: &str) -> SpadesResult<()>;

    /// Declares that `inner` (an action) is contained in `outer` (an action).
    fn contain(&mut self, inner: &str, outer: &str) -> SpadesResult<()>;

    /// Deletes an element and everything attached to it.
    fn remove_element(&mut self, name: &str) -> SpadesResult<()>;

    /// Looks an element up.
    fn element(&self, name: &str) -> SpadesResult<ElementInfo>;

    /// All element names, sorted.
    fn element_names(&self) -> Vec<String>;

    /// Number of flows recorded.
    fn flow_count(&self) -> usize;

    /// Number of *incompleteness* findings for the whole specification (0 for backends that
    /// cannot tell — the pre-SEED SPADES could not).
    fn incompleteness_findings(&self) -> usize;

    /// Preserves the current state; returns a backend-specific version label.
    fn checkpoint(&mut self, comment: &str) -> SpadesResult<String>;

    /// Number of stored checkpoints.
    fn checkpoint_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct_backend::DirectBackend;
    use crate::seed_backend::SeedBackend;

    /// Both backends must behave identically on the happy path; the difference the paper talks
    /// about is cost and rigor, not functionality.
    fn exercise(backend: &mut dyn SpecBackend) {
        backend.add_element("Alarms", ElementKind::Thing).unwrap();
        backend.add_element("AlarmHandler", ElementKind::Action).unwrap();
        backend.add_element("ProcessData", ElementKind::InputData).unwrap();
        backend.refine_element("Alarms", ElementKind::Data).unwrap();
        backend.add_flow("Alarms", "AlarmHandler", FlowKind::Access).unwrap();
        backend.add_flow("ProcessData", "AlarmHandler", FlowKind::Read).unwrap();
        backend.refine_element("Alarms", ElementKind::OutputData).unwrap();
        backend.refine_flow("Alarms", "AlarmHandler", FlowKind::Write).unwrap();
        backend.set_description("AlarmHandler", "Handles alarms").unwrap();
        backend.add_keyword("Alarms", "Alarmhandling").unwrap();
        backend.add_keyword("Alarms", "Display").unwrap();
        backend.add_element("OperatorAlert", ElementKind::Action).unwrap();
        backend.contain("OperatorAlert", "AlarmHandler").unwrap();
        let version = backend.checkpoint("first cut").unwrap();
        assert!(!version.is_empty());
        assert_eq!(backend.checkpoint_count(), 1);

        let info = backend.element("Alarms").unwrap();
        assert_eq!(info.kind, ElementKind::OutputData);
        assert_eq!(info.keywords, vec!["Alarmhandling", "Display"]);
        assert!(info
            .flows
            .iter()
            .any(|(d, k, a)| d == "Alarms" && *k == FlowKind::Write && a == "AlarmHandler"));
        let handler = backend.element("AlarmHandler").unwrap();
        assert_eq!(handler.description.as_deref(), Some("Handles alarms"));
        assert_eq!(handler.kind, ElementKind::Action);
        assert_eq!(backend.flow_count(), 2);
        assert_eq!(backend.element_names().len(), 4);
        assert!(backend.element("Ghost").is_err());

        backend.remove_element("OperatorAlert").unwrap();
        assert_eq!(backend.element_names().len(), 3);
    }

    #[test]
    fn seed_backend_supports_the_tool_api() {
        let mut backend = SeedBackend::new();
        exercise(&mut backend);
        // SEED additionally reports incompleteness (e.g. OperatorAlert deleted, AlarmHandler
        // fine, ProcessData read — the remaining findings concern covering/attributes).
        let _ = backend.incompleteness_findings();
    }

    #[test]
    fn direct_backend_supports_the_tool_api() {
        let mut backend = DirectBackend::new();
        exercise(&mut backend);
        assert_eq!(
            backend.incompleteness_findings(),
            0,
            "the pre-SEED tool cannot analyse completeness"
        );
    }
}
