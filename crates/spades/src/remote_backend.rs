//! SPADES over the wire: the tool backed by a [`RemoteClient`] instead of an in-process
//! database.
//!
//! This is the paper's two-level deployment made real: the tool runs on a workstation, the
//! central SEED database runs behind `seed-net`'s TCP server, and every tool operation becomes
//! retrieval (served directly by the server) or a checkout / check-in cycle (write locks,
//! single-transaction apply).  The backend reproduces [`crate::SeedBackend`]'s behaviour
//! byte-for-byte — same dependent-object names, same refinement checks, same report — which
//! `examples/net_demo.rs` verifies by diffing the two specification reports.

use std::cell::RefCell;

use seed_core::{ObjectRecord, SeedError, Value};
use seed_net::RemoteClient;
use seed_server::{SchemaSummary, ServerError, Update};

use crate::backend::SpecBackend;
use crate::error::{SpadesError, SpadesResult};
use crate::model::{ElementInfo, ElementKind, FlowKind};

/// The tool backed by a remote SEED server.
pub struct RemoteBackend {
    client: RefCell<RemoteClient>,
    schema: SchemaSummary,
    checkpoints: usize,
}

fn server_to_spades(e: ServerError) -> SpadesError {
    match e {
        ServerError::Rejected(inner) => SpadesError::Seed(inner),
        other => SpadesError::Seed(SeedError::Invalid(other.to_string())),
    }
}

fn kind_from_class(name: &str) -> ElementKind {
    match name {
        "Thing" => ElementKind::Thing,
        "Data" => ElementKind::Data,
        "InputData" => ElementKind::InputData,
        "OutputData" => ElementKind::OutputData,
        "Action" => ElementKind::Action,
        _ => ElementKind::Thing,
    }
}

fn flow_from_association(name: &str) -> FlowKind {
    match name {
        "Read" => FlowKind::Read,
        "Write" => FlowKind::Write,
        _ => FlowKind::Access,
    }
}

impl RemoteBackend {
    /// Wraps a connected client, fetching the schema summary it needs to interpret records.
    pub fn new(mut client: RemoteClient) -> SpadesResult<Self> {
        let schema = client.schema().map_err(server_to_spades)?;
        Ok(Self { client: RefCell::new(client), schema, checkpoints: 0 })
    }

    /// Hands the connection back (e.g. to close it politely).
    pub fn into_client(self) -> RemoteClient {
        self.client.into_inner()
    }

    fn lookup(&self, name: &str) -> SpadesResult<ObjectRecord> {
        self.client.borrow_mut().retrieve(name).map_err(|_| SpadesError::Unknown(name.to_string()))
    }

    fn kind_of(&self, record: &ObjectRecord) -> ElementKind {
        self.schema.class_name(record.class.0).map(kind_from_class).unwrap_or(ElementKind::Thing)
    }

    /// One tool mutation = one checkout / check-in cycle.  A rejected check-in keeps the locks
    /// server-side for amendment; the tool has nothing to amend, so it releases them.
    fn transact(&self, lock: &[&str], updates: Vec<Update>) -> SpadesResult<()> {
        let mut client = self.client.borrow_mut();
        if !lock.is_empty() {
            client.checkout(lock).map_err(server_to_spades)?;
        }
        match client.checkin(updates) {
            Ok(()) => Ok(()),
            Err(e) => {
                if !lock.is_empty() {
                    let _ = client.release();
                }
                Err(server_to_spades(e))
            }
        }
    }

    /// Like [`RemoteBackend::transact`], but the update batch is built **after** the checkout:
    /// reads that predict server-assigned names (auto-indexed dependents) must happen under the
    /// write locks, or a racing client could shift the prediction between read and apply.
    fn transact_locked(
        &self,
        lock: &[&str],
        build: impl FnOnce(&Self) -> SpadesResult<Vec<Update>>,
    ) -> SpadesResult<()> {
        self.client.borrow_mut().checkout(lock).map_err(server_to_spades)?;
        let updates = match build(self) {
            Ok(updates) => updates,
            Err(e) => {
                let _ = self.client.borrow_mut().release();
                return Err(e);
            }
        };
        match self.client.borrow_mut().checkin(updates) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = self.client.borrow_mut().release();
                Err(server_to_spades(e))
            }
        }
    }

    /// The name segment the server will give the next auto-named `class_local` dependent of
    /// `parent` — plain when at most one may exist, `Name[n]` otherwise (mirrors
    /// [`seed_core::Database::create_dependent`]).
    fn predicted_segment(&self, parent: &ObjectRecord, class_local: &str) -> SpadesResult<String> {
        let class = self.schema.dependent_class(parent.class.0, class_local).ok_or_else(|| {
            SpadesError::Seed(SeedError::Invalid(format!(
                "no dependent class '{class_local}' for '{}'",
                parent.name
            )))
        })?;
        if self.schema.classes[class as usize].occurrence_max == Some(1) {
            return Ok(class_local.to_string());
        }
        let siblings = self
            .client
            .borrow_mut()
            .children(&parent.name.to_string())
            .map_err(server_to_spades)?
            .into_iter()
            .filter(|c| c.class.0 == class)
            .count();
        Ok(format!("{class_local}[{siblings}]"))
    }

    fn description_child(&self, name: &str) -> SpadesResult<Option<ObjectRecord>> {
        Ok(self
            .client
            .borrow_mut()
            .children(name)
            .map_err(server_to_spades)?
            .into_iter()
            .find(|c| c.name.leaf().name == "Description"))
    }

    /// Finds the flow relationship between `data` and `action`, returning its association name
    /// and bindings (the structural address used for re-classification).
    fn flow_relationship(
        &self,
        data: &str,
        action: &str,
    ) -> SpadesResult<Option<seed_server::RelationshipInfo>> {
        let hierarchy = self.schema.association_hierarchy("Access");
        Ok(self
            .client
            .borrow_mut()
            .relationships_of(data)
            .map_err(server_to_spades)?
            .into_iter()
            .find(|rel| {
                hierarchy.contains(&rel.association) && rel.involves(data) && rel.involves(action)
            }))
    }
}

impl SpecBackend for RemoteBackend {
    fn backend_name(&self) -> &'static str {
        "SPADES on SEED over TCP"
    }

    fn add_element(&mut self, name: &str, kind: ElementKind) -> SpadesResult<()> {
        if self.lookup(name).is_ok() {
            return Err(SpadesError::Duplicate(name.to_string()));
        }
        self.transact(
            &[],
            vec![Update::CreateObject { class: kind.class_name().to_string(), name: name.into() }],
        )
    }

    fn refine_element(&mut self, name: &str, kind: ElementKind) -> SpadesResult<()> {
        let record = self.lookup(name)?;
        let current = self.kind_of(&record);
        if !current.can_refine_to(kind) {
            return Err(SpadesError::InvalidRefinement(format!(
                "'{name}' is {current} and cannot become {kind}"
            )));
        }
        self.transact(
            &[name],
            vec![Update::Reclassify {
                object: name.to_string(),
                new_class: kind.class_name().to_string(),
            }],
        )
    }

    fn add_flow(&mut self, data: &str, action: &str, kind: FlowKind) -> SpadesResult<()> {
        self.lookup(data)?;
        self.lookup(action)?;
        let assoc = kind.association_name();
        let role0 =
            self.schema.association(assoc).and_then(|a| a.roles.first().cloned()).ok_or_else(
                || SpadesError::Seed(SeedError::Invalid(format!("unknown association '{assoc}'"))),
            )?;
        self.transact(
            &[data, action],
            vec![Update::CreateRelationship {
                association: assoc.to_string(),
                bindings: vec![(role0, data.to_string()), ("by".to_string(), action.to_string())],
            }],
        )
    }

    fn refine_flow(&mut self, data: &str, action: &str, kind: FlowKind) -> SpadesResult<()> {
        self.lookup(data)?;
        self.lookup(action)?;
        let rel = self
            .flow_relationship(data, action)?
            .ok_or_else(|| SpadesError::Unknown(format!("flow between '{data}' and '{action}'")))?;
        let current = flow_from_association(&rel.association);
        if !current.can_refine_to(kind) {
            return Err(SpadesError::InvalidRefinement(format!(
                "flow '{data}'–'{action}' is {current} and cannot become {kind}"
            )));
        }
        self.transact(
            &[data, action],
            vec![Update::ReclassifyRelationship {
                association: rel.association,
                bindings: rel.bindings,
                new_association: kind.association_name().to_string(),
            }],
        )
    }

    fn set_description(&mut self, name: &str, text: &str) -> SpadesResult<()> {
        self.lookup(name)?;
        // Build the batch under the checkout lock: which child exists and which Text segment
        // the server will assign must not change between the read and the check-in.
        self.transact_locked(&[name], |this| {
            let record = this.lookup(name)?;
            if let Some(existing) = this.description_child(name)? {
                return Ok(vec![Update::SetValue {
                    object: existing.name.to_string(),
                    value: Value::string(text),
                }]);
            }
            if this.kind_of(&record) == ElementKind::Action {
                return Ok(vec![Update::CreateDependentNamed {
                    parent: name.to_string(),
                    class_local: "Description".to_string(),
                    name: "Description".to_string(),
                    value: Value::string(text),
                }]);
            }
            // Data keeps its text under Text.Body.Contents; predict the auto-assigned Text
            // segment so the follow-up creations can address it within the same batch.
            let segment = this.predicted_segment(&record, "Text")?;
            let text_name = format!("{name}.{segment}");
            Ok(vec![
                Update::CreateDependent {
                    parent: name.to_string(),
                    class_local: "Text".to_string(),
                    value: Value::Undefined,
                },
                Update::CreateDependentNamed {
                    parent: text_name.clone(),
                    class_local: "Body".to_string(),
                    name: "Body".to_string(),
                    value: Value::Undefined,
                },
                Update::CreateDependentNamed {
                    parent: format!("{text_name}.Body"),
                    class_local: "Contents".to_string(),
                    name: "Contents".to_string(),
                    value: Value::text(text),
                },
            ])
        })
    }

    fn add_keyword(&mut self, name: &str, keyword: &str) -> SpadesResult<()> {
        self.lookup(name)?;
        self.transact_locked(&[name], |this| {
            let record = this.lookup(name)?;
            let mut updates = Vec::new();
            let text_child = this
                .client
                .borrow_mut()
                .children(name)
                .map_err(server_to_spades)?
                .into_iter()
                .find(|c| c.name.leaf().name == "Text");
            let text_name = match text_child {
                Some(t) => t.name.to_string(),
                None => {
                    let segment = this.predicted_segment(&record, "Text")?;
                    updates.push(Update::CreateDependent {
                        parent: name.to_string(),
                        class_local: "Text".to_string(),
                        value: Value::Undefined,
                    });
                    format!("{name}.{segment}")
                }
            };
            let body_name = if updates.is_empty() {
                let body_child = this
                    .client
                    .borrow_mut()
                    .children(&text_name)
                    .map_err(server_to_spades)?
                    .into_iter()
                    .find(|c| c.name.leaf().name == "Body");
                match body_child {
                    Some(b) => b.name.to_string(),
                    None => {
                        updates.push(Update::CreateDependentNamed {
                            parent: text_name.clone(),
                            class_local: "Body".to_string(),
                            name: "Body".to_string(),
                            value: Value::Undefined,
                        });
                        format!("{text_name}.Body")
                    }
                }
            } else {
                // The Text spine is being created in this very batch; Body follows it.
                updates.push(Update::CreateDependentNamed {
                    parent: text_name.clone(),
                    class_local: "Body".to_string(),
                    name: "Body".to_string(),
                    value: Value::Undefined,
                });
                format!("{text_name}.Body")
            };
            updates.push(Update::CreateDependent {
                parent: body_name,
                class_local: "Keywords".to_string(),
                value: Value::string(keyword),
            });
            Ok(updates)
        })
    }

    fn contain(&mut self, inner: &str, outer: &str) -> SpadesResult<()> {
        self.lookup(inner)?;
        self.lookup(outer)?;
        self.transact(
            &[inner, outer],
            vec![Update::CreateRelationship {
                association: "Contained".to_string(),
                bindings: vec![
                    ("in".to_string(), inner.to_string()),
                    ("container".to_string(), outer.to_string()),
                ],
            }],
        )
    }

    fn remove_element(&mut self, name: &str) -> SpadesResult<()> {
        self.lookup(name)?;
        self.transact(&[name], vec![Update::DeleteObject { object: name.to_string() }])
    }

    fn element(&self, name: &str) -> SpadesResult<ElementInfo> {
        let record = self.lookup(name)?;
        let kind = self.kind_of(&record);
        let description = match self.description_child(name)? {
            Some(d) if !d.value.is_undefined() => d.value.as_str().map(|s| s.to_string()),
            _ => self
                .client
                .borrow_mut()
                .objects_with_prefix(&format!("{name}.Text"))
                .map_err(server_to_spades)?
                .into_iter()
                .find(|o| o.name.leaf().name == "Contents")
                .and_then(|o| o.value.as_str().map(|s| s.to_string())),
        };
        let mut keywords: Vec<String> = self
            .client
            .borrow_mut()
            .objects_with_prefix(&format!("{name}."))
            .map_err(server_to_spades)?
            .into_iter()
            .filter(|o| o.name.leaf().name == "Keywords")
            .filter_map(|o| o.value.as_str().map(|s| s.to_string()))
            .collect();
        keywords.sort();
        let hierarchy = self.schema.association_hierarchy("Access");
        let mut flows = Vec::new();
        for rel in self.client.borrow_mut().relationships_of(name).map_err(server_to_spades)? {
            if !hierarchy.contains(&rel.association) {
                continue;
            }
            let kind = flow_from_association(&rel.association);
            if let (Some((_, data)), Some((_, action))) =
                (rel.bindings.first(), rel.bindings.get(1))
            {
                flows.push((data.clone(), kind, action.clone()));
            }
        }
        flows.sort();
        Ok(ElementInfo { name: name.to_string(), kind, description, keywords, flows })
    }

    fn element_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .client
            .borrow_mut()
            .objects_of_class("Thing", true)
            .unwrap_or_default()
            .into_iter()
            .map(|o| o.name.to_string())
            .collect();
        names.sort();
        names
    }

    fn flow_count(&self) -> usize {
        self.client.borrow_mut().relationship_count("Access", true).unwrap_or(0)
    }

    fn incompleteness_findings(&self) -> usize {
        self.client.borrow_mut().completeness_count().unwrap_or(0)
    }

    fn checkpoint(&mut self, comment: &str) -> SpadesResult<String> {
        let version = self.client.borrow_mut().create_version(comment).map_err(server_to_spades)?;
        self.checkpoints += 1;
        Ok(version.to_string())
    }

    fn checkpoint_count(&self) -> usize {
        self.checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::specification_report;
    use crate::seed_backend::SeedBackend;
    use crate::workload::{Workload, WorkloadConfig};
    use seed_net::SeedNetServer;
    use seed_schema::figure3_schema;
    use seed_server::SeedServer;

    fn remote_backend() -> (SeedNetServer, RemoteBackend) {
        let server = SeedNetServer::bind(
            SeedServer::new(seed_core::Database::new(figure3_schema())),
            "127.0.0.1:0",
        )
        .unwrap();
        let client = RemoteClient::connect(server.local_addr()).unwrap();
        let backend = RemoteBackend::new(client).unwrap();
        (server, backend)
    }

    /// The acceptance bar of PR 4: the same workload through the remote backend and the
    /// in-process backend must produce byte-identical results — same element names, flows,
    /// keywords, descriptions, findings, same rendered report (modulo the backend label).
    #[test]
    fn workload_results_are_byte_identical_to_the_in_process_path() {
        let workload = Workload::generate(&WorkloadConfig {
            data_elements: 8,
            actions: 4,
            checkpoint_every: 20,
            ..WorkloadConfig::default()
        });

        let mut local = SeedBackend::new();
        assert_eq!(workload.apply(&mut local), 0);

        let (server, mut remote) = remote_backend();
        assert_eq!(workload.apply(&mut remote), 0, "remote path must reject nothing extra");

        assert_eq!(remote.element_names(), local.element_names());
        assert_eq!(remote.flow_count(), local.flow_count());
        assert_eq!(remote.incompleteness_findings(), local.incompleteness_findings());
        assert_eq!(remote.checkpoint_count(), local.checkpoint_count());
        for name in local.element_names() {
            assert_eq!(
                remote.element(&name).unwrap(),
                local.element(&name).unwrap(),
                "element '{name}' must match across the wire"
            );
        }
        let local_report = specification_report(&local);
        let remote_report =
            specification_report(&remote).replace(remote.backend_name(), local.backend_name());
        assert_eq!(remote_report, local_report, "reports must be byte-identical");

        // After a disconnect-free run no locks linger.
        assert_eq!(server.core().locked_count(), 0);
        remote.into_client().close().unwrap();
        server.shutdown();
    }

    #[test]
    fn remote_refinement_and_duplicate_checks_mirror_the_tool_rules() {
        let (server, mut remote) = remote_backend();
        remote.add_element("Alarms", ElementKind::Data).unwrap();
        remote.add_element("Sensor", ElementKind::Action).unwrap();
        assert!(matches!(
            remote.add_element("Sensor", ElementKind::Action),
            Err(SpadesError::Duplicate(_))
        ));
        assert!(matches!(
            remote.refine_element("Sensor", ElementKind::Data),
            Err(SpadesError::InvalidRefinement(_))
        ));
        assert!(remote.refine_element("Ghost", ElementKind::Data).is_err());
        remote.add_flow("Alarms", "Sensor", FlowKind::Access).unwrap();
        // Write needs OutputData: SEED's consistency checker rejects it over the wire too, and
        // the rejection arrives as a SEED error.
        let err = remote.refine_flow("Alarms", "Sensor", FlowKind::Write).unwrap_err();
        assert!(matches!(err, SpadesError::Seed(_)));
        remote.refine_element("Alarms", ElementKind::OutputData).unwrap();
        remote.refine_flow("Alarms", "Sensor", FlowKind::Write).unwrap();
        let info = remote.element("Alarms").unwrap();
        assert_eq!(info.flows[0].1, FlowKind::Write);
        // A failed transaction leaves no locks behind.
        assert_eq!(server.core().locked_count(), 0);
        server.shutdown();
    }

    #[test]
    fn remote_descriptions_and_keywords_build_the_figure1_spine() {
        let (server, mut remote) = remote_backend();
        remote.add_element("Alarms", ElementKind::Data).unwrap();
        remote.set_description("Alarms", "alarm display matrix").unwrap();
        remote.add_keyword("Alarms", "Alarmhandling").unwrap();
        remote.add_keyword("Alarms", "Display").unwrap();
        let info = remote.element("Alarms").unwrap();
        assert_eq!(info.description.as_deref(), Some("alarm display matrix"));
        assert_eq!(info.keywords, vec!["Alarmhandling", "Display"]);
        // Keywords on a fresh element create the whole Text/Body spine in one transaction.
        remote.add_element("Pumps", ElementKind::Data).unwrap();
        remote.add_keyword("Pumps", "Hydraulics").unwrap();
        assert_eq!(remote.element("Pumps").unwrap().keywords, vec!["Hydraulics"]);
        // Action descriptions update in place.
        remote.add_element("Sensor", ElementKind::Action).unwrap();
        remote.set_description("Sensor", "v1").unwrap();
        remote.set_description("Sensor", "v2").unwrap();
        assert_eq!(remote.element("Sensor").unwrap().description.as_deref(), Some("v2"));
        server.shutdown();
    }
}
