//! # seed-bench
//!
//! Benchmark harness of the SEED reproduction.
//!
//! The 1986 paper has no quantitative tables; its evaluation is the experience of running SPADES
//! on SEED ("considerably slower, but much more flexible") plus the design decisions the text
//! motivates (consistency checking on every update, delta-based version storage, pattern
//! propagation, re-classification, retrieval by name).  Each benchmark in `benches/` regenerates
//! one row of `EXPERIMENTS.md`; the [`report`] module prints the same rows quickly (without
//! Criterion's statistics) via `cargo run -p seed-bench --release`.
//!
//! The helpers in this crate build databases and workloads of controlled size so that the
//! Criterion benches and the quick report measure exactly the same scenarios.

pub mod report;
pub mod scenarios;

pub use report::{run_report, run_report_mode, ExperimentMetrics};
pub use scenarios::*;
