//! Incremental durability: per-item write-through persistence over the WAL.
//!
//! [`Database::open_durable`] returns a database whose mutation paths stage fine-grained
//! per-item records (see [`crate::codec`] for the key layout) into a storage transaction that
//! commits at the mutation's commit point:
//!
//! * outside an explicit transaction, every successful mutation **auto-commits** — one storage
//!   transaction, one batched WAL write, one sync — so the durable cost of a commit is
//!   O(items touched), not O(database);
//! * inside [`Database::begin_transaction`] … [`Database::commit_transaction`], all staged
//!   records ride in **one** storage transaction that commits (or, on
//!   [`Database::rollback_transaction`], aborts) in lockstep with the in-memory undo log;
//! * version creation writes the version's delta snapshots (`v/<vid>/…`), its metadata record
//!   (`vi/<vid>`) and the drained dirty markers in the same commit;
//! * loading is a keyed range scan per record kind plus an in-memory index rebuild — no
//!   whole-database blob decoding — and legacy blob databases (the [`crate::persist`] layout)
//!   are detected and migrated on open.
//!
//! Crash contract: dropping the database (or the process) without a checkpoint loses nothing
//! that was committed — recovery replays the storage WAL, which holds only complete
//! transactions (group commit writes a transaction's frames as one batch).  A crash
//! mid-transaction leaves no trace: neither the WAL (nothing is written before commit) nor the
//! per-item keys (the storage transaction never committed).  `docs/DURABILITY.md` specifies the
//! layout and the contract in full.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use seed_schema::SchemaRegistry;
use seed_storage::{StorageEngine, TxnId};

use crate::codec;
use crate::database::Database;
use crate::error::{SeedError, SeedResult};
use crate::history::TransitionRule;
use crate::ident::{ItemId, VersionId};
use crate::store::DataStore;
use crate::version::{ItemSnapshot, VersionManager};

/// The write-through handle a durable [`Database`] carries: the storage engine plus the storage
/// transaction mirroring the database's explicit transaction, when one is open.
pub(crate) struct Durability {
    pub(crate) engine: StorageEngine,
    pub(crate) txn: Option<TxnId>,
}

impl Durability {
    /// The storage transaction to stage into: the mirrored explicit transaction when one is
    /// open, otherwise a fresh auto-commit transaction (`true` = caller must commit it).
    pub(crate) fn stage_txn(&self) -> SeedResult<(TxnId, bool)> {
        match self.txn {
            Some(txn) => Ok((txn, false)),
            None => Ok((self.engine.begin()?, true)),
        }
    }
}

/// A snapshot of a durable database's storage state (surfaced over the server protocol so that
/// clients can observe restart recovery).
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityStatus {
    /// Directory holding the storage engine's files.
    pub path: PathBuf,
    /// Bytes currently in the WAL (recovery replay work is proportional to this).
    pub wal_bytes: u64,
    /// Number of keys in the per-item store.
    pub keys: usize,
}

/// Stages the current state of one item: a put of its record (objects travel with their
/// inherits-links) or a delete when the item was physically removed, plus its dirty marker.
pub(crate) fn stage_item(
    engine: &StorageEngine,
    txn: TxnId,
    store: &DataStore,
    item: ItemId,
) -> SeedResult<()> {
    match item {
        ItemId::Object(id) => match store.object(id) {
            Some(record) => {
                let inherits = store.inherited_patterns(id);
                engine.txn_put(
                    txn,
                    &codec::object_key(id),
                    &codec::encode_object_entry(record, &inherits),
                )?;
            }
            None => engine.txn_delete(txn, &codec::object_key(id))?,
        },
        ItemId::Relationship(id) => match store.relationship(id) {
            Some(record) => engine.txn_put(
                txn,
                &codec::relationship_key(id),
                &codec::encode_relationship_entry(record),
            )?,
            None => engine.txn_delete(txn, &codec::relationship_key(id))?,
        },
    }
    // The on-disk dirty markers mirror the in-memory dirty set, so that a reopened database
    // still knows which items the next version snapshot must record.
    if store.dirty_items().contains(&item) {
        engine.txn_put(txn, &codec::dirty_key(item), b"")?;
    } else {
        engine.txn_delete(txn, &codec::dirty_key(item))?;
    }
    Ok(())
}

/// Stages the small `meta` record from the database's current state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage_meta(
    engine: &StorageEngine,
    txn: TxnId,
    schemas: &SchemaRegistry,
    store: &DataStore,
    versions: &VersionManager,
    rules: &[TransitionRule],
    epoch: u64,
    fenced_to: Option<&str>,
) -> SeedResult<()> {
    let (object_floor, relationship_floor) = store.id_floor();
    let meta = codec::MetaRecord {
        format: codec::FORMAT_VERSION,
        object_floor,
        relationship_floor,
        current_schema: schemas.current_id(),
        rules: rules.to_vec(),
        last_created: versions.last_created().cloned(),
        version_seq: versions.seq(),
        epoch,
        fenced_to: fenced_to.map(str::to_string),
    };
    engine.txn_put(txn, codec::KEY_META, &codec::encode_meta(&meta))?;
    Ok(())
}

/// Stages **every** record of the database into `txn` — the migration path that rewrites a
/// legacy blob database in the per-item layout (and the initial write of a fresh durable
/// database).
pub(crate) fn write_full(db: &Database, engine: &StorageEngine, txn: TxnId) -> SeedResult<()> {
    let (schemas, store, versions, rules) = db.parts();
    for svid in schemas.version_ids() {
        engine.txn_put(
            txn,
            &codec::schema_key(svid),
            &codec::encode_schema_entry(schemas.get(svid)?),
        )?;
    }
    let mut objects: Vec<_> = store.all_objects().collect();
    objects.sort_by_key(|o| o.id);
    for record in objects {
        let inherits = store.inherited_patterns(record.id);
        engine.txn_put(
            txn,
            &codec::object_key(record.id),
            &codec::encode_object_entry(record, &inherits),
        )?;
    }
    let mut rels: Vec<_> = store.all_relationships().collect();
    rels.sort_by_key(|r| r.id);
    for record in rels {
        engine.txn_put(
            txn,
            &codec::relationship_key(record.id),
            &codec::encode_relationship_entry(record),
        )?;
    }
    let (infos, histories, _, _) = versions.export_state();
    for info in &infos {
        engine.txn_put(
            txn,
            &codec::version_info_key(&info.id),
            &codec::encode_version_info(info),
        )?;
    }
    for (item, entries) in &histories {
        for (vid, snapshot) in entries {
            engine.txn_put(
                txn,
                &codec::version_delta_key(vid, *item),
                &codec::encode_snapshot(snapshot),
            )?;
        }
    }
    let mut dirty: Vec<ItemId> = store.dirty_items().iter().copied().collect();
    dirty.sort();
    for item in dirty {
        engine.txn_put(txn, &codec::dirty_key(item), b"")?;
    }
    stage_meta(engine, txn, schemas, store, versions, rules, db.topology_epoch(), db.fenced_to())?;
    Ok(())
}

/// Reads and decodes the `meta` record.
pub(crate) fn load_meta(engine: &StorageEngine) -> SeedResult<codec::MetaRecord> {
    let meta_bytes = engine
        .get(codec::KEY_META)?
        .ok_or_else(|| SeedError::NotFound("missing key 'meta'".to_string()))?;
    codec::decode_meta(&meta_bytes)
}

/// Rebuilds the schema registry from one ordered `s/` range scan (`s/` keys sort by schema
/// version id).  Factored out of [`load_keyed`] so the replica's incremental apply can rescan
/// exactly one record kind when a batch ships schema changes.
pub(crate) fn load_schemas(
    engine: &StorageEngine,
    current: seed_schema::SchemaVersionId,
) -> SeedResult<SchemaRegistry> {
    let mut schemas = Vec::new();
    for (_, bytes) in engine.scan_prefix(codec::PREFIX_SCHEMA)? {
        schemas.push(codec::decode_schema_entry(&bytes)?);
    }
    if schemas.is_empty() {
        return Err(SeedError::Invalid("persisted database has no schema".to_string()));
    }
    let mut iter = schemas.into_iter();
    let mut registry = SchemaRegistry::new(iter.next().expect("non-empty"));
    for schema in iter {
        registry.publish(schema);
    }
    registry.select(current)?;
    Ok(registry)
}

/// Rebuilds the version manager from the `vi/` and `v/` ranges.  Factored out of
/// [`load_keyed`] for the same reason as [`load_schemas`]: version-creating batches are rare,
/// and when one arrives the replica rescans only these two ranges.
pub(crate) fn load_versions(
    engine: &StorageEngine,
    meta: &codec::MetaRecord,
) -> SeedResult<VersionManager> {
    let mut infos = Vec::new();
    for (_, bytes) in engine.scan_prefix(codec::PREFIX_VERSION_INFO)? {
        infos.push(codec::decode_version_info(&bytes)?);
    }
    let mut histories: HashMap<ItemId, Vec<(VersionId, ItemSnapshot)>> = HashMap::new();
    for (key, bytes) in engine.scan_prefix(codec::PREFIX_VERSION_DELTA)? {
        let (vid, item) = codec::parse_version_delta_key(&key)?;
        histories.entry(item).or_default().push((vid, codec::decode_snapshot(&bytes)?));
    }
    let mut histories: Vec<(ItemId, Vec<(VersionId, ItemSnapshot)>)> =
        histories.into_iter().collect();
    histories.sort_by_key(|(item, _)| *item);
    Ok(VersionManager::from_state(infos, histories, meta.last_created.clone(), meta.version_seq))
}

/// Loads a database from the per-item layout: one ordered scan per record kind, then an
/// in-memory index rebuild (the store's secondary indexes are reconstructed by the inserts).
pub(crate) fn load_keyed(engine: &StorageEngine) -> SeedResult<Database> {
    let meta = load_meta(engine)?;
    let registry = load_schemas(engine, meta.current_schema)?;

    // Data store: objects (with their inherits-links), then relationships.
    let mut store = DataStore::new();
    let mut inherits_links = Vec::new();
    for (_, bytes) in engine.scan_prefix(codec::PREFIX_OBJECT)? {
        let (record, inherits) = codec::decode_object_entry(&bytes)?;
        let id = record.id;
        store.insert_object(record);
        for pattern in inherits {
            inherits_links.push((id, pattern));
        }
    }
    for (_, bytes) in engine.scan_prefix(codec::PREFIX_RELATIONSHIP)? {
        store.insert_relationship(codec::decode_relationship_entry(&bytes)?);
    }
    for (inheritor, pattern) in inherits_links {
        store.add_inherits(inheritor, pattern);
    }

    // Version manager: metadata records plus per-version delta snapshots.
    let versions = load_versions(engine, &meta)?;

    // Id floors and the dirty set (the inserts above marked everything dirty; the real dirty
    // set is the persisted one).
    store.raise_id_floor(meta.object_floor, meta.relationship_floor);
    store.clear_dirty();
    let mut dirty = Vec::new();
    for (key, _) in engine.scan_prefix(codec::PREFIX_DIRTY)? {
        dirty.push(codec::parse_dirty_key(&key)?);
    }
    store.mark_dirty_bulk(&dirty);

    let mut db = Database::from_parts(registry, store, versions, meta.rules);
    db.set_topology(meta.epoch, meta.fenced_to);
    Ok(db)
}

/// Whether `engine` holds a legacy blob-layout database (the pre-write-through format).
pub(crate) fn is_legacy_layout(engine: &StorageEngine) -> SeedResult<bool> {
    Ok(engine.contains(b"seed/schema")?)
}

/// Whether `engine` holds a per-item-layout database.
pub(crate) fn is_keyed_layout(engine: &StorageEngine) -> SeedResult<bool> {
    Ok(engine.contains(codec::KEY_META)?)
}

/// Migrates a legacy blob database in `engine` to the per-item layout: decode the blobs, write
/// every per-item record and delete the blobs in one storage transaction, then checkpoint.
pub(crate) fn migrate_legacy(engine: &StorageEngine) -> SeedResult<Database> {
    let db = crate::persist::load(engine)?;
    let txn = engine.begin()?;
    write_full(&db, engine, txn)?;
    for (key, _) in engine.scan_prefix(crate::persist::BLOB_PREFIX)? {
        engine.txn_delete(txn, &key)?;
    }
    engine.commit(txn)?;
    engine.checkpoint()?;
    Ok(db)
}

/// Opens the storage engine for a durable database directory.
pub(crate) fn open_engine(dir: impl AsRef<Path>) -> SeedResult<StorageEngine> {
    Ok(StorageEngine::open(dir)?)
}

/// Opens the storage engine with an explicit configuration (segment cap, retention budget,
/// checkpoint threshold) — the tuning surface [`Database::open_durable_with`] exposes.
pub(crate) fn open_engine_with(
    dir: impl AsRef<Path>,
    config: seed_storage::EngineConfig,
) -> SeedResult<StorageEngine> {
    Ok(StorageEngine::open_with(dir, config)?)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A fresh, empty temp directory for one durable-database test.
    pub(crate) fn temp_dir(name: &str) -> PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir()
            .join(format!("seed-durable-test-{}-{name}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Structural equality of two databases: records, links, versions, rules and floors.
    /// `strict` is off for crash points inside an open transaction, where the recovered dirty
    /// set may legitimately be a subset (rolled-back items are clean on disk) and the id floors
    /// may be lower (ids allocated by the lost transaction never became durable and are safely
    /// reusable).
    pub(crate) fn assert_same_state(a: &Database, b: &Database, strict: bool) {
        let sorted_objects = |db: &Database| {
            let mut v: Vec<_> = db.store().all_objects().cloned().collect();
            v.sort_by_key(|o| o.id);
            v
        };
        let sorted_rels = |db: &Database| {
            let mut v: Vec<_> = db.store().all_relationships().cloned().collect();
            v.sort_by_key(|r| r.id);
            v
        };
        assert_eq!(sorted_objects(a), sorted_objects(b), "object records differ");
        assert_eq!(sorted_rels(a), sorted_rels(b), "relationship records differ");
        assert_eq!(
            a.store().all_inherits_links(),
            b.store().all_inherits_links(),
            "inherits links differ"
        );
        let infos = |db: &Database| -> Vec<crate::version::VersionInfo> {
            db.versions().into_iter().cloned().collect()
        };
        assert_eq!(infos(a), infos(b), "version metadata differs");
        assert_eq!(a.transition_rules(), b.transition_rules(), "transition rules differ");
        assert_eq!(a.schema(), b.schema(), "current schema differs");
        if strict {
            assert_eq!(a.store().id_floor(), b.store().id_floor(), "id floors differ");
            let dirty = |db: &Database| {
                let mut v: Vec<ItemId> = db.store().dirty_items().iter().copied().collect();
                v.sort();
                v
            };
            assert_eq!(dirty(a), dirty(b), "dirty sets differ");
        }
        // Index rebuild: every live object is reachable through the rebuilt name index.
        for record in a.store().all_objects().filter(|o| !o.deleted) {
            assert_eq!(
                a.store().object_by_name(&record.name.to_string()).map(|o| o.id),
                Some(record.id),
                "name index misses '{}'",
                record.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{assert_same_state, temp_dir};
    use super::*;
    use crate::index::ValueOp;
    use crate::value::Value;
    use seed_schema::{figure2_schema, figure3_schema};

    #[test]
    fn create_mutate_reopen_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        assert!(db.is_durable());
        assert_eq!(db.durable_path().unwrap(), dir.as_path());
        let alarms = db.create_object("Thing", "Alarms").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.reclassify_object(alarms, "OutputData").unwrap();
        let rel = db.create_relationship("Write", &[("to", alarms), ("by", sensor)]).unwrap();
        db.set_relationship_attribute(rel, "NumberOfWrites", Value::Integer(2)).unwrap();
        let desc = db.create_dependent(sensor, "Description", Value::string("reads")).unwrap();
        db.rename_object(sensor, "MainSensor").unwrap();

        // Simulated crash: no checkpoint, no close — recovery comes from the WAL.
        drop(db);
        let recovered = Database::open_durable(&dir).unwrap();
        assert_eq!(recovered.object_count(), 3);
        assert_eq!(recovered.relationship_count(), 1);
        assert_eq!(recovered.object_by_name("MainSensor.Description").unwrap().id, desc);
        assert_eq!(
            recovered.relationship(rel).unwrap().attributes.get("NumberOfWrites"),
            Some(&Value::Integer(2))
        );
        // The value index was rebuilt from the keyed scan.
        let hits =
            recovered.objects_by_value("Action.Description", true, ValueOp::Eq, "reads").unwrap();
        assert_eq!(hits.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_durable_requires_existing_database_and_create_rejects_existing() {
        let dir = temp_dir("guards");
        assert!(matches!(Database::open_durable(&dir), Err(SeedError::NotFound(_))));
        let db = Database::create_durable(&dir, figure2_schema()).unwrap();
        drop(db);
        assert!(matches!(
            Database::create_durable(&dir, figure2_schema()),
            Err(SeedError::Invalid(_))
        ));
        assert!(Database::open_durable(&dir).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_transaction_is_one_storage_transaction() {
        let dir = temp_dir("txn");
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        db.create_object("Data", "Kept").unwrap();

        // Committed transaction: all staged records become durable together.
        db.begin_transaction().unwrap();
        let a = db.create_object("Data", "InTxn").unwrap();
        db.set_value(db.object_by_name("InTxn").unwrap().id, Value::Undefined).unwrap();
        db.create_object("Action", "AlsoInTxn").unwrap();
        db.commit_transaction().unwrap();
        let _ = a;

        // Rolled-back transaction: the storage transaction aborts in lockstep.
        db.begin_transaction().unwrap();
        db.create_object("Data", "RolledBack").unwrap();
        db.rollback_transaction().unwrap();

        drop(db);
        let recovered = Database::open_durable(&dir).unwrap();
        assert!(recovered.object_by_name("InTxn").is_ok());
        assert!(recovered.object_by_name("AlsoInTxn").is_ok());
        assert!(recovered.object_by_name("RolledBack").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_transactional_ops_survive_a_rolled_back_transaction() {
        // `publish_schema` and `delete_version` take effect in memory immediately and are not
        // undoable, so their durable records must commit independently of the open transaction
        // — staging them into it would desynchronize disk from memory on rollback (a meta
        // record pointing at a never-written schema version makes the directory unopenable).
        let dir = temp_dir("non-txn-ops");
        let mut db = Database::create_durable(&dir, figure2_schema()).unwrap();
        db.create_object("Data", "Keep").unwrap();
        let v1 = db.create_version("one").unwrap();
        db.create_object("Data", "Churn").unwrap();
        let v2 = db.create_version("two").unwrap();

        db.begin_transaction().unwrap();
        db.create_object("Data", "RolledBack").unwrap();
        let published = db.publish_schema(figure3_schema()).unwrap();
        db.delete_version(&v1).unwrap();
        db.rollback_transaction().unwrap();

        // In memory: the schema is published and v1 is gone, the object is not.
        assert_eq!(db.schema().name, "Figure3");
        assert!(db.version_info(&v1).is_err());
        assert!(db.object_by_name("RolledBack").is_err());

        drop(db);
        let recovered = Database::open_durable(&dir).unwrap();
        assert_eq!(recovered.schema().name, "Figure3", "published schema survives the rollback");
        assert_eq!(recovered.schema_registry().current_id(), published);
        assert!(recovered.version_info(&v1).is_err(), "deleted version must not resurrect");
        assert!(recovered.version_info(&v2).is_ok());
        assert_eq!(recovered.versions().len(), 1);
        assert!(recovered.object_by_name("RolledBack").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn side_committed_meta_is_not_overwritten_by_a_committing_transaction() {
        // A transaction stages meta with each mutation; a non-transactional side-commit
        // (publish_schema) inside the transaction writes a *fresher* meta in its own storage
        // transaction.  Committing the outer transaction must not replay its earlier, stale
        // meta copy over the side-committed one.
        let dir = temp_dir("meta-ordering");
        let mut db = Database::create_durable(&dir, figure2_schema()).unwrap();
        db.begin_transaction().unwrap();
        db.create_object("Data", "BeforePublish").unwrap(); // stages meta (old schema id)
        let published = db.publish_schema(figure3_schema()).unwrap(); // side-commits fresh meta
        db.commit_transaction().unwrap();
        drop(db);
        let recovered = Database::open_durable(&dir).unwrap();
        assert_eq!(recovered.schema().name, "Figure3");
        assert_eq!(recovered.schema_registry().current_id(), published);
        assert!(recovered.object_by_name("BeforePublish").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn return_to_current_requires_finished_transaction() {
        let dir = temp_dir("alt-txn-guard");
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        db.create_object("Data", "Main").unwrap();
        let v1 = db.create_version("base").unwrap();
        db.checkout_alternative(v1).unwrap();
        db.begin_transaction().unwrap();
        assert!(matches!(db.return_to_current(), Err(SeedError::Transaction(_))));
        db.rollback_transaction().unwrap();
        db.return_to_current().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_inside_open_transaction_loses_only_the_transaction() {
        let dir = temp_dir("crash-txn");
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        db.create_object("Data", "Committed").unwrap();
        db.begin_transaction().unwrap();
        db.create_object("Data", "Uncommitted").unwrap();
        // Crash with the transaction open: neither the storage transaction nor the WAL saw a
        // commit, so recovery must surface only the committed prefix.
        drop(db);
        let recovered = Database::open_durable(&dir).unwrap();
        assert!(recovered.object_by_name("Committed").is_ok());
        assert!(recovered.object_by_name("Uncommitted").is_err());
        assert!(!recovered.in_transaction());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn versions_and_views_survive_restart() {
        let dir = temp_dir("versions");
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        let desc = db.create_dependent(handler, "Description", Value::string("v1 text")).unwrap();
        let v1 = db.create_version("first").unwrap();
        db.set_value(desc, Value::string("v2 text")).unwrap();
        let v2 = db.create_version("second").unwrap();
        db.set_value(desc, Value::string("current text")).unwrap();

        drop(db);
        let mut recovered = Database::open_durable(&dir).unwrap();
        assert_eq!(recovered.versions().len(), 2);
        assert_eq!(recovered.version_info(&v2).unwrap().parent, Some(v1.clone()));
        recovered.select_version(Some(v1.clone())).unwrap();
        assert_eq!(recovered.object(desc).unwrap().value, Value::string("v1 text"));
        recovered.select_version(None).unwrap();
        assert_eq!(recovered.object(desc).unwrap().value, Value::string("current text"));
        // Version numbering continues where it left off.
        let v3 = recovered.create_version("third").unwrap();
        assert_eq!(v3.to_string(), "3.0");
        // Deleting a version removes its records durably.
        recovered.delete_version(&v2).unwrap();
        drop(recovered);
        let recovered = Database::open_durable(&dir).unwrap();
        assert_eq!(recovered.versions().len(), 2);
        assert!(recovered.version_info(&v2).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn alternative_versions_persist_but_scratch_state_does_not() {
        let dir = temp_dir("alternative");
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        let desc = db.create_dependent(handler, "Description", Value::string("mainline")).unwrap();
        let v1 = db.create_version("base").unwrap();
        db.set_value(desc, Value::string("mainline v2")).unwrap();

        db.checkout_alternative(v1.clone()).unwrap();
        db.set_value(desc, Value::string("alternative design")).unwrap();
        let alt = db.create_version("alt").unwrap();
        assert_eq!(alt.to_string(), "1.0.1");
        db.return_to_current().unwrap();

        drop(db);
        let mut recovered = Database::open_durable(&dir).unwrap();
        // The current state is the mainline state, untouched by the alternative's edits.
        assert_eq!(recovered.object(desc).unwrap().value, Value::string("mainline v2"));
        // The alternative's snapshot is durable and reconstructible.
        recovered.select_version(Some(alt.clone())).unwrap();
        assert_eq!(recovered.object(desc).unwrap().value, Value::string("alternative design"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pattern_inheritance_round_trips() {
        let dir = temp_dir("patterns");
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        let manager = db.create_object("Action", "Manager").unwrap();
        let pattern = db.create_pattern_object("Data", "StandardInput").unwrap();
        db.create_pattern_relationship("Access", &[("from", pattern), ("by", manager)]).unwrap();
        let a = db.create_object("Data", "SensorInput").unwrap();
        db.inherit_pattern(a, pattern).unwrap();

        drop(db);
        let recovered = Database::open_durable(&dir).unwrap();
        assert_eq!(recovered.inherited_patterns(a), vec![pattern]);
        let rels = recovered.relationships(a);
        assert_eq!(rels.len(), 1);
        assert!(rels[0].is_inherited());
        assert_eq!(rels[0].record.bound("by"), Some(manager));
        // Un-inheriting is durable too (the object entry is re-written without the link).
        let mut recovered = recovered;
        recovered.uninherit_pattern(a, pattern).unwrap();
        drop(recovered);
        let recovered = Database::open_durable(&dir).unwrap();
        assert!(recovered.inherited_patterns(a).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_blob_database_is_migrated_on_open() {
        let dir = temp_dir("migration");
        // Build a database through the legacy snapshot path.
        let mut db = Database::new(figure3_schema());
        db.add_transition_rule(crate::history::TransitionRule::NoDeletions).unwrap();
        let alarms = db.create_object("Thing", "Alarms").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.reclassify_object(alarms, "OutputData").unwrap();
        db.create_relationship("Write", &[("to", alarms), ("by", sensor)]).unwrap();
        db.create_version("before migration").unwrap();
        let desc = db.create_dependent(sensor, "Description", Value::Undefined).unwrap();
        db.set_value(desc, Value::string("senses")).unwrap();
        db.save_to_dir(&dir).unwrap();

        // Opening durable migrates the blobs to per-item records.
        let mut migrated = Database::open_durable(&dir).unwrap();
        assert_same_state(&migrated, &db, true);
        // Write-through now applies; a further mutation survives a crash.
        migrated.create_object("Data", "PostMigration").unwrap();
        drop(migrated);
        {
            let engine = open_engine(&dir).unwrap();
            assert!(!engine.contains(b"seed/schema").unwrap(), "blob keys removed");
            assert!(engine.contains(codec::KEY_META).unwrap());
        }
        let recovered = Database::open_durable(&dir).unwrap();
        assert!(recovered.object_by_name("PostMigration").is_ok());
        assert!(recovered.object_by_name("Alarms").is_ok());
        assert_eq!(recovered.versions().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_status_and_checkpoint() {
        let dir = temp_dir("status");
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        db.create_object("Data", "X").unwrap();
        let status = db.durability_status().unwrap();
        assert_eq!(status.path, dir);
        assert!(status.wal_bytes > 0, "committed mutations sit in the WAL");
        assert!(status.keys >= 2, "schema + meta + object records");
        db.checkpoint().unwrap();
        let status = db.durability_status().unwrap();
        assert_eq!(status.wal_bytes, 0, "checkpoint truncates the WAL");
        // In-memory databases have no durability to speak of.
        let mem = Database::new(figure3_schema());
        assert!(mem.durability_status().is_none());
        assert!(mem.checkpoint().is_err());
        assert!(!mem.is_durable());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_commit_durable_cost_is_o_delta() {
        // The acceptance criterion behind E10: committing one object mutation writes a bounded
        // handful of keys, not the whole database.  We verify the structural half here (the
        // timing half is the benchmark): the WAL grows by O(1) records per mutation regardless
        // of database size.
        let dir = temp_dir("odelta");
        let mut db = Database::create_durable(&dir, figure3_schema()).unwrap();
        for i in 0..500 {
            db.create_object("Data", &format!("Data{i:04}")).unwrap();
        }
        db.checkpoint().unwrap();
        let before = db.durability_status().unwrap().wal_bytes;
        db.set_value(db.object_by_name("Data0000").unwrap().id, Value::Undefined).unwrap();
        let after = db.durability_status().unwrap().wal_bytes;
        let delta = after - before;
        assert!(
            delta < 2048,
            "one mutation must cost O(delta) WAL bytes, not O(database); got {delta}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod proptests {
    use super::test_support::{assert_same_state, temp_dir};
    use super::*;
    use crate::value::Value;
    use proptest::prelude::*;
    use seed_schema::figure3_schema;

    /// One step of the randomized workload.  Ops address objects through a small name pool so
    /// the durable database and the in-memory model resolve identically.
    #[derive(Debug, Clone)]
    enum Op {
        CreateData(u8),
        CreateAction(u8),
        CreateDescription(u8, String),
        SetDescription(u8, String),
        Reclassify(u8),
        Link(u8, u8),
        Delete(u8),
        CreateVersion,
        Begin,
        Commit,
        Rollback,
    }

    fn data_name(i: u8) -> String {
        format!("D{i}")
    }

    fn action_name(i: u8) -> String {
        format!("A{i}")
    }

    /// Applies one op; returns whether it succeeded.  Failures (duplicate names, missing
    /// objects, consistency violations, transaction-state errors) are part of the workload and
    /// must behave identically on both databases.
    fn apply(db: &mut Database, op: &Op) -> bool {
        match op {
            Op::CreateData(i) => db.create_object("Data", &data_name(*i)).is_ok(),
            Op::CreateAction(i) => db.create_object("Action", &action_name(*i)).is_ok(),
            Op::CreateDescription(i, text) => match db.object_by_name(&action_name(*i)) {
                Ok(parent) => db
                    .create_dependent(parent.id, "Description", Value::string(text.clone()))
                    .is_ok(),
                Err(_) => false,
            },
            Op::SetDescription(i, text) => {
                match db.object_by_name(&format!("{}.Description", action_name(*i))) {
                    Ok(desc) => db.set_value(desc.id, Value::string(text.clone())).is_ok(),
                    Err(_) => false,
                }
            }
            Op::Reclassify(i) => match db.object_by_name(&data_name(*i)) {
                Ok(obj) => db.reclassify_object(obj.id, "OutputData").is_ok(),
                Err(_) => false,
            },
            Op::Link(i, j) => {
                match (db.object_by_name(&data_name(*i)), db.object_by_name(&action_name(*j))) {
                    (Ok(d), Ok(a)) => {
                        db.create_relationship("Access", &[("from", d.id), ("by", a.id)]).is_ok()
                    }
                    _ => false,
                }
            }
            Op::Delete(i) => match db.object_by_name(&data_name(*i)) {
                Ok(obj) => db.delete_object(obj.id).is_ok(),
                Err(_) => false,
            },
            Op::CreateVersion => {
                if db.in_transaction() {
                    false
                } else {
                    db.create_version("snapshot").is_ok()
                }
            }
            Op::Begin => db.begin_transaction().is_ok(),
            Op::Commit => db.commit_transaction().is_ok(),
            Op::Rollback => db.rollback_transaction().is_ok(),
        }
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        let idx = 0u8..6;
        let text = "[a-z]{0,8}";
        prop_oneof![
            idx.clone().prop_map(Op::CreateData),
            idx.clone().prop_map(Op::CreateAction),
            (idx.clone(), text).prop_map(|(i, t)| Op::CreateDescription(i, t)),
            (idx.clone(), "[a-z]{0,8}").prop_map(|(i, t)| Op::SetDescription(i, t)),
            idx.clone().prop_map(Op::Reclassify),
            (idx.clone(), 0u8..6).prop_map(|(i, j)| Op::Link(i, j)),
            idx.prop_map(Op::Delete),
            (0u8..1).prop_map(|_| Op::CreateVersion),
            (0u8..1).prop_map(|_| Op::Begin),
            (0u8..1).prop_map(|_| Op::Commit),
            (0u8..1).prop_map(|_| Op::Rollback),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Crash consistency: replay a random mutation sequence against a durable database and
        /// an in-memory model, drop the engine (no checkpoint, no close) at a random point,
        /// reopen, and the recovered database must equal the committed prefix — an open
        /// transaction at the crash point rolls back on the model, because its storage
        /// transaction never committed.
        #[test]
        fn recovery_equals_committed_prefix(
            ops in proptest::collection::vec(arb_op(), 1..36),
            crash_at in 0usize..36,
        ) {
            let crash_at = crash_at.min(ops.len());
            let dir = temp_dir("prop");
            let mut durable = Database::create_durable(&dir, figure3_schema()).unwrap();
            let mut model = Database::new(figure3_schema());
            for op in &ops[..crash_at] {
                let a = apply(&mut durable, op);
                let b = apply(&mut model, op);
                prop_assert_eq!(a, b);
            }
            let crashed_in_txn = durable.in_transaction();
            if crashed_in_txn {
                // The open storage transaction never commits, so the committed prefix is the
                // model with the open transaction rolled back.
                model.rollback_transaction().unwrap();
            }
            drop(durable);
            let recovered = Database::open_durable(&dir).unwrap();
            assert_same_state(&recovered, &model, !crashed_in_txn);
            // The recovered database keeps working: completeness analysis and a fresh mutation
            // both run on the rebuilt indexes.
            let _ = recovered.completeness_report();
            let mut recovered = recovered;
            prop_assert!(recovered.create_object("Data", "PostRecovery").is_ok());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
