//! Property tests: indexed execution and the scan fallback are the same function.
//!
//! For random schemas (random specialization hierarchies with random value domains), random
//! populations (objects, values, relationships) and random queries over every selection form,
//! [`execute`] (planner + index access paths) and [`execute_scan`] (the original full-extent
//! pipeline) must return identical result sets — and fail on identical inputs.  This is the
//! contract that lets the planner switch access paths freely (see `docs/QUERY.md`).

use proptest::prelude::*;
use seed_core::{Database, Value};
use seed_schema::{Domain, SchemaBuilder};

use crate::ast::{Comparison, Navigation, Query, Selection};
use crate::exec::{execute, execute_scan};

/// Builds a schema with `domains.len()` specializations of a common `Root` class (`C0`, `C1`,
/// ... with an Integer or String domain each) and one `Link` association over `Root`.
fn random_schema(domains: &[bool]) -> seed_schema::Schema {
    let mut builder = SchemaBuilder::new("Random").class("Root", |c| c);
    for (i, integer) in domains.iter().enumerate() {
        let domain = if *integer { Domain::Integer } else { Domain::String };
        builder = builder.value_class(&format!("C{i}"), domain);
    }
    builder = builder.association("Link", "a", "Root", "0..*", "b", "Root", "0..*", |a| a);
    let subs: Vec<String> = (0..domains.len()).map(|i| format!("C{i}")).collect();
    let sub_refs: Vec<&str> = subs.iter().map(String::as_str).collect();
    builder.generalize_classes("Root", &sub_refs, false).build().expect("generated schema is valid")
}

type ObjectSpec = (u8, String, u8, i64, String);
type QuerySpec = ((u8, u8, bool, u8), (u8, i64, String, u8));

fn build_database(
    domains: &[bool],
    objects: &[ObjectSpec],
    links: &[(u8, u8)],
) -> (Database, Vec<seed_core::ObjectId>) {
    let mut db = Database::new(random_schema(domains));
    let mut created = Vec::new();
    for (class_pick, name, value_pick, int_value, str_value) in objects {
        let class_index = *class_pick as usize % (domains.len() + 1);
        let (class, value) = if class_index == 0 {
            ("Root".to_string(), Value::Undefined)
        } else {
            let class = format!("C{}", class_index - 1);
            let value = match value_pick % 3 {
                0 => Value::Undefined,
                _ if domains[class_index - 1] => Value::Integer(*int_value),
                _ => Value::string(str_value.clone()),
            };
            (class, value)
        };
        // Duplicate names are rejected by the database; that is part of the model, not a
        // failure of the generator.
        if let Ok(id) = db.create_object_with_value(&class, name, value) {
            created.push(id);
        }
    }
    for (a, b) in links {
        if created.is_empty() {
            break;
        }
        let from = created[*a as usize % created.len()];
        let to = created[*b as usize % created.len()];
        let _ = db.create_relationship("Link", &[("a", from), ("b", to)]);
    }
    (db, created)
}

fn build_query(domains: &[bool], spec: &QuerySpec) -> Query {
    let ((form, class_pick, exact, sel_kind), (op_pick, int_lit, str_lit, nav_pick)) = spec;
    let class_index = *class_pick as usize % (domains.len() + 1);
    let class = if class_index == 0 { "Root".to_string() } else { format!("C{}", class_index - 1) };
    let op = match op_pick % 4 {
        0 => Comparison::Equal,
        1 => Comparison::NotEqual,
        2 => Comparison::Less,
        _ => Comparison::Greater,
    };
    let selections = match sel_kind % 8 {
        0 => vec![],
        1 => vec![Selection::NameEquals(str_lit.clone())],
        2 => vec![Selection::NamePrefix(str_lit.clone())],
        3 => vec![Selection::Value(op, int_lit.to_string())],
        4 => vec![Selection::Value(op, str_lit.clone())],
        5 => vec![Selection::Related { association: "Link".into(), role: "a".into() }],
        6 => vec![Selection::Related { association: "Link".into(), role: "b".into() }],
        _ => vec![
            Selection::Value(op, int_lit.to_string()),
            Selection::NamePrefix(str_lit.chars().take(1).collect()),
        ],
    };
    let navigate = (nav_pick % 3 == 0).then(|| Navigation {
        association: "Link".into(),
        to_role: "b".into(),
        from_object: str_lit.clone(),
    });
    if *form % 2 == 0 {
        Query::Find { class, exact: *exact, selections, navigate }
    } else {
        Query::Count { class, exact: *exact, selections, navigate }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn indexed_and_scan_execution_are_identical(
        domains in proptest::collection::vec(any::<bool>(), 1..4),
        objects in proptest::collection::vec(
            (0u8..8, "[A-D][a-e]{0,2}", 0u8..3, -3i64..6, "[a-e]{0,2}"),
            0..30,
        ),
        links in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..12),
        queries in proptest::collection::vec(
            ((0u8..2, 0u8..8, any::<bool>(), 0u8..8), (0u8..4, -4i64..7, "[A-Da-e]{0,3}", 0u8..3)),
            1..12,
        ),
    ) {
        let (db, _) = build_database(&domains, &objects, &links);
        for spec in &queries {
            let query = build_query(&domains, spec);
            let indexed = execute(&db, &query);
            let scanned = execute_scan(&db, &query);
            match (&indexed, &scanned) {
                (Ok(a), Ok(b)) => {
                    prop_assert!(
                        a.names() == b.names() && a.count() == b.count(),
                        "paths disagree on {:?}: indexed {:?} vs scan {:?}",
                        query, a, b
                    );
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "paths disagree on {:?}: indexed {:?} vs scan {:?}",
                    query, indexed, scanned
                ),
            }
            // `explain` must render a plan for every well-classed query.
            let explained = execute(&db, &Query::Explain(Box::new(query.clone())));
            prop_assert!(explained.is_ok(), "explain failed for {:?}", query);
            prop_assert!(explained.unwrap().plan().is_some());
        }
    }
}
