//! Synthetic specification-editing workloads.
//!
//! The paper's evaluation is the experience of editing a real specification with SPADES.  We do
//! not have the SPADES corpus, so the workload generator produces the same *shape* of activity
//! the paper describes: elements enter the database vaguely, get described, keyworded and
//! related, are refined step by step, are occasionally removed, and the state is checkpointed
//! after every larger modification.  The generator is deterministic for a given seed so that the
//! SEED and direct backends see exactly the same operation sequence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::backend::SpecBackend;
use crate::model::{ElementKind, FlowKind};

/// One tool-level operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecOp {
    /// Add a new element.
    AddElement {
        /// Element name.
        name: String,
        /// Initial (possibly vague) kind.
        kind: ElementKind,
    },
    /// Refine an element's kind.
    RefineElement {
        /// Element name.
        name: String,
        /// Target kind.
        kind: ElementKind,
    },
    /// Add a data flow.
    AddFlow {
        /// Data element name.
        data: String,
        /// Action element name.
        action: String,
        /// Flow precision.
        kind: FlowKind,
    },
    /// Refine a flow.
    RefineFlow {
        /// Data element name.
        data: String,
        /// Action element name.
        action: String,
        /// Target precision.
        kind: FlowKind,
    },
    /// Set an element's description.
    SetDescription {
        /// Element name.
        name: String,
        /// Description text.
        text: String,
    },
    /// Add a keyword to an element.
    AddKeyword {
        /// Element name.
        name: String,
        /// The keyword.
        keyword: String,
    },
    /// Nest one action inside another.
    Contain {
        /// Inner action.
        inner: String,
        /// Outer action.
        outer: String,
    },
    /// Take a version snapshot.
    Checkpoint {
        /// Comment for the snapshot.
        comment: String,
    },
}

/// Parameters of the workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of data elements to create.
    pub data_elements: usize,
    /// Number of action elements to create.
    pub actions: usize,
    /// Fraction (0..=100) of elements that start vague (as `Thing`) and are refined later.
    pub vague_percent: u32,
    /// Flows per action (each to a random data element).
    pub flows_per_action: usize,
    /// Keywords per data element.
    pub keywords_per_data: usize,
    /// Take a checkpoint every this many operations (0 = never).
    pub checkpoint_every: usize,
    /// RNG seed (same seed ⇒ same operation sequence).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            data_elements: 40,
            actions: 20,
            vague_percent: 50,
            flows_per_action: 3,
            keywords_per_data: 2,
            checkpoint_every: 50,
            seed: 1986,
        }
    }
}

/// A generated operation sequence.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The operations, in execution order.
    pub ops: Vec<SpecOp>,
}

impl Workload {
    /// Generates a workload from the configuration.
    pub fn generate(config: &WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut ops = Vec::new();
        let data_names: Vec<String> =
            (0..config.data_elements).map(|i| format!("Data{i:03}")).collect();
        let action_names: Vec<String> =
            (0..config.actions).map(|i| format!("Action{i:03}")).collect();

        // Phase 1: elements enter the specification, some of them vaguely.
        let mut vague: Vec<(String, ElementKind)> = Vec::new();
        for name in &data_names {
            if rng.gen_range(0..100) < config.vague_percent {
                ops.push(SpecOp::AddElement { name: name.clone(), kind: ElementKind::Thing });
                vague.push((name.clone(), ElementKind::Data));
            } else {
                ops.push(SpecOp::AddElement { name: name.clone(), kind: ElementKind::Data });
            }
        }
        for name in &action_names {
            if rng.gen_range(0..100) < config.vague_percent {
                ops.push(SpecOp::AddElement { name: name.clone(), kind: ElementKind::Thing });
                vague.push((name.clone(), ElementKind::Action));
            } else {
                ops.push(SpecOp::AddElement { name: name.clone(), kind: ElementKind::Action });
            }
        }

        // Phase 2: refinement of the vague elements (knowledge becomes more precise).  This
        // comes before descriptions/keywords because a still-vague Thing has no place to hang a
        // description — exactly the paper's "evolves to a rather formal representation".
        for (name, kind) in &vague {
            ops.push(SpecOp::RefineElement { name: name.clone(), kind: *kind });
        }

        // Phase 3: descriptions and keywords.
        for name in data_names.iter().chain(action_names.iter()) {
            ops.push(SpecOp::SetDescription {
                name: name.clone(),
                text: format!("{name} is part of the alarm monitoring subsystem"),
            });
        }
        for name in &data_names {
            for k in 0..config.keywords_per_data {
                ops.push(SpecOp::AddKeyword { name: name.clone(), keyword: format!("keyword{k}") });
            }
        }

        // Phase 4: data flows, first vague, some refined later.  Each data element gets a single
        // flow direction (input or output) so that successive refinements never contradict each
        // other — the generator produces sequences that a careful engineer could enter.
        let mut flows: Vec<(String, String)> = Vec::new();
        for action in &action_names {
            for _ in 0..config.flows_per_action {
                let data = &data_names[rng.gen_range(0..data_names.len())];
                if flows.iter().any(|(d, a)| d == data && a == action) {
                    continue;
                }
                ops.push(SpecOp::AddFlow {
                    data: data.clone(),
                    action: action.clone(),
                    kind: FlowKind::Access,
                });
                flows.push((data.clone(), action.clone()));
            }
        }
        let mut direction: std::collections::HashMap<String, FlowKind> =
            std::collections::HashMap::new();
        for (data, action) in &flows {
            if !rng.gen_bool(0.5) {
                continue;
            }
            let kind = *direction.entry(data.clone()).or_insert_with(|| {
                if rng.gen_bool(0.5) {
                    FlowKind::Read
                } else {
                    FlowKind::Write
                }
            });
            // Reads need InputData, writes need OutputData: refine the element first so the
            // sequence is valid on the checked backend too (re-refining to the same kind is a
            // no-op for SEED).
            let target = if kind == FlowKind::Read {
                ElementKind::InputData
            } else {
                ElementKind::OutputData
            };
            ops.push(SpecOp::RefineElement { name: data.clone(), kind: target });
            ops.push(SpecOp::RefineFlow { data: data.clone(), action: action.clone(), kind });
        }

        // Phase 5: containment hierarchy over actions (a forest, so it stays acyclic).
        for (i, action) in action_names.iter().enumerate().skip(1) {
            let outer = &action_names[rng.gen_range(0..i)];
            ops.push(SpecOp::Contain { inner: action.clone(), outer: outer.clone() });
        }

        // Interleave checkpoints.
        // `checked_div` is `None` exactly when `checkpoint_every` is 0, i.e. "never checkpoint".
        if let Some(checkpoints) = ops.len().checked_div(config.checkpoint_every) {
            let mut with_checkpoints = Vec::with_capacity(ops.len() + checkpoints + 1);
            for (i, op) in ops.into_iter().enumerate() {
                with_checkpoints.push(op);
                if (i + 1) % config.checkpoint_every == 0 {
                    with_checkpoints.push(SpecOp::Checkpoint {
                        comment: format!("after {} operations", i + 1),
                    });
                }
            }
            ops = with_checkpoints;
        }
        Self { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the workload to a backend, returning how many operations were rejected.
    ///
    /// On the SEED backend a handful of operations may legitimately be rejected (e.g. a lateral
    /// element refinement that would contradict an already-refined flow); the pre-SEED backend
    /// accepts everything.  The count of rejections is itself a result: it is the number of
    /// inconsistencies SEED caught that the old tool would have silently stored.
    pub fn apply(&self, backend: &mut dyn SpecBackend) -> usize {
        let mut rejected = 0;
        for op in &self.ops {
            let result = match op {
                SpecOp::AddElement { name, kind } => backend.add_element(name, *kind),
                SpecOp::RefineElement { name, kind } => backend.refine_element(name, *kind),
                SpecOp::AddFlow { data, action, kind } => backend.add_flow(data, action, *kind),
                SpecOp::RefineFlow { data, action, kind } => {
                    backend.refine_flow(data, action, *kind)
                }
                SpecOp::SetDescription { name, text } => backend.set_description(name, text),
                SpecOp::AddKeyword { name, keyword } => backend.add_keyword(name, keyword),
                SpecOp::Contain { inner, outer } => backend.contain(inner, outer),
                SpecOp::Checkpoint { comment } => backend.checkpoint(comment).map(|_| ()),
            };
            if result.is_err() {
                rejected += 1;
            }
        }
        rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct_backend::DirectBackend;
    use crate::seed_backend::SeedBackend;

    #[test]
    fn generation_is_deterministic() {
        let config = WorkloadConfig { data_elements: 10, actions: 5, ..WorkloadConfig::default() };
        let a = Workload::generate(&config);
        let b = Workload::generate(&config);
        assert_eq!(a.ops, b.ops);
        assert!(!a.is_empty());
        let different = Workload::generate(&WorkloadConfig { seed: 7, ..config });
        assert_ne!(a.ops, different.ops);
    }

    #[test]
    fn both_backends_accept_the_workload() {
        let config = WorkloadConfig {
            data_elements: 15,
            actions: 8,
            checkpoint_every: 25,
            ..WorkloadConfig::default()
        };
        let workload = Workload::generate(&config);

        let mut direct = DirectBackend::new();
        let rejected_direct = workload.apply(&mut direct);
        assert_eq!(rejected_direct, 0, "the unchecked tool accepts everything");

        let mut seed = SeedBackend::new();
        let rejected_seed = workload.apply(&mut seed);
        // The generator emits consistent sequences, so SEED accepts them all too.
        assert_eq!(
            rejected_seed, 0,
            "SEED rejected {rejected_seed} operations of a valid sequence"
        );

        // Both tools end up with the same number of elements.
        assert_eq!(direct.element_names().len(), 15 + 8);
        assert_eq!(seed.element_names().len(), 15 + 8);
        assert!(seed.checkpoint_count() > 0);
        assert!(direct.checkpoint_count() > 0);
        // Only SEED can report incompleteness.
        assert!(seed.incompleteness_findings() > 0);
        assert_eq!(direct.incompleteness_findings(), 0);
    }

    #[test]
    fn checkpoints_can_be_disabled() {
        let config = WorkloadConfig {
            data_elements: 5,
            actions: 2,
            checkpoint_every: 0,
            ..WorkloadConfig::default()
        };
        let workload = Workload::generate(&config);
        assert!(!workload.ops.iter().any(|op| matches!(op, SpecOp::Checkpoint { .. })));
    }
}
