//! A tiny entity-relationship algebra over sets of objects.
//!
//! Queries evaluate to an [`ObjectSet`]; the set operations (union, intersection, difference)
//! and the relational-style helpers (selection by predicate, navigation along an association)
//! mirror the entity-relationship algebra the paper cites as related work.  All operations are
//! defined on *existing* relationships only, so undefined items never join with anything —
//! exactly the paper's semantics for incomplete data.

use std::collections::BTreeMap;

use seed_core::{Database, ObjectId, ObjectRecord, SeedResult};

/// Re-export used by the executor for value comparisons.
pub use seed_core::Value;

/// An ordered, duplicate-free set of objects (ordered by object id).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectSet {
    objects: BTreeMap<ObjectId, ObjectRecord>,
}

impl ObjectSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from records (duplicates collapse).
    pub fn from_records(records: impl IntoIterator<Item = ObjectRecord>) -> Self {
        let mut set = Self::new();
        for r in records {
            set.objects.insert(r.id, r);
        }
        set
    }

    /// Number of objects in the set.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Whether the set contains an object.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// The records, in object-id order.
    pub fn records(&self) -> Vec<&ObjectRecord> {
        self.objects.values().collect()
    }

    /// The object names, in sorted (lexicographic) order — deterministic regardless of the
    /// store's iteration order or the objects' creation order, unlike [`ObjectSet::records`]
    /// which keeps id order.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.objects.values().map(|o| o.name.to_string()).collect();
        names.sort();
        names
    }

    /// Keeps only the objects satisfying `predicate` (selection σ).
    pub fn select(&self, predicate: impl Fn(&ObjectRecord) -> bool) -> ObjectSet {
        ObjectSet {
            objects: self
                .objects
                .iter()
                .filter(|(_, o)| predicate(o))
                .map(|(id, o)| (*id, o.clone()))
                .collect(),
        }
    }

    /// Set union.
    pub fn union(&self, other: &ObjectSet) -> ObjectSet {
        let mut objects = self.objects.clone();
        for (id, o) in &other.objects {
            objects.entry(*id).or_insert_with(|| o.clone());
        }
        ObjectSet { objects }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &ObjectSet) -> ObjectSet {
        ObjectSet {
            objects: self
                .objects
                .iter()
                .filter(|(id, _)| other.objects.contains_key(id))
                .map(|(id, o)| (*id, o.clone()))
                .collect(),
        }
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &ObjectSet) -> ObjectSet {
        ObjectSet {
            objects: self
                .objects
                .iter()
                .filter(|(id, _)| !other.objects.contains_key(id))
                .map(|(id, o)| (*id, o.clone()))
                .collect(),
        }
    }

    /// Navigation (a role-to-role join along existing relationships): for every object in the
    /// set, follow visible relationships of `association` (and its specializations) where the
    /// object fills `from_role`, and collect the objects bound to `to_role`.
    pub fn navigate(
        &self,
        db: &Database,
        association: &str,
        from_role: &str,
        to_role: &str,
    ) -> SeedResult<ObjectSet> {
        let mut out = ObjectSet::new();
        for id in self.objects.keys() {
            for target in db.related(*id, association, from_role, to_role)? {
                out.objects.insert(target.id, target);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_core::Database;
    use seed_schema::figure3_schema;

    fn db() -> (Database, ObjectId, ObjectId, ObjectId) {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("OutputData", "Alarms").unwrap();
        let process = db.create_object("InputData", "ProcessData").unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        db.create_relationship("Write", &[("to", alarms), ("by", handler)]).unwrap();
        db.create_relationship("Read", &[("from", process), ("by", handler)]).unwrap();
        (db, alarms, process, handler)
    }

    #[test]
    fn set_operations() {
        let (db, alarms, process, _) = db();
        let data = ObjectSet::from_records(db.objects_of_class("Data", true).unwrap());
        assert_eq!(data.len(), 2);
        assert!(data.contains(alarms));
        let output = ObjectSet::from_records(db.objects_of_class("OutputData", true).unwrap());
        assert_eq!(data.intersect(&output).len(), 1);
        assert_eq!(data.difference(&output).names(), vec!["ProcessData"]);
        assert_eq!(data.union(&output).len(), 2);
        let selected = data.select(|o| o.name.to_string().starts_with("Alarm"));
        assert_eq!(selected.names(), vec!["Alarms"]);
        assert!(!selected.is_empty());
        assert!(ObjectSet::new().is_empty());
        let _ = process;
    }

    #[test]
    fn navigation_follows_roles() {
        let (db, alarms, _, handler) = db();
        let start = ObjectSet::from_records(vec![db.object(alarms).unwrap()]);
        // Who writes Alarms?  Navigate Write from role 'to' to role 'by'.
        let writers = start.navigate(&db, "Write", "to", "by").unwrap();
        assert_eq!(writers.names(), vec!["AlarmHandler"]);
        assert!(writers.contains(handler));
        // Generalized navigation also works (Access subsumes Write).
        let writers = start.navigate(&db, "Access", "from", "by").unwrap();
        assert_eq!(writers.len(), 1);
        // Unknown association errors.
        assert!(start.navigate(&db, "Ghost", "a", "b").is_err());
    }
}
