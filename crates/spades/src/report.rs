//! Textual specification reports.
//!
//! SPADES is a documentation-centric tool: after a working session the engineer wants a summary
//! of what the specification contains and where it is still vague or incomplete.  The report
//! works against any [`SpecBackend`], but only the SEED backend can fill in the incompleteness
//! section — which is the "much more flexible" half of the paper's concluding sentence.

use std::fmt::Write as _;

use crate::backend::SpecBackend;
use crate::model::ElementKind;

/// Renders a human-readable report of the whole specification.
pub fn specification_report(backend: &dyn SpecBackend) -> String {
    let mut out = String::new();
    let names = backend.element_names();
    let _ = writeln!(out, "Specification report ({})", backend.backend_name());
    let _ = writeln!(out, "=================================================");
    let _ = writeln!(
        out,
        "{} elements, {} data flows, {} checkpoints",
        names.len(),
        backend.flow_count(),
        backend.checkpoint_count()
    );

    let mut vague = 0usize;
    let mut undescribed = 0usize;
    for name in &names {
        let Ok(info) = backend.element(name) else { continue };
        if info.kind == ElementKind::Thing {
            vague += 1;
        }
        if info.description.is_none() {
            undescribed += 1;
        }
    }
    let _ = writeln!(
        out,
        "{vague} elements still vague (kind Thing), {undescribed} without description"
    );
    let findings = backend.incompleteness_findings();
    let _ = writeln!(out, "{findings} incompleteness finding(s) reported by the backend");
    let _ = writeln!(out);

    for name in &names {
        let Ok(info) = backend.element(name) else { continue };
        let _ = writeln!(out, "{} : {}", info.name, info.kind);
        if let Some(desc) = &info.description {
            let _ = writeln!(out, "    \"{desc}\"");
        }
        if !info.keywords.is_empty() {
            let _ = writeln!(out, "    keywords: {}", info.keywords.join(", "));
        }
        for (data, kind, action) in &info.flows {
            let _ = writeln!(out, "    {kind}: {data} -- {action}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct_backend::DirectBackend;
    use crate::model::FlowKind;
    use crate::seed_backend::SeedBackend;

    fn build(backend: &mut dyn SpecBackend) {
        backend.add_element("Alarms", ElementKind::Thing).unwrap();
        backend.add_element("AlarmHandler", ElementKind::Action).unwrap();
        backend.set_description("AlarmHandler", "Handles alarms").unwrap();
        backend.refine_element("Alarms", ElementKind::Data).unwrap();
        backend.add_flow("Alarms", "AlarmHandler", FlowKind::Access).unwrap();
        backend.add_keyword("Alarms", "Display").unwrap();
        backend.checkpoint("1.0").unwrap();
    }

    #[test]
    fn report_covers_both_backends() {
        let mut seed = SeedBackend::new();
        build(&mut seed);
        let report = specification_report(&seed);
        assert!(report.contains("SPADES on SEED"));
        assert!(report.contains("Alarms : Data"));
        assert!(report.contains("Handles alarms"));
        assert!(report.contains("Access: Alarms -- AlarmHandler"));
        assert!(report.contains("keywords: Display"));
        assert!(report.contains("incompleteness finding"));

        let mut direct = DirectBackend::new();
        build(&mut direct);
        let report = specification_report(&direct);
        assert!(report.contains("pre-SEED"));
        assert!(report.contains("0 incompleteness finding(s)"));
    }
}
