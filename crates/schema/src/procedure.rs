//! Attached procedures.
//!
//! "Attached procedures may be attached to any SEED schema element.  They are executed when an
//! item of the corresponding schema element is updated.  Attached procedures are used to express
//! complex integrity constraints."  (paper, section *Incomplete data*)
//!
//! The schema crate stores the *declaration* of an attached procedure.  Declarative constraint
//! kinds are interpreted directly by `seed-core`'s consistency checker; [`AttachedProcedure::Named`]
//! procedures are resolved at run time against the database's procedure registry, which lets an
//! application (such as the SPADES tool) register arbitrary Rust hooks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kinds of update events that trigger attached procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcedureEvent {
    /// A new item of the schema element was created.
    Create,
    /// An existing item was updated (value change, re-classification, role re-binding).
    Update,
    /// An item was deleted (logically).
    Delete,
}

impl fmt::Display for ProcedureEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcedureEvent::Create => write!(f, "create"),
            ProcedureEvent::Update => write!(f, "update"),
            ProcedureEvent::Delete => write!(f, "delete"),
        }
    }
}

/// Declaration of an attached procedure on a schema element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttachedProcedure {
    /// The item's integer value must lie within the given bounds (inclusive).
    ValueRange {
        /// Lower bound, if any.
        min: Option<i64>,
        /// Upper bound, if any.
        max: Option<i64>,
    },
    /// The item's string value must not be empty (after trimming whitespace).
    ValueNotEmpty,
    /// The item's string value must contain the given substring.
    ValueContains(String),
    /// The item's string value must have at most this many characters.
    MaxLength(usize),
    /// A named procedure resolved against the database's procedure registry at run time.
    Named(String),
}

impl AttachedProcedure {
    /// Short description used in error messages and reports.
    pub fn describe(&self) -> String {
        match self {
            AttachedProcedure::ValueRange { min, max } => match (min, max) {
                (Some(lo), Some(hi)) => format!("value must be between {lo} and {hi}"),
                (Some(lo), None) => format!("value must be at least {lo}"),
                (None, Some(hi)) => format!("value must be at most {hi}"),
                (None, None) => "value range (unbounded)".to_string(),
            },
            AttachedProcedure::ValueNotEmpty => "value must not be empty".to_string(),
            AttachedProcedure::ValueContains(s) => format!("value must contain \"{s}\""),
            AttachedProcedure::MaxLength(n) => format!("value must be at most {n} characters"),
            AttachedProcedure::Named(name) => format!("attached procedure '{name}'"),
        }
    }
}

impl fmt::Display for AttachedProcedure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_mentions_bounds() {
        let p = AttachedProcedure::ValueRange { min: Some(0), max: Some(10) };
        assert!(p.describe().contains("0"));
        assert!(p.describe().contains("10"));
        assert!(AttachedProcedure::ValueRange { min: Some(2), max: None }
            .describe()
            .contains("at least 2"));
        assert!(AttachedProcedure::ValueRange { min: None, max: Some(5) }
            .describe()
            .contains("at most 5"));
        assert!(AttachedProcedure::Named("check_deadline".into())
            .describe()
            .contains("check_deadline"));
        assert!(AttachedProcedure::MaxLength(80).describe().contains("80"));
    }

    #[test]
    fn events_display() {
        assert_eq!(ProcedureEvent::Create.to_string(), "create");
        assert_eq!(ProcedureEvent::Update.to_string(), "update");
        assert_eq!(ProcedureEvent::Delete.to_string(), "delete");
    }
}
