//! Binary encoding of the protocol messages ([`Request`] / [`Response`]) for the wire.
//!
//! The encoders reuse the storage crate's explicit little-endian primitives and `seed-core`'s
//! per-item record codecs, so an [`seed_core::ObjectRecord`] has exactly one binary shape in
//! the whole system — on disk and on the wire.
//!
//! Every message is self-delimiting inside its frame; decoding checks that the payload is
//! consumed exactly.  Malformed payloads (unknown tags, truncation, trailing bytes) produce
//! [`WireError::Recoverable`] — never a panic — so the server can answer with a protocol error
//! and keep the connection.
//!
//! Server errors travel structurally: every [`ServerError`] variant round-trips, and within
//! [`ServerError::Rejected`] every string-carrying [`SeedError`] variant round-trips too.  The
//! three variants wrapping foreign error types (`Schema`, `Storage`, `Inconsistent`) are sent
//! as their display string and decode as [`SeedError::Invalid`] — the text survives, the
//! structure does not (clients react to *which* server error occurred, not to schema
//! internals).

use seed_core::codec::{
    decode_object, decode_relationship, decode_value, encode_object, encode_relationship,
    encode_value,
};
use seed_core::{SeedError, VersionId};
use seed_server::{
    AssociationSummary, CheckoutSet, ClassSummary, HealthStatus, PersistenceStatus,
    PromotionReceipt, QueryAnswer, RelationshipInfo, ReplicationRole, ReplicationStatus, Request,
    Response, SchemaSummary, ServerError, Update,
};
use seed_storage::{Decoder, Encoder};

use crate::error::{WireError, WireResult};

fn put_opt_u32(e: &mut Encoder, v: Option<u32>) {
    match v {
        Some(x) => {
            e.put_bool(true).put_u32(x);
        }
        None => {
            e.put_bool(false);
        }
    }
}

fn get_opt_u32(d: &mut Decoder<'_>) -> WireResult<Option<u32>> {
    Ok(if d.get_bool()? { Some(d.get_u32()?) } else { None })
}

fn put_opt_str(e: &mut Encoder, v: Option<&str>) {
    match v {
        Some(s) => {
            e.put_bool(true).put_str(s);
        }
        None => {
            e.put_bool(false);
        }
    }
}

fn get_opt_string(d: &mut Decoder<'_>) -> WireResult<Option<String>> {
    Ok(if d.get_bool()? { Some(d.get_str()?.to_string()) } else { None })
}

fn put_string_pairs(e: &mut Encoder, pairs: &[(String, String)]) {
    e.put_varint(pairs.len() as u64);
    for (a, b) in pairs {
        e.put_str(a).put_str(b);
    }
}

fn get_string_pairs(d: &mut Decoder<'_>) -> WireResult<Vec<(String, String)>> {
    let n = d.get_varint()? as usize;
    let mut pairs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        pairs.push((d.get_str()?.to_string(), d.get_str()?.to_string()));
    }
    Ok(pairs)
}

fn bad_tag(what: &str, tag: u8) -> WireError {
    WireError::Recoverable(format!("unknown {what} tag {tag}"))
}

// --------------------------------------------------------------------------------------------
// Errors
// --------------------------------------------------------------------------------------------

fn encode_seed_error(e: &mut Encoder, err: &SeedError) {
    match err {
        SeedError::NotFound(s) => {
            e.put_u8(0).put_str(s);
        }
        SeedError::DuplicateName(s) => {
            e.put_u8(1).put_str(s);
        }
        SeedError::DomainMismatch { expected, found } => {
            e.put_u8(2).put_str(expected).put_str(found);
        }
        SeedError::Version(s) => {
            e.put_u8(3).put_str(s);
        }
        SeedError::TransitionRejected(s) => {
            e.put_u8(4).put_str(s);
        }
        SeedError::Pattern(s) => {
            e.put_u8(5).put_str(s);
        }
        SeedError::Transaction(s) => {
            e.put_u8(6).put_str(s);
        }
        SeedError::Reclassification(s) => {
            e.put_u8(7).put_str(s);
        }
        SeedError::ReadOnlyVersion(s) => {
            e.put_u8(8).put_str(s);
        }
        SeedError::Invalid(s) => {
            e.put_u8(9).put_str(s);
        }
        // Foreign-typed variants: ship the rendered text (see module docs).
        SeedError::Schema(_) | SeedError::Storage(_) | SeedError::Inconsistent(_) => {
            e.put_u8(10).put_str(&err.to_string());
        }
    }
}

fn decode_seed_error(d: &mut Decoder<'_>) -> WireResult<SeedError> {
    Ok(match d.get_u8()? {
        0 => SeedError::NotFound(d.get_str()?.to_string()),
        1 => SeedError::DuplicateName(d.get_str()?.to_string()),
        2 => SeedError::DomainMismatch {
            expected: d.get_str()?.to_string(),
            found: d.get_str()?.to_string(),
        },
        3 => SeedError::Version(d.get_str()?.to_string()),
        4 => SeedError::TransitionRejected(d.get_str()?.to_string()),
        5 => SeedError::Pattern(d.get_str()?.to_string()),
        6 => SeedError::Transaction(d.get_str()?.to_string()),
        7 => SeedError::Reclassification(d.get_str()?.to_string()),
        8 => SeedError::ReadOnlyVersion(d.get_str()?.to_string()),
        9 => SeedError::Invalid(d.get_str()?.to_string()),
        10 => SeedError::Invalid(d.get_str()?.to_string()),
        other => return Err(bad_tag("seed error", other)),
    })
}

fn encode_server_error(e: &mut Encoder, err: &ServerError, version: u16) {
    // Tag 8 (`ReadOnlyReplica`) exists only from v2 on; for a v1 peer the redirect degrades to
    // a `Protocol` error whose text still names the primary (the peer can't follow a structured
    // redirect it cannot decode, but it must not be desynchronized by an unknown tag).
    if version < 2 {
        if let ServerError::ReadOnlyReplica { .. } = err {
            e.put_u8(7).put_str(&err.to_string());
            return;
        }
    }
    // Tag 9 (`Fenced`) exists only from v3 on; older peers get the same degrade — the text
    // still names the new primary and the epoch.
    if version < 3 {
        if let ServerError::Fenced { .. } = err {
            e.put_u8(7).put_str(&err.to_string());
            return;
        }
    }
    match err {
        ServerError::Locked { object, holder } => {
            e.put_u8(0).put_str(object).put_u64(*holder);
        }
        ServerError::NotCheckedOut(s) => {
            e.put_u8(1).put_str(s);
        }
        ServerError::Rejected(inner) => {
            e.put_u8(2);
            encode_seed_error(e, inner);
        }
        ServerError::Unknown(s) => {
            e.put_u8(3).put_str(s);
        }
        ServerError::Query(s) => {
            e.put_u8(4).put_str(s);
        }
        ServerError::Disconnected => {
            e.put_u8(5);
        }
        ServerError::Transport(s) => {
            e.put_u8(6).put_str(s);
        }
        ServerError::Protocol(s) => {
            e.put_u8(7).put_str(s);
        }
        ServerError::ReadOnlyReplica { primary } => {
            e.put_u8(8).put_str(primary);
        }
        ServerError::Fenced { new_primary, epoch } => {
            e.put_u8(9).put_str(new_primary).put_u64(*epoch);
        }
    }
}

fn decode_server_error(d: &mut Decoder<'_>) -> WireResult<ServerError> {
    Ok(match d.get_u8()? {
        0 => ServerError::Locked { object: d.get_str()?.to_string(), holder: d.get_u64()? },
        1 => ServerError::NotCheckedOut(d.get_str()?.to_string()),
        2 => ServerError::Rejected(decode_seed_error(d)?),
        3 => ServerError::Unknown(d.get_str()?.to_string()),
        4 => ServerError::Query(d.get_str()?.to_string()),
        5 => ServerError::Disconnected,
        6 => ServerError::Transport(d.get_str()?.to_string()),
        7 => ServerError::Protocol(d.get_str()?.to_string()),
        8 => ServerError::ReadOnlyReplica { primary: d.get_str()?.to_string() },
        9 => ServerError::Fenced { new_primary: d.get_str()?.to_string(), epoch: d.get_u64()? },
        other => return Err(bad_tag("server error", other)),
    })
}

fn put_result<T>(
    e: &mut Encoder,
    r: &Result<T, ServerError>,
    version: u16,
    mut put_ok: impl FnMut(&mut Encoder, &T),
) {
    match r {
        Ok(v) => {
            e.put_bool(true);
            put_ok(e, v);
        }
        Err(err) => {
            e.put_bool(false);
            encode_server_error(e, err, version);
        }
    }
}

fn get_result<T>(
    d: &mut Decoder<'_>,
    mut get_ok: impl FnMut(&mut Decoder<'_>) -> WireResult<T>,
) -> WireResult<Result<T, ServerError>> {
    if d.get_bool()? {
        Ok(Ok(get_ok(d)?))
    } else {
        Ok(Err(decode_server_error(d)?))
    }
}

// --------------------------------------------------------------------------------------------
// Updates
// --------------------------------------------------------------------------------------------

fn encode_update(e: &mut Encoder, update: &Update) {
    match update {
        Update::CreateObject { class, name } => {
            e.put_u8(0).put_str(class).put_str(name);
        }
        Update::CreateDependent { parent, class_local, value } => {
            e.put_u8(1).put_str(parent).put_str(class_local);
            encode_value(e, value);
        }
        Update::CreateDependentNamed { parent, class_local, name, value } => {
            e.put_u8(2).put_str(parent).put_str(class_local).put_str(name);
            encode_value(e, value);
        }
        Update::SetValue { object, value } => {
            e.put_u8(3).put_str(object);
            encode_value(e, value);
        }
        Update::Reclassify { object, new_class } => {
            e.put_u8(4).put_str(object).put_str(new_class);
        }
        Update::CreateRelationship { association, bindings } => {
            e.put_u8(5).put_str(association);
            put_string_pairs(e, bindings);
        }
        Update::ReclassifyRelationship { association, bindings, new_association } => {
            e.put_u8(6).put_str(association);
            put_string_pairs(e, bindings);
            e.put_str(new_association);
        }
        Update::DeleteObject { object } => {
            e.put_u8(7).put_str(object);
        }
    }
}

fn decode_update(d: &mut Decoder<'_>) -> WireResult<Update> {
    Ok(match d.get_u8()? {
        0 => {
            Update::CreateObject { class: d.get_str()?.to_string(), name: d.get_str()?.to_string() }
        }
        1 => Update::CreateDependent {
            parent: d.get_str()?.to_string(),
            class_local: d.get_str()?.to_string(),
            value: decode_value(d)?,
        },
        2 => Update::CreateDependentNamed {
            parent: d.get_str()?.to_string(),
            class_local: d.get_str()?.to_string(),
            name: d.get_str()?.to_string(),
            value: decode_value(d)?,
        },
        3 => Update::SetValue { object: d.get_str()?.to_string(), value: decode_value(d)? },
        4 => Update::Reclassify {
            object: d.get_str()?.to_string(),
            new_class: d.get_str()?.to_string(),
        },
        5 => Update::CreateRelationship {
            association: d.get_str()?.to_string(),
            bindings: get_string_pairs(d)?,
        },
        6 => Update::ReclassifyRelationship {
            association: d.get_str()?.to_string(),
            bindings: get_string_pairs(d)?,
            new_association: d.get_str()?.to_string(),
        },
        7 => Update::DeleteObject { object: d.get_str()?.to_string() },
        other => return Err(bad_tag("update", other)),
    })
}

// --------------------------------------------------------------------------------------------
// Payload structs
// --------------------------------------------------------------------------------------------

fn encode_checkout_set(e: &mut Encoder, set: &CheckoutSet) {
    e.put_varint(set.objects.len() as u64);
    for o in &set.objects {
        encode_object(e, o);
    }
    e.put_varint(set.relationships.len() as u64);
    for r in &set.relationships {
        encode_relationship(e, r);
    }
}

fn decode_checkout_set(d: &mut Decoder<'_>) -> WireResult<CheckoutSet> {
    let n = d.get_varint()? as usize;
    let mut objects = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        objects.push(decode_object(d)?);
    }
    let n = d.get_varint()? as usize;
    let mut relationships = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        relationships.push(decode_relationship(d)?);
    }
    Ok(CheckoutSet { objects, relationships })
}

fn encode_query_answer(e: &mut Encoder, a: &QueryAnswer) {
    e.put_varint(a.names.len() as u64);
    for name in &a.names {
        e.put_str(name);
    }
    e.put_varint(a.count as u64);
    put_opt_str(e, a.plan.as_deref());
}

fn decode_query_answer(d: &mut Decoder<'_>) -> WireResult<QueryAnswer> {
    let n = d.get_varint()? as usize;
    let mut names = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        names.push(d.get_str()?.to_string());
    }
    let count = d.get_varint()? as usize;
    let plan = get_opt_string(d)?;
    Ok(QueryAnswer { names, count, plan })
}

fn encode_persistence_status(e: &mut Encoder, s: &PersistenceStatus, version: u16) {
    e.put_bool(s.durable);
    put_opt_str(e, s.path.as_deref());
    e.put_u64(s.wal_bytes);
    e.put_varint(s.objects as u64);
    e.put_varint(s.relationships as u64);
    e.put_varint(s.versions as u64);
    if version < 2 {
        // The replication block was added in v2; a v1 peer's decoder reads exactly the six
        // fields above and rejects trailing bytes.
        return;
    }
    match &s.replication {
        Some(r) => {
            e.put_bool(true)
                .put_u8(match r.role {
                    ReplicationRole::Primary => 0,
                    ReplicationRole::Replica => 1,
                })
                .put_u64(r.applied_lsn)
                .put_u64(r.primary_lsn)
                .put_u32(r.subscribers)
                .put_u64(r.min_acked_lsn);
            if version >= 3 {
                // v3 appends the serving snapshot's LSN; a v2 peer's decoder stops at
                // min_acked_lsn and must see exactly the v2 bytes.
                e.put_u64(r.snapshot_lsn);
            }
        }
        None => {
            e.put_bool(false);
        }
    }
}

fn decode_persistence_status(d: &mut Decoder<'_>) -> WireResult<PersistenceStatus> {
    Ok(PersistenceStatus {
        durable: d.get_bool()?,
        path: get_opt_string(d)?,
        wal_bytes: d.get_u64()?,
        objects: d.get_varint()? as usize,
        relationships: d.get_varint()? as usize,
        versions: d.get_varint()? as usize,
        // The replication block is absent on v1 sessions (and the status is the payload's last
        // field), so exhaustion here means "no block", not truncation.
        replication: if d.is_exhausted() || !d.get_bool()? {
            None
        } else {
            Some(ReplicationStatus {
                role: match d.get_u8()? {
                    0 => ReplicationRole::Primary,
                    1 => ReplicationRole::Replica,
                    other => return Err(bad_tag("replication role", other)),
                },
                applied_lsn: d.get_u64()?,
                primary_lsn: d.get_u64()?,
                subscribers: d.get_u32()?,
                min_acked_lsn: d.get_u64()?,
                // Appended in v3; a v2 peer's status simply ends here (the replication block
                // is the payload's last field, so exhaustion means "older peer").
                snapshot_lsn: if d.is_exhausted() { 0 } else { d.get_u64()? },
            })
        },
    })
}

fn encode_schema_summary(e: &mut Encoder, s: &SchemaSummary) {
    e.put_str(&s.name);
    e.put_varint(s.classes.len() as u64);
    for c in &s.classes {
        e.put_str(&c.name);
        put_opt_u32(e, c.owner);
        put_opt_u32(e, c.superclass);
        put_opt_u32(e, c.occurrence_max);
    }
    e.put_varint(s.associations.len() as u64);
    for a in &s.associations {
        e.put_str(&a.name);
        put_opt_u32(e, a.superassociation);
        e.put_varint(a.roles.len() as u64);
        for role in &a.roles {
            e.put_str(role);
        }
    }
}

fn decode_schema_summary(d: &mut Decoder<'_>) -> WireResult<SchemaSummary> {
    let name = d.get_str()?.to_string();
    let n = d.get_varint()? as usize;
    let mut classes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        classes.push(ClassSummary {
            name: d.get_str()?.to_string(),
            owner: get_opt_u32(d)?,
            superclass: get_opt_u32(d)?,
            occurrence_max: get_opt_u32(d)?,
        });
    }
    let n = d.get_varint()? as usize;
    let mut associations = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.get_str()?.to_string();
        let superassociation = get_opt_u32(d)?;
        let role_count = d.get_varint()? as usize;
        let mut roles = Vec::with_capacity(role_count.min(1024));
        for _ in 0..role_count {
            roles.push(d.get_str()?.to_string());
        }
        associations.push(AssociationSummary { name, superassociation, roles });
    }
    Ok(SchemaSummary { name, classes, associations })
}

fn encode_registry_snapshot(e: &mut Encoder, s: &seed_obs::RegistrySnapshot) {
    e.put_varint(s.counters.len() as u64);
    for (name, value) in &s.counters {
        e.put_str(name).put_u64(*value);
    }
    e.put_varint(s.gauges.len() as u64);
    for (name, value) in &s.gauges {
        e.put_str(name).put_u64(*value as u64);
    }
    e.put_varint(s.histograms.len() as u64);
    for h in &s.histograms {
        e.put_str(&h.name).put_u64(h.count).put_u64(h.sum);
        e.put_varint(h.buckets.len() as u64);
        for (bound, cumulative) in &h.buckets {
            e.put_u64(*bound).put_u64(*cumulative);
        }
    }
}

fn decode_registry_snapshot(d: &mut Decoder<'_>) -> WireResult<seed_obs::RegistrySnapshot> {
    let n = d.get_varint()? as usize;
    let mut counters = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        counters.push((d.get_str()?.to_string(), d.get_u64()?));
    }
    let n = d.get_varint()? as usize;
    let mut gauges = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        gauges.push((d.get_str()?.to_string(), d.get_u64()? as i64));
    }
    let n = d.get_varint()? as usize;
    let mut histograms = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.get_str()?.to_string();
        let count = d.get_u64()?;
        let sum = d.get_u64()?;
        let buckets_len = d.get_varint()? as usize;
        let mut buckets = Vec::with_capacity(buckets_len.min(1024));
        for _ in 0..buckets_len {
            buckets.push((d.get_u64()?, d.get_u64()?));
        }
        histograms.push(seed_obs::HistogramSnapshot { name, count, sum, buckets });
    }
    Ok(seed_obs::RegistrySnapshot { counters, gauges, histograms })
}

fn encode_health_status(e: &mut Encoder, h: &HealthStatus) {
    e.put_bool(h.ready)
        .put_u8(match h.role {
            ReplicationRole::Primary => 0,
            ReplicationRole::Replica => 1,
        })
        .put_u64(h.lag)
        .put_u64(h.lag_budget)
        .put_str(&h.detail);
}

fn decode_health_status(d: &mut Decoder<'_>) -> WireResult<HealthStatus> {
    Ok(HealthStatus {
        ready: d.get_bool()?,
        role: match d.get_u8()? {
            0 => ReplicationRole::Primary,
            1 => ReplicationRole::Replica,
            other => return Err(bad_tag("replication role", other)),
        },
        lag: d.get_u64()?,
        lag_budget: d.get_u64()?,
        detail: d.get_str()?.to_string(),
    })
}

fn encode_relationship_info(e: &mut Encoder, info: &RelationshipInfo) {
    e.put_str(&info.association);
    put_string_pairs(e, &info.bindings);
    e.put_bool(info.inherited);
}

fn decode_relationship_info(d: &mut Decoder<'_>) -> WireResult<RelationshipInfo> {
    Ok(RelationshipInfo {
        association: d.get_str()?.to_string(),
        bindings: get_string_pairs(d)?,
        inherited: d.get_bool()?,
    })
}

// --------------------------------------------------------------------------------------------
// Requests
// --------------------------------------------------------------------------------------------

/// Encodes one request into a frame payload.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut e = Encoder::new();
    match request {
        Request::Connect => {
            e.put_u8(0);
        }
        Request::Checkout { client, objects } => {
            e.put_u8(1).put_u64(*client).put_varint(objects.len() as u64);
            for name in objects {
                e.put_str(name);
            }
        }
        Request::Checkin { client, updates } => {
            e.put_u8(2).put_u64(*client).put_varint(updates.len() as u64);
            for update in updates {
                encode_update(&mut e, update);
            }
        }
        Request::Release { client } => {
            e.put_u8(3).put_u64(*client);
        }
        Request::Retrieve { name } => {
            e.put_u8(4).put_str(name);
        }
        Request::Query { text } => {
            e.put_u8(5).put_str(text);
        }
        Request::CreateVersion { comment } => {
            e.put_u8(6).put_str(comment);
        }
        Request::Persistence => {
            e.put_u8(7);
        }
        Request::Checkpoint => {
            e.put_u8(8);
        }
        Request::Schema => {
            e.put_u8(9);
        }
        Request::Children { name } => {
            e.put_u8(10).put_str(name);
        }
        Request::Prefix { prefix } => {
            e.put_u8(11).put_str(prefix);
        }
        Request::RelationshipsOf { name } => {
            e.put_u8(12).put_str(name);
        }
        Request::ObjectsOfClass { class, transitive } => {
            e.put_u8(13).put_str(class).put_bool(*transitive);
        }
        Request::RelationshipCount { association, transitive } => {
            e.put_u8(14).put_str(association).put_bool(*transitive);
        }
        Request::Completeness => {
            e.put_u8(15);
        }
        Request::Shutdown => {
            e.put_u8(16);
        }
        Request::Stats => {
            e.put_u8(17);
        }
        Request::Health => {
            e.put_u8(18);
        }
        Request::Promote { epoch, new_primary } => {
            e.put_u8(19).put_u64(*epoch).put_str(new_primary);
        }
    }
    e.finish()
}

/// Decodes one request from a frame payload.
pub fn decode_request(bytes: &[u8]) -> WireResult<Request> {
    let mut d = Decoder::new(bytes);
    let request = match d.get_u8()? {
        0 => Request::Connect,
        1 => {
            let client = d.get_u64()?;
            let n = d.get_varint()? as usize;
            let mut objects = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                objects.push(d.get_str()?.to_string());
            }
            Request::Checkout { client, objects }
        }
        2 => {
            let client = d.get_u64()?;
            let n = d.get_varint()? as usize;
            let mut updates = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                updates.push(decode_update(&mut d)?);
            }
            Request::Checkin { client, updates }
        }
        3 => Request::Release { client: d.get_u64()? },
        4 => Request::Retrieve { name: d.get_str()?.to_string() },
        5 => Request::Query { text: d.get_str()?.to_string() },
        6 => Request::CreateVersion { comment: d.get_str()?.to_string() },
        7 => Request::Persistence,
        8 => Request::Checkpoint,
        9 => Request::Schema,
        10 => Request::Children { name: d.get_str()?.to_string() },
        11 => Request::Prefix { prefix: d.get_str()?.to_string() },
        12 => Request::RelationshipsOf { name: d.get_str()?.to_string() },
        13 => {
            Request::ObjectsOfClass { class: d.get_str()?.to_string(), transitive: d.get_bool()? }
        }
        14 => Request::RelationshipCount {
            association: d.get_str()?.to_string(),
            transitive: d.get_bool()?,
        },
        15 => Request::Completeness,
        16 => Request::Shutdown,
        17 => Request::Stats,
        18 => Request::Health,
        19 => Request::Promote { epoch: d.get_u64()?, new_primary: d.get_str()?.to_string() },
        other => return Err(bad_tag("request", other)),
    };
    if !d.is_exhausted() {
        return Err(WireError::Recoverable(format!(
            "{} trailing bytes after request",
            d.remaining()
        )));
    }
    Ok(request)
}

// --------------------------------------------------------------------------------------------
// Responses
// --------------------------------------------------------------------------------------------

fn encode_records(e: &mut Encoder, records: &[seed_core::ObjectRecord]) {
    e.put_varint(records.len() as u64);
    for r in records {
        encode_object(e, r);
    }
}

fn decode_records(d: &mut Decoder<'_>) -> WireResult<Vec<seed_core::ObjectRecord>> {
    let n = d.get_varint()? as usize;
    let mut records = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        records.push(decode_object(d)?);
    }
    Ok(records)
}

/// Encodes one response into a frame payload, at the newest protocol version.
pub fn encode_response(response: &Response) -> Vec<u8> {
    encode_response_versioned(response, crate::wire::PROTOCOL_VERSION)
}

/// Encodes one response for a session that negotiated `version`.  v1 sessions never see the
/// v2 additions: the replication block of the persistence status is omitted and the
/// `ReadOnlyReplica` error degrades to a `Protocol` error — a v1 frame stays byte-identical to
/// what a v1 build would have produced (`docs/PROTOCOL.md` §5).
pub fn encode_response_versioned(response: &Response, version: u16) -> Vec<u8> {
    let mut e = Encoder::new();
    match response {
        Response::Connected(id) => {
            e.put_u8(0).put_u64(*id);
        }
        Response::Checkout(result) => {
            e.put_u8(1);
            put_result(&mut e, result, version, encode_checkout_set);
        }
        Response::Ack(result) => {
            e.put_u8(2);
            put_result(&mut e, result, version, |_, ()| {});
        }
        Response::Object(result) => {
            e.put_u8(3);
            put_result(&mut e, result, version, encode_object);
        }
        Response::Answer(result) => {
            e.put_u8(4);
            put_result(&mut e, result, version, encode_query_answer);
        }
        Response::Version(result) => {
            e.put_u8(5);
            put_result(&mut e, result, version, |e, v: &VersionId| {
                e.put_str(&v.to_string());
            });
        }
        Response::Persistence(status) => {
            e.put_u8(6);
            encode_persistence_status(&mut e, status, version);
        }
        Response::Schema(summary) => {
            e.put_u8(7);
            encode_schema_summary(&mut e, summary);
        }
        Response::Objects(result) => {
            e.put_u8(8);
            put_result(&mut e, result, version, |e, records: &Vec<_>| encode_records(e, records));
        }
        Response::Relationships(result) => {
            e.put_u8(9);
            put_result(&mut e, result, version, |e, infos: &Vec<RelationshipInfo>| {
                e.put_varint(infos.len() as u64);
                for info in infos {
                    encode_relationship_info(e, info);
                }
            });
        }
        Response::Count(result) => {
            e.put_u8(10);
            put_result(&mut e, result, version, |e, n: &usize| {
                e.put_varint(*n as u64);
            });
        }
        Response::Error(err) => {
            e.put_u8(11);
            encode_server_error(&mut e, err, version);
        }
        Response::ShuttingDown => {
            e.put_u8(12);
        }
        // Tags 13/14 answer the v3-era Stats/Health requests.  No per-version shaping: a peer
        // that can send the request can decode the reply, and older peers never see these tags
        // because they cannot ask.
        Response::Stats(snapshot) => {
            e.put_u8(13);
            encode_registry_snapshot(&mut e, snapshot);
        }
        Response::Health(health) => {
            e.put_u8(14);
            encode_health_status(&mut e, health);
        }
        // Tag 15 answers the v3-era Promote request — same reasoning as Stats/Health: only a
        // peer that can ask ever sees it.
        Response::Promoted(result) => {
            e.put_u8(15);
            put_result(&mut e, result, version, |e, receipt: &PromotionReceipt| {
                e.put_u64(receipt.epoch).put_u64(receipt.last_lsn);
            });
        }
    }
    e.finish()
}

/// Decodes one response from a frame payload.
pub fn decode_response(bytes: &[u8]) -> WireResult<Response> {
    let mut d = Decoder::new(bytes);
    let response = match d.get_u8()? {
        0 => Response::Connected(d.get_u64()?),
        1 => Response::Checkout(get_result(&mut d, decode_checkout_set)?),
        2 => Response::Ack(get_result(&mut d, |_| Ok(()))?),
        3 => Response::Object(get_result(&mut d, |d| Ok(decode_object(d)?))?),
        4 => Response::Answer(get_result(&mut d, decode_query_answer)?),
        5 => Response::Version(get_result(&mut d, |d| {
            VersionId::parse(d.get_str()?).map_err(WireError::from)
        })?),
        6 => Response::Persistence(decode_persistence_status(&mut d)?),
        7 => Response::Schema(decode_schema_summary(&mut d)?),
        8 => Response::Objects(get_result(&mut d, decode_records)?),
        9 => Response::Relationships(get_result(&mut d, |d| {
            let n = d.get_varint()? as usize;
            let mut infos = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                infos.push(decode_relationship_info(d)?);
            }
            Ok(infos)
        })?),
        10 => Response::Count(get_result(&mut d, |d| Ok(d.get_varint()? as usize))?),
        11 => Response::Error(decode_server_error(&mut d)?),
        12 => Response::ShuttingDown,
        13 => Response::Stats(decode_registry_snapshot(&mut d)?),
        14 => Response::Health(decode_health_status(&mut d)?),
        15 => Response::Promoted(get_result(&mut d, |d| {
            Ok(PromotionReceipt { epoch: d.get_u64()?, last_lsn: d.get_u64()? })
        })?),
        other => return Err(bad_tag("response", other)),
    };
    if !d.is_exhausted() {
        return Err(WireError::Recoverable(format!(
            "{} trailing bytes after response",
            d.remaining()
        )));
    }
    Ok(response)
}
