//! Errors of the multi-user extension.

use std::fmt;

/// Result alias for server operations.
pub type ServerResult<T> = Result<T, ServerError>;

/// Errors raised by the central server or a client session.
#[derive(Debug)]
pub enum ServerError {
    /// An object a client wants to check out is write-locked by another client.
    Locked {
        /// Name of the locked object.
        object: String,
        /// The client currently holding the lock.
        holder: u64,
    },
    /// A check-in touched an object the client never checked out.
    NotCheckedOut(String),
    /// The central database rejected the check-in transaction.
    Rejected(seed_core::SeedError),
    /// The requested object or client is unknown.
    Unknown(String),
    /// A retrieval-language query failed to parse or execute.
    Query(String),
    /// The server thread is gone (channel disconnected).
    Disconnected,
    /// The network transport failed (connection refused, reset, closed mid-reply).
    Transport(String),
    /// The peer violated the wire protocol (handshake failure, malformed frame, a request
    /// claiming another connection's client identity).
    Protocol(String),
    /// The node is a read-only replica: writes (checkout, check-in, version creation) must be
    /// redirected to the primary it replicates from.
    ReadOnlyReplica {
        /// Address of the primary this replica follows — where the client should reconnect for
        /// writes.
        primary: String,
    },
    /// This node was fenced: a replica was promoted past it, and it must never accept another
    /// write (split-brain prevention).  Clients reconnect to the new primary.
    Fenced {
        /// Address of the primary that superseded this node.
        new_primary: String,
        /// The topology epoch of the promotion that fenced it.
        epoch: u64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Locked { object, holder } => {
                write!(f, "'{object}' is write-locked by client {holder}")
            }
            ServerError::NotCheckedOut(name) => {
                write!(f, "'{name}' was not checked out by this client")
            }
            ServerError::Rejected(e) => write!(f, "check-in rejected: {e}"),
            ServerError::Unknown(what) => write!(f, "unknown: {what}"),
            ServerError::Query(message) => write!(f, "query failed: {message}"),
            ServerError::Disconnected => write!(f, "server disconnected"),
            ServerError::Transport(message) => write!(f, "transport failed: {message}"),
            ServerError::Protocol(message) => write!(f, "protocol violation: {message}"),
            ServerError::ReadOnlyReplica { primary } => {
                write!(
                    f,
                    "this node is a read-only replica; send writes to the primary at {primary}"
                )
            }
            ServerError::Fenced { new_primary, epoch } => {
                write!(
                    f,
                    "this node was fenced at topology epoch {epoch}; \
                     the primary is now at {new_primary}"
                )
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<seed_core::SeedError> for ServerError {
    fn from(e: seed_core::SeedError) -> Self {
        ServerError::Rejected(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServerError::Locked { object: "Alarms".into(), holder: 3 };
        assert!(e.to_string().contains("Alarms"));
        assert!(e.to_string().contains("client 3"));
        let e: ServerError = seed_core::SeedError::NotFound("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServerError::Disconnected).is_none());
    }
}
