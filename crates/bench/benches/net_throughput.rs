//! E11 — the network frontend: remote read throughput over loopback as the number of
//! concurrent TCP clients grows, against the single-client baseline.
//!
//! Each iteration runs a fixed batch of `retrieve` round-trips spread across the clients; the
//! interesting number is how the per-iteration time shrinks (or at least holds) as clients are
//! added — reads proceed in parallel on the server's read–write lock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seed_bench::populated_database;
use seed_net::{RemoteClient, SeedNetServer};
use seed_server::SeedServer;

const OBJECTS: usize = 500;
const OPS_PER_ITER: usize = 400;

fn remote_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_remote_reads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for clients in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, &clients| {
            let server =
                SeedNetServer::bind(SeedServer::new(populated_database(OBJECTS)), "127.0.0.1:0")
                    .expect("bind loopback");
            let addr = server.local_addr();
            b.iter(|| {
                let ops_each = OPS_PER_ITER / clients;
                let workers: Vec<_> = (0..clients)
                    .map(|w| {
                        std::thread::spawn(move || {
                            let mut client = RemoteClient::connect(addr).expect("connect");
                            for i in 0..ops_each {
                                let name = format!("Data{:05}", (w * 131 + i) % OBJECTS);
                                client.retrieve(&name).expect("retrieve");
                            }
                            ops_each
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().expect("worker")).sum::<usize>()
            });
            server.shutdown();
        });
    }
    group.finish();
}

criterion_group!(benches, remote_reads);
criterion_main!(benches);
