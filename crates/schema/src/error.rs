//! Error types for schema construction and parsing.

use std::fmt;

/// Result alias used throughout `seed-schema`.
pub type SchemaResult<T> = Result<T, SchemaError>;

/// Errors raised while building, parsing or querying a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// An association name was declared twice.
    DuplicateAssociation(String),
    /// A referenced class does not exist.
    UnknownClass(String),
    /// A referenced association does not exist.
    UnknownAssociation(String),
    /// A referenced role does not exist on the association.
    UnknownRole { association: String, role: String },
    /// A cardinality string or pair could not be interpreted.
    InvalidCardinality(String),
    /// A generalization would introduce a cycle (a class cannot be its own ancestor).
    GeneralizationCycle(String),
    /// A dependent-class declaration would introduce a cycle.
    DependencyCycle(String),
    /// The schema definition language input was malformed.
    Parse { line: usize, column: usize, message: String },
    /// Catch-all for invalid schema manipulation.
    Invalid(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateClass(n) => write!(f, "class '{n}' declared more than once"),
            SchemaError::DuplicateAssociation(n) => {
                write!(f, "association '{n}' declared more than once")
            }
            SchemaError::UnknownClass(n) => write!(f, "unknown class '{n}'"),
            SchemaError::UnknownAssociation(n) => write!(f, "unknown association '{n}'"),
            SchemaError::UnknownRole { association, role } => {
                write!(f, "association '{association}' has no role '{role}'")
            }
            SchemaError::InvalidCardinality(s) => write!(f, "invalid cardinality '{s}'"),
            SchemaError::GeneralizationCycle(n) => {
                write!(f, "generalization cycle involving '{n}'")
            }
            SchemaError::DependencyCycle(n) => write!(f, "dependent-class cycle involving '{n}'"),
            SchemaError::Parse { line, column, message } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
            SchemaError::Invalid(msg) => write!(f, "invalid schema operation: {msg}"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchemaError::UnknownRole { association: "Read".into(), role: "onto".into() };
        assert!(e.to_string().contains("Read"));
        assert!(e.to_string().contains("onto"));
        let p = SchemaError::Parse { line: 3, column: 14, message: "expected '{'".into() };
        assert!(p.to_string().contains("3:14"));
    }
}
