//! Offline stand-in for the parts of `crossbeam` the workspace uses: the `channel` module.
//!
//! Backed by [`std::sync::mpsc`], whose `Sender`/`Receiver`/`send`/`recv` signatures match the
//! crossbeam ones for the mpsc usage pattern in `seed-server` (cloneable senders, a single
//! receiving server thread, per-request reply channels).  Crossbeam's mpmc extensions
//! (cloneable receivers, `select!`) are intentionally not provided; adding a use of them is the
//! signal to restore the crates.io dependency in the root `Cargo.toml`.

pub mod channel {
    //! Multi-producer channels with the `crossbeam_channel` API shape.

    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Creates an unbounded channel, like `crossbeam_channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fan_in_and_reply() {
        let (tx, rx) = unbounded::<(u32, std::sync::mpsc::Sender<u32>)>();
        let server = std::thread::spawn(move || {
            while let Ok((n, reply)) = rx.recv() {
                if n == 0 {
                    break;
                }
                reply.send(n * 2).unwrap();
            }
        });
        let mut workers = Vec::new();
        for i in 1..=4u32 {
            let tx = tx.clone();
            workers.push(std::thread::spawn(move || {
                let (rtx, rrx) = unbounded();
                tx.send((i, rtx)).unwrap();
                rrx.recv().unwrap()
            }));
        }
        let mut results: Vec<u32> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, vec![2, 4, 6, 8]);
        let (rtx, _rrx) = unbounded();
        tx.send((0, rtx)).unwrap();
        server.join().unwrap();
    }
}
