//! Observability over the wire: the `Stats` and `Health` frames round-trip over loopback, the
//! per-kind request histograms count exactly what the client issued, and a mixed workload
//! (writes, queries, a checkpoint, a live replica) leaves nonzero, mutually consistent counters
//! in every instrumented layer — net, WAL, snapshot publication and replication.
//!
//! The registry is process-global, so everything that needs an exact count measures a *delta*
//! between two `Stats` snapshots inside one test.

use std::time::Duration;

use seed::core::Database;
use seed::net::{RemoteClient, ReplicaNode, SeedNetServer};
use seed::schema::figure3_schema;
use seed::server::{ReplicationRole, SeedServer, Update};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("seed-obs-loopback-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn stats_and_health_round_trip_with_consistent_counters_after_a_mixed_workload() {
    if !seed::obs::recording_compiled_in() {
        return; // compiled with seed-obs/off: there is nothing to count
    }
    let primary_dir = temp_dir("primary");
    let replica_dir = temp_dir("replica");
    let db = Database::create_durable(&primary_dir, figure3_schema()).unwrap();
    let primary = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap();
    let addr = primary.local_addr();

    // Mixed workload: durable writes (WAL appends + fsyncs + snapshot publishes), queries,
    // a checkpoint, and a replica applying the shipped batches.
    let mut client = RemoteClient::connect(addr).unwrap();
    client
        .checkin(vec![
            Update::CreateObject { class: "Data".into(), name: "Alarms".into() },
            Update::CreateObject { class: "Action".into(), name: "Sensor".into() },
        ])
        .unwrap();
    let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
    client
        .checkin(vec![Update::CreateObject { class: "Data".into(), name: "Later".into() }])
        .unwrap();
    client.query("count Data").unwrap();
    client.checkpoint().unwrap();
    let target = primary.core().with_database(|db| db.durable_lsn().unwrap());
    assert!(replica.wait_for_lsn(target, Duration::from_secs(10)), "replica lagged out");

    // Exact per-kind latency counts: N retrieves move net_request_us_retrieve by exactly N.
    let before = client.stats().unwrap();
    const BURST: u64 = 17;
    for _ in 0..BURST {
        client.retrieve("Alarms").unwrap();
    }
    let after = client.stats().unwrap();
    let count = |s: &seed::obs::RegistrySnapshot| {
        s.histogram("net_request_us_retrieve").map_or(0, |h| h.count)
    };
    assert_eq!(
        count(&after) - count(&before),
        BURST,
        "request-latency observations must equal requests issued"
    );

    // Every instrumented layer left a nonzero footprint.
    let stats = after;
    for counter in ["net_bytes_in_total", "net_bytes_out_total", "net_connections_total"] {
        assert!(stats.counter(counter).unwrap_or(0) > 0, "{counter} must be nonzero");
    }
    for histogram in ["wal_append_us", "wal_fsync_us", "snapshot_publish_us"] {
        let h = stats.histogram(histogram).unwrap_or_else(|| panic!("{histogram} missing"));
        assert!(h.count > 0, "{histogram} must have observations");
        assert!(h.p50() <= h.p99(), "{histogram}: percentiles must be monotone");
    }
    assert!(stats.counter("wal_checkpoints_total").unwrap_or(0) > 0);
    // Replication: the primary shipped batches, the in-process replica applied them, and its
    // ack-lag gauge settled at zero once caught up.
    assert!(stats.counter("repl_batches_shipped_total").unwrap_or(0) > 0);
    assert!(stats.counter("repl_batches_applied_total").unwrap_or(0) > 0);
    assert_eq!(stats.gauge("repl_ack_lag"), Some(0), "caught-up replica reports zero lag");

    // Health: the primary is live and ready (its WAL is writable)...
    let health = client.health().unwrap();
    assert!(health.ready, "durable primary must be ready: {}", health.detail);
    assert_eq!(health.role, ReplicationRole::Primary);
    // ...and the replica reports readiness against its lag budget.
    let mut replica_client = RemoteClient::connect(replica.local_addr()).unwrap();
    let replica_health = replica_client.health().unwrap();
    assert!(replica_health.ready, "caught-up replica must be ready: {}", replica_health.detail);
    assert_eq!(replica_health.role, ReplicationRole::Replica);
    assert!(replica_health.lag <= replica_health.lag_budget);

    // The same registry renders as Prometheus text exposition.
    let text = primary.metrics_text();
    assert!(text.contains("# TYPE net_bytes_in_total counter"), "missing TYPE line:\n{text}");
    assert!(text.contains("wal_append_us_bucket{le=\"+Inf\"}"), "missing histogram bucket");
    assert!(text.contains("net_connections "), "missing gauge sample");

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

#[test]
fn failover_flips_health_and_resets_the_ack_lag_gauge() {
    if !seed::obs::recording_compiled_in() {
        return; // compiled with seed-obs/off: gauges and health detail are not recorded
    }
    let primary_dir = temp_dir("fo-primary");
    let replica_dir = temp_dir("fo-replica");
    let db = Database::create_durable(&primary_dir, figure3_schema()).unwrap();
    let primary = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap();
    let old_addr = primary.local_addr();
    let replica = ReplicaNode::start(&replica_dir, old_addr, "127.0.0.1:0").unwrap();
    let new_addr = replica.local_addr();

    let mut client = RemoteClient::connect(old_addr).unwrap();
    client
        .checkin(vec![Update::CreateObject { class: "Data".into(), name: "Alarms".into() }])
        .unwrap();
    let target = primary.core().with_database(|db| db.durable_lsn().unwrap());
    assert!(replica.wait_for_lsn(target, Duration::from_secs(10)), "replica lagged out");

    // Before the failover both nodes are ready in their respective roles.
    let mut replica_client = RemoteClient::connect(new_addr).unwrap();
    assert!(client.health().unwrap().ready);
    assert!(replica_client.health().unwrap().ready);

    // The gauge is registered by name (names are the identity), so this writes to the very
    // gauge the replication layer owns.  A caught-up replica already reports 0; planting a
    // stale value is the deterministic way to observe the promotion path's explicit reset.
    seed::obs::global().gauge("repl_ack_lag").set(7);

    let receipt = replica_client.promote(1, &new_addr.to_string()).unwrap();
    assert_eq!(receipt.epoch, 1);

    // Promotion resets the ack-lag gauge: the node no longer trails anyone.
    assert_eq!(
        seed::obs::global().snapshot().gauge("repl_ack_lag"),
        Some(0),
        "promotion must reset repl_ack_lag"
    );

    // Health flips: the fenced old primary answers (liveness) but is no longer ready, and its
    // detail names the fencing epoch; the promoted node reports a ready primary.
    let fenced = client.health().unwrap();
    assert!(!fenced.ready, "a fenced node must not report ready: {}", fenced.detail);
    assert!(fenced.detail.contains("fenced at epoch 1"), "detail: {}", fenced.detail);
    let promoted = replica_client.health().unwrap();
    assert!(promoted.ready, "the promoted node must be ready: {}", promoted.detail);
    assert_eq!(promoted.role, ReplicationRole::Primary);
    assert_eq!(promoted.lag, 0, "a primary never lags itself");

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

#[test]
fn slow_operations_land_in_the_event_ring_with_query_text() {
    if !seed::obs::recording_compiled_in() {
        return;
    }
    let registry = seed::obs::global();
    let mut db = Database::new(figure3_schema());
    db.create_object("Data", "Alarms").unwrap();
    let server = SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap();
    let mut client = RemoteClient::connect(server.local_addr()).unwrap();

    // With a zero threshold every operation is "slow": the next query must be recorded with
    // its kind and text.  The default is restored before asserting so a parallel test is only
    // briefly affected (slow-op counts are never exact-matched across tests).
    let previous = registry.slow_op_threshold();
    registry.set_slow_op_threshold(Duration::ZERO);
    let slow_before = registry.snapshot().counter("slow_ops_total").unwrap_or(0);
    client.query(r#"find Data where name prefix "Alarm""#).unwrap();
    registry.set_slow_op_threshold(previous);

    let slow_after = registry.snapshot().counter("slow_ops_total").unwrap_or(0);
    assert!(slow_after > slow_before, "the query must have been counted as a slow op");
    let events = registry.events().recent();
    let slowop = events
        .iter()
        .rev()
        .find(|e| e.target == "slowop" && e.fields.iter().any(|(k, v)| k == "kind" && v == "query"))
        .expect("a slowop event for the query must be in the ring");
    assert!(
        slowop.fields.iter().any(|(k, v)| k == "text" && v.contains("Alarm")),
        "the slow-op event must carry the query text: {slowop:?}"
    );
    server.shutdown();
}
