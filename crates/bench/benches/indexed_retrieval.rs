//! E9 — indexed retrieval vs. the full-scan fallback, swept over database size.
//!
//! The planner answers value-equality queries with a secondary-index probe (`O(log n)`) where
//! the scan path walks the full extent (`O(n)`); the sweep over database sizes makes the
//! asymptotic gap visible, and `explain` confirms the access path being measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seed_query::{execute, execute_scan, parse};

fn point_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_point_query");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for size in [1000usize, 10_000] {
        let db = seed_bench::valued_database(size);
        let query = parse(&format!("count Item where value = \"{}\"", size / 2)).unwrap();
        // Sanity: the planner really chose the index probe.
        let plan = seed_query::plan(&db, &query).unwrap().render();
        assert!(plan.contains("probe value index"), "unexpected plan: {plan}");
        group.bench_with_input(BenchmarkId::new("indexed", size), &db, |b, db| {
            b.iter(|| execute(db, &query).unwrap().count())
        });
        group.bench_with_input(BenchmarkId::new("scan", size), &db, |b, db| {
            b.iter(|| execute_scan(db, &query).unwrap().count())
        });
    }
    group.finish();
}

fn range_and_prefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_range_and_prefix");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let size = 10_000usize;
    let db = seed_bench::valued_database(size);
    // Narrow range selection: the index touches ~16 entries, the scan touches all 10k.
    let range = parse(&format!("count Item where value > \"{}\"", size - 16)).unwrap();
    group.bench_function("range_indexed", |b| b.iter(|| execute(&db, &range).unwrap().count()));
    group.bench_function("range_scan", |b| b.iter(|| execute_scan(&db, &range).unwrap().count()));
    // Narrow name-prefix selection: range scan of the name index vs. extent filtering.
    let prefix = parse(r#"count Item where name prefix "Item00001""#).unwrap();
    group.bench_function("prefix_indexed", |b| b.iter(|| execute(&db, &prefix).unwrap().count()));
    group.bench_function("prefix_scan", |b| b.iter(|| execute_scan(&db, &prefix).unwrap().count()));
    group.finish();
}

criterion_group!(benches, point_query, range_and_prefix);
criterion_main!(benches);
