//! # seed-storage
//!
//! Storage substrate for the SEED DBMS reproduction (Glinz & Ludewig, ICDE 1986).
//!
//! The 1986 SEED prototype was "implemented in a straightforward manner, deriving the
//! implementation concepts from the model".  A DBMS of that era nonetheless needs a record
//! store; this crate provides the persistent machinery the upper layers sit on:
//!
//! * [`page`] — fixed-size slotted pages holding variable-length records,
//! * [`pagestore`] — page-granular I/O backends (in-memory and file-backed),
//! * [`buffer`] — an LRU buffer pool mediating page access,
//! * [`heapfile`] — record-level storage with stable [`RecordId`]s and free-space tracking,
//! * [`wal`] — a segmented write-ahead log with CRC-protected frames, whole-segment checkpoint
//!   pruning, replication retention, and parallel redo recovery,
//! * [`btree`] — an ordered in-memory B+ tree used for the name index, persisted on checkpoint,
//! * [`engine`] — a small key/value storage engine tying the pieces together.
//!
//! The engine exposes exactly what `seed-core` needs: durable `put`/`get`/`delete`/`scan_prefix`
//! over byte keys plus checkpoint/recovery.  Higher-level notions (objects, relationships,
//! versions, patterns) live in `seed-core`.

pub mod btree;
pub mod buffer;
pub mod codec;
pub mod engine;
pub mod error;
pub mod heapfile;
pub mod page;
pub mod pagestore;
pub mod wal;

pub use btree::BPlusTree;
pub use buffer::BufferPool;
pub use codec::{Decoder, Encoder};
pub use engine::{EngineConfig, StorageEngine, TxnId};
pub use error::{StorageError, StorageResult};
pub use heapfile::{HeapFile, RecordId};
pub use page::{Page, PageId, PAGE_SIZE};
pub use pagestore::{FilePageStore, MemoryPageStore, PageStore};
pub use wal::{
    replay_committed, FileSegmentIo, KeyEffect, LogRecord, Lsn, MemorySegmentIo, SegmentId,
    SegmentIo, WalConfig, WalTail, WriteAheadLog,
};
