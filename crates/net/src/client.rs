//! The blocking remote client: the workstation side of the two-level scheme, over TCP.
//!
//! [`RemoteClient`] exposes the same checkout / check-in / query surface as the in-process
//! server API, so application code (the SPADES tool, the examples) runs unmodified over
//! loopback or a real network.  The client id is assigned by the server at handshake and bound
//! to the connection — it is filled in automatically on every lock-table request.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use seed_core::{ObjectRecord, Value, VersionId};
use seed_server::{
    CheckoutSet, ClientId, PersistenceStatus, QueryAnswer, RelationshipInfo, Request, Response,
    SchemaSummary, ServerError, ServerResult, Update,
};

use crate::codec::{decode_response, encode_request};
use crate::wire::{read_frame, write_frame, FrameKind, Hello, Welcome};

/// A blocking connection to a [`crate::SeedNetServer`].
pub struct RemoteClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    client: ClientId,
    version: u16,
    banner: String,
    schema: Option<SchemaSummary>,
}

fn transport(e: impl std::fmt::Display) -> ServerError {
    ServerError::Transport(e.to_string())
}

impl RemoteClient {
    /// Connects and performs the handshake (protocol version negotiation, client id
    /// assignment).
    pub fn connect(addr: impl ToSocketAddrs) -> ServerResult<Self> {
        Self::connect_as(addr, "seed-net client")
    }

    /// Like [`RemoteClient::connect`], with an explicit agent string for the server's logs.
    pub fn connect_as(addr: impl ToSocketAddrs, agent: &str) -> ServerResult<Self> {
        let stream = TcpStream::connect(addr).map_err(transport)?;
        stream.set_nodelay(true).map_err(transport)?;
        let mut reader = BufReader::new(stream.try_clone().map_err(transport)?);
        let mut writer = BufWriter::new(stream);
        write_frame(&mut writer, FrameKind::Hello, &Hello::current(agent).encode())
            .map_err(ServerError::from)?;
        let frame = read_frame(&mut reader).map_err(ServerError::from)?;
        match frame.kind {
            FrameKind::Welcome => {
                let welcome = Welcome::decode(&frame.payload).map_err(ServerError::from)?;
                Ok(Self {
                    reader,
                    writer,
                    client: welcome.client_id,
                    version: welcome.version,
                    banner: welcome.banner,
                    schema: None,
                })
            }
            FrameKind::Reject => {
                Err(ServerError::Protocol(String::from_utf8_lossy(&frame.payload).into_owned()))
            }
            other => Err(ServerError::Protocol(format!(
                "handshake expected welcome or reject, got {other:?}"
            ))),
        }
    }

    /// The client id this connection is bound to.
    pub fn id(&self) -> ClientId {
        self.client
    }

    /// The negotiated protocol version.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// The server's handshake banner.
    pub fn server_banner(&self) -> &str {
        &self.banner
    }

    /// Sends one request and waits for the server's reply.  A [`Response::Error`] reply (the
    /// server rejected the frame as such) is surfaced as the contained error.
    pub fn call(&mut self, request: Request) -> ServerResult<Response> {
        write_frame(&mut self.writer, FrameKind::Request, &encode_request(&request))
            .map_err(ServerError::from)?;
        let frame = read_frame(&mut self.reader).map_err(ServerError::from)?;
        match frame.kind {
            FrameKind::Response => match decode_response(&frame.payload)? {
                Response::Error(e) => Err(e),
                response => Ok(response),
            },
            FrameKind::Reject => {
                Err(ServerError::Protocol(String::from_utf8_lossy(&frame.payload).into_owned()))
            }
            other => Err(ServerError::Protocol(format!("unexpected {other:?} frame"))),
        }
    }

    /// Checks out the named objects, taking central write locks for this client.
    pub fn checkout(&mut self, names: &[&str]) -> ServerResult<CheckoutSet> {
        let request = Request::Checkout {
            client: self.client,
            objects: names.iter().map(|s| s.to_string()).collect(),
        };
        match self.call(request)? {
            Response::Checkout(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Checks a batch of updates in as one central transaction, releasing this client's locks
    /// on success.
    pub fn checkin(&mut self, updates: Vec<Update>) -> ServerResult<()> {
        match self.call(Request::Checkin { client: self.client, updates })? {
            Response::Ack(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Releases all of this client's locks without checking anything in.
    pub fn release(&mut self) -> ServerResult<()> {
        match self.call(Request::Release { client: self.client })? {
            Response::Ack(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Retrieves one object by name.
    pub fn retrieve(&mut self, name: &str) -> ServerResult<ObjectRecord> {
        match self.call(Request::Retrieve { name: name.to_string() })? {
            Response::Object(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Evaluates a retrieval-language query (or an `explain`).
    pub fn query(&mut self, text: &str) -> ServerResult<QueryAnswer> {
        match self.call(Request::Query { text: text.to_string() })? {
            Response::Answer(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The rendered physical plan for a query (prepends `explain` when absent).
    pub fn explain(&mut self, text: &str) -> ServerResult<String> {
        let text = text.trim();
        let explained =
            if text.starts_with("explain") { text.to_string() } else { format!("explain {text}") };
        self.query(&explained)?.plan.ok_or_else(|| {
            ServerError::Query("explain produced no plan (not a find/count query?)".to_string())
        })
    }

    /// Creates a global version snapshot on the central database.
    pub fn create_version(&mut self, comment: &str) -> ServerResult<VersionId> {
        match self.call(Request::CreateVersion { comment: comment.to_string() })? {
            Response::Version(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The durability state of the central database.
    pub fn persistence(&mut self) -> ServerResult<PersistenceStatus> {
        match self.call(Request::Persistence)? {
            Response::Persistence(status) => Ok(status),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Asks the server to checkpoint its durable storage.
    pub fn checkpoint(&mut self) -> ServerResult<()> {
        match self.call(Request::Checkpoint)? {
            Response::Ack(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// A structural summary of the server's schema (fetched once, then cached).
    pub fn schema(&mut self) -> ServerResult<SchemaSummary> {
        if let Some(schema) = &self.schema {
            return Ok(schema.clone());
        }
        match self.call(Request::Schema)? {
            Response::Schema(summary) => {
                self.schema = Some(summary.clone());
                Ok(summary)
            }
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The (materialized) children of an object.
    pub fn children(&mut self, name: &str) -> ServerResult<Vec<ObjectRecord>> {
        match self.call(Request::Children { name: name.to_string() })? {
            Response::Objects(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// All objects whose hierarchical name starts with `prefix`.
    pub fn objects_with_prefix(&mut self, prefix: &str) -> ServerResult<Vec<ObjectRecord>> {
        match self.call(Request::Prefix { prefix: prefix.to_string() })? {
            Response::Objects(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The relationships an object participates in, rendered by name.
    pub fn relationships_of(&mut self, name: &str) -> ServerResult<Vec<RelationshipInfo>> {
        match self.call(Request::RelationshipsOf { name: name.to_string() })? {
            Response::Relationships(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// The extent of a class by name.
    pub fn objects_of_class(
        &mut self,
        class: &str,
        transitive: bool,
    ) -> ServerResult<Vec<ObjectRecord>> {
        let request = Request::ObjectsOfClass { class: class.to_string(), transitive };
        match self.call(request)? {
            Response::Objects(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Counts the live relationships of an association (optionally with specializations).
    pub fn relationship_count(
        &mut self,
        association: &str,
        transitive: bool,
    ) -> ServerResult<usize> {
        let request =
            Request::RelationshipCount { association: association.to_string(), transitive };
        match self.call(request)? {
            Response::Count(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Number of completeness findings on the central database.
    pub fn completeness_count(&mut self) -> ServerResult<usize> {
        match self.call(Request::Completeness)? {
            Response::Count(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: sets a value through a one-shot checkout/check-in cycle.
    pub fn quick_set_value(&mut self, object: &str, value: Value) -> ServerResult<()> {
        self.checkout(&[object])?;
        self.checkin(vec![Update::SetValue { object: object.to_string(), value }])
    }

    /// Closes the session politely (the server releases this client's locks either way).
    pub fn close(mut self) -> ServerResult<()> {
        match self.call(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ServerError::Disconnected),
        }
    }
}
