//! Run-time registry for named attached procedures.
//!
//! Declarative attached procedures ([`seed_schema::AttachedProcedure`]'s value constraints) are
//! evaluated directly by the consistency checker.  `Named` procedures are looked up here, which
//! lets an application — such as the SPADES tool — register arbitrary Rust hooks that run
//! whenever an item of the corresponding schema element is updated.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use seed_schema::ProcedureEvent;

use crate::ident::ItemId;
use crate::value::Value;

/// Information handed to a named attached procedure when it fires.
#[derive(Debug, Clone)]
pub struct ProcedureContext<'a> {
    /// What happened to the item.
    pub event: ProcedureEvent,
    /// The item being created / updated / deleted.
    pub item: ItemId,
    /// The item's (new) value, if the operation concerns a value.
    pub value: Option<&'a Value>,
    /// The item's name (for objects) or association name (for relationships).
    pub subject: &'a str,
}

/// Signature of a named attached procedure: return `Err(reason)` to veto the update.
pub type ProcedureFn = dyn Fn(&ProcedureContext<'_>) -> Result<(), String> + Send + Sync;

/// Registry mapping procedure names to their implementations.
#[derive(Clone, Default)]
pub struct ProcedureRegistry {
    procedures: HashMap<String, Arc<ProcedureFn>>,
}

impl fmt::Debug for ProcedureRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.procedures.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("ProcedureRegistry").field("procedures", &names).finish()
    }
}

impl ProcedureRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a procedure under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&ProcedureContext<'_>) -> Result<(), String> + Send + Sync + 'static,
    {
        self.procedures.insert(name.into(), Arc::new(f));
    }

    /// Whether a procedure with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.procedures.contains_key(name)
    }

    /// Runs the named procedure.  An unregistered name is treated as a veto, so that a schema
    /// referring to a missing hook fails loudly instead of silently skipping its constraint.
    pub fn run(&self, name: &str, ctx: &ProcedureContext<'_>) -> Result<(), String> {
        match self.procedures.get(name) {
            Some(f) => f(ctx),
            None => Err(format!("attached procedure '{name}' is not registered")),
        }
    }

    /// Names of all registered procedures (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.procedures.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::ObjectId;

    fn ctx<'a>(value: Option<&'a Value>) -> ProcedureContext<'a> {
        ProcedureContext {
            event: ProcedureEvent::Update,
            item: ItemId::Object(ObjectId(1)),
            value,
            subject: "Alarms",
        }
    }

    #[test]
    fn registered_procedures_run() {
        let mut reg = ProcedureRegistry::new();
        reg.register("must_be_positive", |ctx| match ctx.value {
            Some(Value::Integer(i)) if *i > 0 => Ok(()),
            _ => Err("value must be a positive integer".to_string()),
        });
        assert!(reg.contains("must_be_positive"));
        assert!(reg.run("must_be_positive", &ctx(Some(&Value::Integer(3)))).is_ok());
        assert!(reg.run("must_be_positive", &ctx(Some(&Value::Integer(-3)))).is_err());
        assert!(reg.run("must_be_positive", &ctx(None)).is_err());
        assert_eq!(reg.names(), vec!["must_be_positive".to_string()]);
    }

    #[test]
    fn unregistered_procedure_vetoes() {
        let reg = ProcedureRegistry::new();
        assert!(reg.run("ghost", &ctx(None)).is_err());
        assert!(!reg.contains("ghost"));
    }

    #[test]
    fn re_registration_replaces() {
        let mut reg = ProcedureRegistry::new();
        reg.register("p", |_| Err("always fails".into()));
        reg.register("p", |_| Ok(()));
        assert!(reg.run("p", &ctx(None)).is_ok());
    }

    #[test]
    fn debug_lists_names() {
        let mut reg = ProcedureRegistry::new();
        reg.register("audit", |_| Ok(()));
        assert!(format!("{reg:?}").contains("audit"));
    }
}
