//! # seed-core
//!
//! The core DBMS of the SEED reproduction (Glinz & Ludewig: *SEED — A DBMS for Software
//! Engineering Applications Based on the Entity-Relationship Approach*, ICDE 1986).
//!
//! SEED extends the entity-relationship model with what a software-engineering environment
//! needs; this crate implements those extensions on top of the schema subsystem
//! ([`seed_schema`]) and the storage substrate ([`seed_storage`]):
//!
//! * **Hierarchically structured objects** with names like `Alarms.Text.Body.Keywords[1]`
//!   ([`name`], [`object`], [`store`]);
//! * **Vague information** through generalization hierarchies of classes *and* associations,
//!   made precise step by step with re-classification ([`Database::reclassify_object`],
//!   [`Database::reclassify_relationship`]);
//! * **Incomplete information** through the split of schema information into *consistency*
//!   rules (checked on every update — [`consistency`]) and *completeness* rules (checked only by
//!   explicit analysis — [`completeness`]);
//! * **Secondary attribute indexes** — ordered per-class value indexes maintained on every
//!   update, the access paths behind `seed-query`'s cost-aware planner ([`index`]);
//! * **Attached procedures** for complex integrity constraints ([`procedures`]);
//! * **Versions and alternatives** with decimal identifiers, delta storage, tombstones and
//!   per-version views ([`version`]), plus history-sensitive transition rules ([`history`]);
//! * **Patterns and variants** with inherits-relationships, automatic propagation and
//!   immutability in the inheritor's context ([`pattern`]);
//! * a **procedural operational interface** ([`database::Database`]) with **incremental
//!   durability**: per-item write-through persistence over the storage engine's WAL
//!   ([`durability`], [`codec`]), plus legacy whole-database snapshots ([`persist`]).
//!
//! ## Quick start
//!
//! ```
//! use seed_core::{Database, Value};
//! use seed_schema::figure3_schema;
//!
//! let mut db = Database::new(figure3_schema());
//! // Vague: "there is a thing called Alarms".
//! let alarms = db.create_object("Thing", "Alarms").unwrap();
//! let sensor = db.create_object("Action", "Sensor").unwrap();
//! // More precise: it is data, accessed by Sensor.
//! db.reclassify_object(alarms, "Data").unwrap();
//! let access = db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
//! // Fully precise: an output written twice.
//! db.reclassify_object(alarms, "OutputData").unwrap();
//! db.reclassify_relationship(access, "Write").unwrap();
//! db.set_relationship_attribute(access, "NumberOfWrites", Value::Integer(2)).unwrap();
//! // Preserve this state as version 1.0.
//! let v1 = db.create_version("first cut").unwrap();
//! assert_eq!(v1.to_string(), "1.0");
//! ```

pub mod codec;
pub mod completeness;
pub mod consistency;
pub mod database;
pub mod durability;
pub mod error;
pub mod history;
pub mod ident;
pub mod index;
pub mod name;
pub mod object;
pub mod pattern;
pub mod persist;
pub mod procedures;
pub mod relationship;
pub mod replica;
pub mod snapshot;
pub mod store;
pub mod undo;
pub mod value;
pub mod version;

pub use completeness::{CompletenessReport, Incompleteness};
pub use consistency::{ConsistencyChecker, ConsistencyViolation};
pub use database::Database;
pub use durability::DurabilityStatus;
pub use error::{SeedError, SeedResult};
pub use history::{TransitionRule, TransitionViolation};
pub use ident::{ItemId, ObjectId, RelationshipId, VersionId};
pub use index::{AttributeIndex, IndexKey, ValueOp};
pub use name::{NameSegment, ObjectName};
pub use object::ObjectRecord;
pub use pattern::{MaterializedChild, MaterializedRelationship, VariantFamily};
pub use procedures::{ProcedureContext, ProcedureRegistry};
pub use relationship::RelationshipRecord;
pub use replica::ReplicaStore;
pub use snapshot::{Snapshot, SnapshotCell};
pub use store::DataStore;
pub use value::Value;
pub use version::{ItemSnapshot, VersionInfo, VersionManager};
