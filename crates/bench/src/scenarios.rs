//! Shared benchmark scenarios: databases and workloads of controlled size.

use seed_core::{Database, ObjectId, RelationshipId, Value};
use seed_schema::{figure3_schema, Cardinality, Domain, Schema, SchemaBuilder};
use spades::{DirectBackend, SeedBackend, Workload, WorkloadConfig};

/// Builds a Figure-3 database with `n` data elements, `n / 2` actions and one Access
/// relationship per action, without versions.
pub fn populated_database(n: usize) -> Database {
    let mut db = Database::new(figure3_schema());
    let mut actions = Vec::new();
    for i in 0..(n / 2).max(1) {
        actions.push(db.create_object("Action", &format!("Action{i:05}")).unwrap());
    }
    for i in 0..n {
        let data = db.create_object("Data", &format!("Data{i:05}")).unwrap();
        let action = actions[i % actions.len()];
        db.create_relationship("Access", &[("from", data), ("by", action)]).unwrap();
    }
    db
}

/// A database plus the ids needed by the re-classification benchmark: `n` vague `Thing` objects,
/// each with one Access relationship.
pub fn vague_database(n: usize) -> (Database, Vec<ObjectId>, Vec<RelationshipId>) {
    let mut db = Database::new(figure3_schema());
    let action = db.create_object("Action", "Sink").unwrap();
    let mut objects = Vec::with_capacity(n);
    let mut rels = Vec::with_capacity(n);
    for i in 0..n {
        let id = db.create_object("Thing", &format!("Vague{i:05}")).unwrap();
        objects.push(id);
        // Relationships require Data, so refine just enough to attach one, then re-vague later
        // benchmarks operate on the Data -> OutputData step.
        db.reclassify_object(id, "Data").unwrap();
        rels.push(db.create_relationship("Access", &[("from", id), ("by", action)]).unwrap());
    }
    (db, objects, rels)
}

/// Builds a database of `n` value-carrying `Item` objects (`Item000000` = 0, `Item000001` = 1,
/// ...) over a minimal schema, used by E9 to compare the planner's indexed access paths with
/// the full-scan fallback on value-equality and range queries.
pub fn valued_database(n: usize) -> Database {
    let schema = SchemaBuilder::new("Valued")
        .value_class("Item", Domain::Integer)
        .build()
        .expect("valued schema is statically correct");
    let mut db = Database::new(schema);
    for i in 0..n {
        db.create_object_with_value("Item", &format!("Item{i:06}"), Value::Integer(i as i64))
            .unwrap();
    }
    db
}

/// A schema whose classes carry `width` associations each — used to sweep consistency-checking
/// cost against schema complexity.
pub fn wide_schema(width: usize) -> Schema {
    let mut schema =
        SchemaBuilder::new("Wide").class("Node", |c| c).class("Hub", |c| c).build().unwrap();
    // `width` associations between Node and Hub, each with a bounded maximum on the Node side so
    // the checker has real counting work to do.
    for i in 0..width {
        let node = schema.class_id("Node").unwrap();
        let hub = schema.class_id("Hub").unwrap();
        schema
            .add_binary_association(
                format!("Link{i}"),
                ("node", node, Cardinality::bounded(0, 64).unwrap()),
                ("hub", hub, Cardinality::any()),
                false,
            )
            .unwrap();
    }
    schema
}

/// Creates a pattern with `n` inheritors; returns the database, the pattern id and the pattern's
/// value-carrying child (updating it is the propagation benchmark's unit of work).
pub fn pattern_with_inheritors(n: usize) -> (Database, ObjectId, Vec<ObjectId>) {
    let mut db = Database::new(figure3_schema());
    let manager = db.create_object("Action", "Manager").unwrap();
    let pattern = db.create_pattern_object("Data", "Standard").unwrap();
    db.create_pattern_relationship("Access", &[("from", pattern), ("by", manager)]).unwrap();
    let mut inheritors = Vec::with_capacity(n);
    for i in 0..n {
        let obj = db.create_object("Data", &format!("Instance{i:05}")).unwrap();
        db.inherit_pattern(obj, pattern).unwrap();
        inheritors.push(obj);
    }
    (db, pattern, inheritors)
}

/// The standard SPADES workload used by the overhead comparison.
pub fn spades_workload(scale: usize) -> Workload {
    Workload::generate(&WorkloadConfig {
        data_elements: scale,
        actions: scale / 2,
        vague_percent: 50,
        flows_per_action: 3,
        keywords_per_data: 2,
        checkpoint_every: 50,
        seed: 1986,
    })
}

/// Runs a workload on a fresh SEED backend, returning the number of rejected operations.
pub fn run_on_seed(workload: &Workload, consistency: bool) -> usize {
    let mut backend =
        if consistency { SeedBackend::new() } else { SeedBackend::without_consistency_checking() };
    workload.apply(&mut backend)
}

/// Runs a workload on a fresh direct (pre-SEED) backend.
pub fn run_on_direct(workload: &Workload) -> usize {
    let mut backend = DirectBackend::new();
    workload.apply(&mut backend)
}

/// Applies `versions` rounds of editing to a database, changing `changes_per_version` objects
/// each round and snapshotting after each; returns the database.
pub fn versioned_database(objects: usize, versions: usize, changes_per_version: usize) -> Database {
    let mut db = populated_database(objects);
    let ids: Vec<ObjectId> =
        db.objects_of_class("Data", true).unwrap().into_iter().map(|o| o.id).collect();
    for v in 0..versions {
        for c in 0..changes_per_version.min(ids.len()) {
            let id = ids[(v * changes_per_version + c) % ids.len()];
            let text = db.create_dependent(id, "Text", Value::Undefined);
            // Either add a Text child or touch an existing object, whichever succeeds.
            if text.is_err() {
                let _ = db.reclassify_object(id, "OutputData");
            }
        }
        db.create_version(&format!("round {v}")).unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builders_produce_expected_sizes() {
        let db = populated_database(20);
        assert_eq!(db.objects_of_class("Data", true).unwrap().len(), 20);
        assert_eq!(db.relationship_count(), 20);

        let (db, objects, rels) = vague_database(5);
        assert_eq!(objects.len(), 5);
        assert_eq!(rels.len(), 5);
        assert_eq!(db.objects_of_class("Data", true).unwrap().len(), 5);

        let schema = wide_schema(4);
        assert_eq!(schema.association_count(), 4);

        let db = valued_database(16);
        assert_eq!(db.object_count(), 16);
        assert_eq!(seed_query::run(&db, r#"count Item where value = "7""#).unwrap().count(), 1);

        let (db, pattern, inheritors) = pattern_with_inheritors(7);
        assert_eq!(inheritors.len(), 7);
        assert_eq!(db.inheritors_of(pattern).len(), 7);

        let workload = spades_workload(20);
        assert!(workload.len() > 50);
        assert_eq!(run_on_seed(&workload, true), 0);
        assert_eq!(run_on_direct(&workload), 0);

        let db = versioned_database(10, 3, 2);
        assert_eq!(db.versions().len(), 3);
    }
}
