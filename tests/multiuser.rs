//! Integration tests of the two-level multi-user extension (`seed-server`) against a populated
//! SEED database, including concurrent clients on threads.

use seed_core::{Database, Value};
use seed_server::{ClientSession, SeedServer, ServerError, Update};
use spades::{SeedBackend, Workload, WorkloadConfig};

fn populated_database() -> Database {
    let mut backend = SeedBackend::new();
    let workload = Workload::generate(&WorkloadConfig {
        data_elements: 20,
        actions: 10,
        checkpoint_every: 0,
        ..WorkloadConfig::default()
    });
    assert_eq!(workload.apply(&mut backend), 0);
    // Take the database out of the tool by rebuilding through persistence.
    let dir = std::env::temp_dir().join(format!("seed-multiuser-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    backend.database().save_to_dir(&dir).unwrap();
    let db = Database::open_dir(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    db
}

#[test]
fn checkout_checkin_cycle_against_populated_database() {
    let db = populated_database();
    let objects_before = db.object_count();
    let server = SeedServer::new(db);
    let alice = server.connect();
    let bob = server.connect();

    // Alice takes Data000 for update; Bob cannot, but can read it and take Data001.
    let set = server.checkout(alice, &["Data000"]).unwrap();
    assert!(!set.is_empty());
    assert!(matches!(server.checkout(bob, &["Data000"]), Err(ServerError::Locked { .. })));
    assert!(server.retrieve("Data000").is_ok());
    server.checkout(bob, &["Data001"]).unwrap();

    // Alice's check-in is one transaction: her description change and a new object land together.
    server
        .checkin(
            alice,
            &[
                Update::CreateObject { class: "Action".into(), name: "Archiver".into() },
                Update::CreateRelationship {
                    association: "Access".into(),
                    bindings: vec![
                        ("from".into(), "Data000".into()),
                        ("by".into(), "Archiver".into()),
                    ],
                },
            ],
        )
        .unwrap();
    server.with_database(|db| {
        assert_eq!(db.object_count(), objects_before + 1);
        assert!(db.object_by_name("Archiver").is_ok());
    });
    // Alice's locks are gone; Bob's remain until he finishes.
    assert!(server.checkout(alice, &["Data001"]).is_err());
    server.release(bob);
    assert!(server.checkout(alice, &["Data001"]).is_ok());

    // Global version control stays with the server.
    let version = server.create_version("after integration").unwrap();
    server.with_database(|db| assert!(db.version_info(&version).is_ok()));
}

#[test]
fn concurrent_sessions_build_disjoint_subsystems() {
    let server = SeedServer::new(populated_database());
    let (handle, join) = server.spawn();

    let mut workers = Vec::new();
    for worker in 0..6u32 {
        let handle = handle.clone();
        workers.push(std::thread::spawn(move || {
            let mut session = ClientSession::connect(handle).unwrap();
            // Each worker adds its own subsystem: an action plus data it writes.
            let action = format!("Subsystem{worker}Control");
            let data = format!("Subsystem{worker}State");
            session.create_object("Action", &action);
            session.create_object("OutputData", &data);
            session.create_relationship("Write", &[("to", &data), ("by", &action)]);
            session.commit().unwrap();

            // Then each worker updates its own data element under a lock.
            session.checkout(&[data.as_str()]).unwrap();
            session.create_dependent(&data, "Text", Value::Undefined).unwrap();
            session.commit().unwrap();
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    for worker in 0..6u32 {
        let data = handle.retrieve(&format!("Subsystem{worker}State")).unwrap();
        assert!(!data.deleted);
        handle.retrieve(&format!("Subsystem{worker}Control")).unwrap();
    }
    handle.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn rejected_checkin_leaves_central_database_untouched() {
    let server = SeedServer::new(populated_database());
    let client = server.connect();
    let before = server.with_database(|db| db.object_count());
    server.checkout(client, &["Action000"]).unwrap();
    let result = server.checkin(
        client,
        &[
            Update::CreateObject { class: "OutputData".into(), name: "Fresh".into() },
            // Invalid: Action000 cannot become Data (unrelated branches are fine, but an Action
            // with Contained relationships cannot change families) — more simply, a bogus class.
            Update::Reclassify { object: "Action000".into(), new_class: "Data.Text".into() },
        ],
    );
    assert!(result.is_err());
    server.with_database(|db| {
        assert_eq!(db.object_count(), before, "single-transaction check-in rolled back completely");
        assert!(db.object_by_name("Fresh").is_err());
    });
}
