//! E14 — MVCC snapshot reads: in-process read throughput on a quiescent server vs the same
//! reads while a writer thread commits check-ins continuously.
//!
//! Each iteration runs a fixed batch of `retrieve` calls spread across a fixed reader fleet;
//! the interesting number is how little the per-iteration time grows when the write stream is
//! on — reads run against the published immutable snapshot, never the database write lock, so
//! the writer only costs them the occasional snapshot republish.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seed_core::Database;
use seed_schema::figure3_schema;
use seed_server::{SeedServer, Update};

const OBJECTS: usize = 500;
const READERS: usize = 4;
const OPS_PER_ITER: usize = 400;

fn seeded_server() -> Arc<SeedServer> {
    let mut db = Database::new(figure3_schema());
    db.begin_transaction().expect("txn");
    for i in 0..OBJECTS {
        db.create_object("Data", &format!("Data{i:05}")).expect("create");
    }
    db.commit_transaction().expect("commit");
    Arc::new(SeedServer::new(db))
}

fn read_batch(server: &Arc<SeedServer>) -> usize {
    let ops_each = OPS_PER_ITER / READERS;
    let workers: Vec<_> = (0..READERS)
        .map(|w| {
            let server = Arc::clone(server);
            std::thread::spawn(move || {
                for i in 0..ops_each {
                    let name = format!("Data{:05}", (w * 131 + i) % OBJECTS);
                    server.retrieve(&name).expect("retrieve");
                }
                ops_each
            })
        })
        .collect();
    workers.into_iter().map(|w| w.join().expect("reader")).sum::<usize>()
}

fn snapshot_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("E14_snapshot_reads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for writers in [0usize, 1] {
        group.bench_with_input(BenchmarkId::from_parameter(writers), &writers, |b, &writers| {
            let server = seeded_server();
            let stop = Arc::new(AtomicBool::new(false));
            let writer_threads: Vec<_> = (0..writers)
                .map(|_| {
                    let server = Arc::clone(&server);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let client = server.connect();
                        let mut commits = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            server
                                .checkin(
                                    client,
                                    &[Update::CreateObject {
                                        class: "Data".into(),
                                        name: format!("Churn{commits:08}"),
                                    }],
                                )
                                .expect("checkin");
                            commits += 1;
                        }
                    })
                })
                .collect();
            b.iter(|| read_batch(&server));
            stop.store(true, Ordering::Relaxed);
            for writer in writer_threads {
                writer.join().expect("writer");
            }
        });
    }
    group.finish();
}

criterion_group!(benches, snapshot_reads);
criterion_main!(benches);
